"""Bench: regenerate fig 11 (I/O-bound workload — HPA blind spot)."""

from __future__ import annotations

from benchmarks.conftest import run_once

from repro.experiments import fig11
from repro.metrics.summary import comparison_factors


def test_fig11_io_bound(benchmark, capsys):
    results = run_once(benchmark, fig11.run, 0)
    with capsys.disabled():
        print()
        print(fig11.report(results))

    hpa20 = results["HPA(20% CPU)"]
    hpa50 = results["HPA(50% CPU)"]
    hta = results["HTA"]

    assert all(r.tasks_completed == fig11.N_TASKS for r in results.values())

    # --- HPA never scales: CPU stays under every target (paper: the
    # cluster size never grows).
    for r in (hpa20, hpa50):
        t0, t1 = r.accountant.window()
        assert r.series("workers_connected").maximum(t0, t1) <= 3.0

    # --- HTA scales to the cap and is several times faster
    # (paper: 3.66x vs HPA-20).
    t0, t1 = hta.accountant.window()
    assert hta.series("workers_connected").maximum(t0, t1) >= 18.0
    f20 = comparison_factors(hta.accounting, hpa20.accounting)
    assert f20["speedup"] > 2.5

    # --- Shortage collapses under HTA; HPA's waste is near zero but its
    # queue starves (the paper's waste/shortage trade-off).
    assert (
        hta.accounting.accumulated_shortage_core_s
        < 0.5 * hpa20.accounting.accumulated_shortage_core_s
    )
    assert (
        hpa20.accounting.accumulated_waste_core_s
        < hta.accounting.accumulated_waste_core_s * 5
    )
