"""Bench: heterogeneous multi-category workload (beyond the paper).

The paper's workloads are homogeneous within a run. Real HTC campaigns
mix categories with very different footprints; per-category estimation
is precisely HTA's mechanism for that case (§IV-A "splitting jobs into
sub-categories"). This bench mixes three categories — small CPU-bound,
wide memory-bound, and disk-bound low-CPU tasks, none declared — and
compares HTA against HPA-20.
"""

from __future__ import annotations

from benchmarks.conftest import run_once

from repro.cluster.cluster import ClusterConfig
from repro.cluster.node import N1_STANDARD_4_RESERVED
from repro.cluster.resources import ResourceVector
from repro.experiments.runner import (
    StackConfig,
    run_hpa_experiment,
    run_hta_experiment,
)
from repro.metrics.summary import format_summary_table
from repro.workloads.synthetic import multi_category_mix


def make_workload():
    return multi_category_mix(
        [
            # (category, count, execute_s, footprint)
            ("cpu-small", 90, 200.0, ResourceVector(1, 1024, 1024)),
            ("mem-wide", 30, 300.0, ResourceVector(1, 7 * 1024, 1024)),
            ("disk-heavy", 60, 250.0, ResourceVector(1, 512, 20 * 1024)),
        ],
        declared=False,
    )


def stack(seed=0):
    return StackConfig(
        cluster=ClusterConfig(
            machine_type=N1_STANDARD_4_RESERVED,
            min_nodes=3,
            max_nodes=16,
            max_concurrent_reservations=10,
        ),
        seed=seed,
    )


def test_mixed_categories(benchmark, capsys):
    def run_both():
        hta = run_hta_experiment(make_workload(), stack_config=stack())
        hpa = run_hpa_experiment(
            make_workload(),
            target_cpu=0.2,
            stack_config=stack(),
            min_replicas=3,
            max_replicas=16,
        )
        return hta, hpa

    hta, hpa = run_once(benchmark, run_both)
    with capsys.disabled():
        print()
        print(
            format_summary_table(
                {"HTA": hta.accounting, "HPA(20% CPU)": hpa.accounting},
                title="Mixed categories (90 cpu / 30 mem-wide / 60 disk), undeclared",
            )
        )

    assert hta.tasks_completed == hpa.tasks_completed == 180
    # Per-category estimation pays off on heterogeneous footprints: the
    # memory-wide category packs 2/worker, the others 3/worker — HTA
    # sizes the pool from resources while HPA just rides CPU.
    assert hta.accounting.utilization > hpa.accounting.utilization
    assert (
        hta.accounting.accumulated_waste_core_s
        < hpa.accounting.accumulated_waste_core_s
    )
    # Three categories -> exactly three warm-up probes ran exclusively.
    assert hta.extras["plans"] >= 1
