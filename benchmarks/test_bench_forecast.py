"""Bench: forecast-fed policies vs reactive baselines on a burst stream.

Beyond the paper. A burst of identical jobs lands every few hundred
seconds — faster than a worker can cold-start — so every reactive policy
eats one full resource-initialization cycle of shortage per burst. The
forecast subsystem (``repro.forecast``) closes that gap two ways:

* **HTA-hybrid** injects forecast arrivals as synthetic waiting tasks
  into Algorithm 1, so the reactive plan also covers predicted inflow;
* **PredictiveScaler** sizes a drained pool from the forecast demand
  envelope one init cycle ahead, with an AR model whose order spans the
  arrival period so it locks onto the burst cycle.

The acceptance shape asserted here: a forecast-fed policy completes the
stream at equal-or-better makespan than the KEDA-style queue baseline
while wasting strictly less — and the whole comparison is bit-for-bit
deterministic across runs.
"""

from __future__ import annotations

from benchmarks.conftest import run_once

from repro.experiments import forecast_cmp
from repro.metrics.summary import format_summary_table


def _fingerprint(results):
    """Everything that must be bit-for-bit stable across reruns."""
    return {
        name: (
            r.result.accounting.runtime_s,
            r.result.accounting.accumulated_waste_core_s,
            r.result.accounting.accumulated_shortage_core_s,
            r.last_finish_s,
            r.result.tasks_completed,
            tuple(r.workflow_makespans),
        )
        for name, r in results.items()
    }


def test_forecast_burst_stream(benchmark, capsys):
    results = run_once(benchmark, forecast_cmp.run, 0)
    with capsys.disabled():
        print()
        print(forecast_cmp.report(results))

    total = forecast_cmp.BURSTS * forecast_cmp.BURST_TASKS
    for name, r in results.items():
        assert r.result.tasks_completed == total, name

    keda = results["KEDA-queue"]
    predictive = results["Predictive"]
    hybrid = results["HTA-hybrid"]

    # Equal-or-better makespan than the queue baseline, on both clocks:
    # the accounting runtime (coarse gauge grid) and the exact finish
    # time of the last task.
    assert (
        predictive.result.accounting.runtime_s
        <= keda.result.accounting.runtime_s
    )
    assert predictive.last_finish_s <= keda.last_finish_s

    # ... while wasting strictly less. The queue scaler's cooldown pins
    # the pool at the burst peak through every inter-burst gap; the
    # forecast policies release it (drains are free) and re-provision
    # ahead of the next burst.
    keda_waste = keda.result.accounting.accumulated_waste_core_s
    assert predictive.result.accounting.accumulated_waste_core_s < 0.7 * keda_waste
    assert hybrid.result.accounting.accumulated_waste_core_s < 0.7 * keda_waste

    # The hybrid also must not regress the stream's completion:
    assert hybrid.last_finish_s <= keda.last_finish_s * 1.01

    # Bit-for-bit determinism: the same seed reproduces every integral
    # and every per-burst makespan exactly.
    assert _fingerprint(results) == _fingerprint(forecast_cmp.run(0))
