"""Bench: checkpoint/restore migration vs kill-and-requeue (beyond the paper).

Regenerates the migration experiment at full scale — four spot-aware HTA
variants under the same preemption storm, from the kill-and-requeue
baseline through the three Megaphone-style drain policies — and asserts
the contract the subsystem is sold on at the validated seed: batched-fluid
achieves strictly higher goodput AND strictly lower wasted core-seconds
than kill-and-requeue. A second benchmark runs the full-size soak with
the ``migrate`` chaos primitive enabled and asserts zero invariant
violations.
"""

from __future__ import annotations

from benchmarks.conftest import run_once

from repro.experiments import migration
from repro.soak import SoakConfig, run_soak

SEED = 0


def test_migration_deterministic():
    """Two same-seed runs must agree on every headline metric."""
    first = migration.run(SEED, smoke=True)
    second = migration.run(SEED, smoke=True)
    for name in first:
        assert first[name].makespan_s == second[name].makespan_s, name
        assert first[name].extras == second[name].extras, name


def test_migration_full(benchmark):
    results = run_once(benchmark, migration.run, SEED)
    baseline = results["kill-and-requeue"]
    batched = results["batched-fluid"]

    # The storm fired against every variant and every task finished.
    for name, result in results.items():
        assert result.extras["preemptions"] >= migration.STORM_SIZE, name
        assert result.tasks_completed == migration.N_TASKS, name

    # Only the migration variants carry a coordinator; the baseline's
    # extras must not even mention migration.
    assert "migrations_completed" not in baseline.extras
    for name in ("sudden", "fluid", "batched-fluid"):
        assert results[name].extras["migrations_started"] > 0, name
        assert results[name].extras["migrations_completed"] > 0, name
        # Every coordinator-completed migration is a master-accepted one.
        assert (
            results[name].extras["migrations_completed"]
            == results[name].extras["migrations_accepted"]
        ), name

    # The acceptance-gate contract at the validated seed: strictly
    # higher goodput AND strictly lower wasted core-seconds.
    assert migration.goodput_rate(batched) > migration.goodput_rate(baseline)
    assert batched.extras["wasted_core_s"] < baseline.extras["wasted_core_s"]


def test_soak_with_migrations_full(benchmark):
    """A full-size soak with the migrate primitive holds every invariant."""
    config = SoakConfig(migrate=True)
    report = run_once(benchmark, run_soak, 1, config)
    assert report.quiesced, report.describe()
    assert report.ok, report.describe()
    assert (
        report.stats["tasks_done"] + report.stats["tasks_abandoned"] == 120
    )
