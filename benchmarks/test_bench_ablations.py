"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation flips one HTA mechanism and measures what it buys:

1. **init-time feedback** — live-measured initialization time vs a badly
   wrong fixed constant;
2. **category-based sizing** — monitor-fed packing vs the conservative
   one-task-per-worker policy (fig 4(b)'s behaviour, under HTA);
3. **HPA stabilization window** — the waste/disruption trade-off the
   paper describes in §VI-A;
4. **drain vs kill scale-down** — HTA's non-disruptive drain vs deleting
   pods (task requeues and lost work).
"""

from __future__ import annotations

from benchmarks.conftest import run_once

from dataclasses import replace

import pytest

from repro.cluster.cluster import ClusterConfig
from repro.cluster.hpa import HpaConfig
from repro.cluster.node import N1_STANDARD_4_RESERVED
from repro.experiments.runner import (
    StackConfig,
    run_hpa_experiment,
    run_hta_experiment,
)
from repro.hta.estimator import EstimatorConfig
from repro.hta.operator import HtaConfig
from repro.workloads.synthetic import staged_pipeline, uniform_bag


def stack(seed=0, max_nodes=10):
    return StackConfig(
        cluster=ClusterConfig(
            machine_type=N1_STANDARD_4_RESERVED,
            min_nodes=2,
            max_nodes=max_nodes,
            node_reservation_mean_s=150.0,
            node_reservation_std_s=3.0,
        ),
        seed=seed,
    )


def hta_cfg(**overrides):
    defaults = dict(initial_workers=2, max_workers=10, min_workers=2)
    defaults.update(overrides)
    return HtaConfig(**defaults)


def test_ablation_init_time_feedback(benchmark, capsys):
    """A controller planning with a 10 s init-time guess re-plans long
    before new capacity can arrive; the live-measured estimate spaces
    decisions one real cycle apart. The misinformed controller must
    churn more plans for the same workload."""
    workload = lambda: uniform_bag(60, execute_s=80.0, declared=True)

    def run_both():
        live = run_hta_experiment(workload(), stack_config=stack(), name="live-init")
        wrong = run_hta_experiment(
            workload(),
            stack_config=stack(),
            fixed_init_time_s=10.0,  # ~15x below the real ~155 s
            name="fixed-10s",
        )
        return live, wrong

    live, wrong = run_once(benchmark, run_both)
    with capsys.disabled():
        print()
        print(f"  live-init : {live.summary()}  plans={live.extras['plans']:.0f}")
        print(f"  fixed-10s : {wrong.summary()}  plans={wrong.extras['plans']:.0f}")
    assert live.tasks_completed == wrong.tasks_completed == 60
    # The init-time-paced controller issues far fewer resize decisions.
    assert live.extras["plans"] < wrong.extras["plans"]


def test_ablation_category_sizing(benchmark, capsys):
    """Category feedback lets multiple tasks pack per worker; with
    probing disabled *and* estimates ignored the pool serializes."""
    workload = lambda: uniform_bag(30, execute_s=60.0, declared=True)
    conservative_workload = lambda: uniform_bag(30, execute_s=60.0, declared=False)

    def run_both():
        packed = run_hta_experiment(workload(), stack_config=stack(), name="packed")
        # Unknown resources + no completions yet -> every task probes a
        # whole worker; category stats then fix it. Measure the pure
        # conservative regime via a static pool instead.
        from repro.experiments.runner import run_static_experiment

        serial = run_static_experiment(
            conservative_workload(),
            n_workers=4,
            stack_config=stack(max_nodes=4),
            estimator="conservative",
            name="conservative",
        )
        return packed, serial

    packed, serial = run_once(benchmark, run_both)
    with capsys.disabled():
        print()
        print(f"  packed       : {packed.summary()}")
        print(f"  conservative : {serial.summary()}")
    # Packing 3 tasks/worker beats one-task-per-worker substantially.
    assert packed.accounting.utilization > serial.accounting.utilization


def test_ablation_hpa_stabilization_window(benchmark, capsys):
    """§VI-A: the 5-minute stabilization keeps HPA pinned high (waste);
    a short window scales down eagerly but *kills pods* mid-task."""
    workload = lambda: staged_pipeline(
        [30, 2, 24], execute_s=150.0, declared=True, barrier=True
    )

    def run_sweep():
        out = {}
        for window in (0.0, 120.0, 300.0, 600.0):
            out[window] = run_hpa_experiment(
                workload(),
                target_cpu=0.2,
                stack_config=stack(),
                hpa_config=HpaConfig(
                    target_cpu_utilization=0.2,
                    min_replicas=2,
                    max_replicas=10,
                    scale_down_stabilization_s=window,
                ),
                name=f"HPA-stab-{int(window)}s",
            )
        return out

    results = run_once(benchmark, run_sweep)
    with capsys.disabled():
        print()
        for window, r in results.items():
            print(
                f"  window={window:>5.0f}s  runtime={r.makespan_s:7.0f}s "
                f"waste={r.accounting.accumulated_waste_core_s:9.0f} "
                f"requeued={r.tasks_requeued}"
            )
    assert all(r.tasks_completed == 56 for r in results.values())
    # Longer windows never requeue fewer... rather: the eager (0s) window
    # disrupts tasks; the paper-default 300s window avoids kills entirely
    # on this workload but holds capacity longer.
    assert results[0.0].tasks_requeued >= results[600.0].tasks_requeued
    assert (
        results[600.0].accounting.accumulated_waste_core_s
        >= results[0.0].accounting.accumulated_waste_core_s
    )


def test_ablation_drain_vs_kill(benchmark, capsys):
    """HTA drains workers (zero requeues); scaling down by deleting pods
    (the HPA path) loses in-flight work."""
    workload = lambda: staged_pipeline([24, 4, 20], execute_s=100.0, declared=True)

    def run_both():
        hta = run_hta_experiment(workload(), stack_config=stack(), name="drain")
        hpa = run_hpa_experiment(
            workload(),
            target_cpu=0.2,
            stack_config=stack(),
            hpa_config=HpaConfig(
                target_cpu_utilization=0.2,
                min_replicas=2,
                max_replicas=10,
                scale_down_stabilization_s=0.0,  # eager deletion
            ),
            name="kill",
        )
        return hta, hpa

    hta, hpa = run_once(benchmark, run_both)
    with capsys.disabled():
        print()
        print(f"  drain: {hta.summary()}  requeued={hta.tasks_requeued}")
        print(f"  kill : {hpa.summary()}  requeued={hpa.tasks_requeued}")
    assert hta.tasks_requeued == 0
    assert hta.tasks_completed == hpa.tasks_completed == 48


def test_ablation_literal_pseudocode_scale_down(benchmark, capsys):
    """Algorithm 1's literal lines 19-21 never release idle workers on an
    empty queue; the paper's controller does. Compare tail waste."""
    workload = lambda: staged_pipeline([24, 2, 2], execute_s=80.0, declared=True)

    def run_both():
        paper = run_hta_experiment(workload(), stack_config=stack(), name="paper-mode")
        literal = run_hta_experiment(
            workload(),
            stack_config=stack(),
            hta_config=hta_cfg(
                estimator=EstimatorConfig(scale_down_on_empty_queue=False)
            ),
            name="literal-mode",
        )
        return paper, literal

    paper, literal = run_once(benchmark, run_both)
    with capsys.disabled():
        print()
        print(f"  paper-mode   : {paper.summary()}")
        print(f"  literal-mode : {literal.summary()}")
    assert (
        paper.accounting.accumulated_waste_core_s
        <= literal.accounting.accumulated_waste_core_s
    )
