"""Bench: regenerate fig 10 (multistage BLAST — the headline table).

Asserts the paper's core claims:
* HPA ramps to the capacity limit and stays there until the end;
* HTA follows the stage structure (mid-workflow dip, stage-3 bump,
  tail drain) and cuts accumulated waste by a large factor;
* HTA pays a modest runtime increase.
"""

from __future__ import annotations

from benchmarks.conftest import run_once

from repro.experiments import fig10
from repro.metrics.summary import comparison_factors


def test_fig10_multistage_blast(benchmark, capsys):
    results = run_once(benchmark, fig10.run, 0)
    with capsys.disabled():
        print()
        print(fig10.report(results))

    hpa20 = results["HPA(20% CPU)"]
    hpa50 = results["HPA(50% CPU)"]
    hta = results["HTA"]

    total = sum(fig10.STAGES)
    assert all(r.tasks_completed == total for r in results.values())

    # --- HPA pins the cluster at the 60-core cap until the workload ends.
    for r in (hpa20, hpa50):
        t0, t1 = r.accountant.window()
        supply = r.series("supply")
        assert supply.maximum(t0, t1) >= 57.0
        # Still at (near) the cap at 90% of the runtime.
        assert supply.value_at(t0 + 0.9 * (t1 - t0)) >= 50.0

    # --- HTA dips mid-workflow (the stage-2 valley) and drains the tail.
    t0, t1 = hta.accountant.window()
    hta_supply = hta.series("supply")
    peak = hta_supply.maximum(t0, t1)
    mid_min = min(
        hta_supply.value_at(t0 + f * (t1 - t0)) for f in (0.45, 0.5, 0.55, 0.6, 0.65)
    )
    assert peak >= 50.0
    assert mid_min < 0.7 * peak  # visible dip
    assert hta_supply.value_at(t1) <= 3.0  # drained at the end

    # --- Headline factors (paper: 5.6x / 4.3x waste cut, +12.5/16.6% time).
    f20 = comparison_factors(hta.accounting, hpa20.accounting)
    f50 = comparison_factors(hta.accounting, hpa50.accounting)
    assert f20["waste_reduction"] > 1.8
    assert f50["waste_reduction"] > 1.8
    assert -0.05 < f20["runtime_increase"] < 0.45
    assert hta.accounting.utilization > hpa20.accounting.utilization
