"""Benchmark configuration.

Each benchmark regenerates one paper table/figure at full scale and
asserts the paper's qualitative shape (who wins, direction of the
factors). A simulation run is deterministic, so one round is a faithful
measurement of the harness cost; pedantic mode keeps wall time sane.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
