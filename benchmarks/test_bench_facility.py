"""Bench: the long-running facility — a day-scale stream of workflows.

The paper's opening scenario: an HTC facility completing "as many jobs
as possible over a long period of time". A Poisson stream of BLAST-like
workflow instances arrives over ~8 simulated hours; HTA and HPA manage
the same stream. Stream-level effects the single-workflow figures can't
show:

* category statistics persist across workflow instances — only the very
  first instance pays warm-up probes;
* demand is a superposition of overlapping DAGs, so supply must track a
  fluctuating aggregate, not one ramp-dip-ramp shape.
"""

from __future__ import annotations

from benchmarks.conftest import run_once

from repro.cluster.cluster import ClusterConfig
from repro.cluster.node import N1_STANDARD_4_RESERVED
from repro.experiments.continuous import run_continuous_hpa, run_continuous_hta
from repro.experiments.runner import StackConfig
from repro.makeflow.dag import WorkflowGraph
from repro.sim.rng import RngRegistry
from repro.workloads.arrivals import poisson_arrivals, total_tasks
from repro.workloads.synthetic import uniform_bag


def workflow_factory(i: int) -> WorkflowGraph:
    return WorkflowGraph(
        uniform_bag(20, execute_s=240.0, declared=False, category="analysis")
    )


def make_arrivals(seed: int):
    return poisson_arrivals(
        workflow_factory,
        rng=RngRegistry(seed),
        rate_per_hour=4.0,
        horizon_s=8 * 3600.0,
    )


def stack(seed=0):
    return StackConfig(
        cluster=ClusterConfig(
            machine_type=N1_STANDARD_4_RESERVED,
            min_nodes=3,
            max_nodes=12,
            max_concurrent_reservations=10,
        ),
        seed=seed,
        max_sim_time_s=200_000.0,
    )


def test_facility_stream(benchmark, capsys):
    def run_both():
        hta = run_continuous_hta(make_arrivals(0), stack_config=stack(0))
        hpa = run_continuous_hpa(
            make_arrivals(0), target_cpu=0.2, stack_config=stack(0),
            min_replicas=3, max_replicas=12,
        )
        return hta, hpa

    hta, hpa = run_once(benchmark, run_both)
    with capsys.disabled():
        print()
        print(f"  HTA : {hta.summary()}")
        print(f"  HPA : {hpa.summary()}")

    expected = total_tasks(make_arrivals(0))
    assert hta.result.tasks_completed == expected
    assert hpa.result.tasks_completed == expected
    assert hta.workflows == hpa.workflows >= 10

    # Only the first instance probes: later workflows are faster.
    first, *rest = hta.workflow_makespans
    assert sum(m < first for m in rest) >= len(rest) // 2

    # Facility-level efficiency: HTA wastes less over the whole day.
    assert (
        hta.result.accounting.accumulated_waste_core_s
        < hpa.result.accounting.accumulated_waste_core_s
    )
    assert hta.result.accounting.utilization > hpa.result.accounting.utilization
