"""Bench: result integrity under a black-hole storm (beyond the paper).

Regenerates the integrity experiment at full scale — the same fast-fake
black-hole storm against an attribution-off baseline (no verification,
no health ledger) and the attribution-on stack (digest verification +
quarantine) — and asserts the contract the subsystem is sold on at the
validated seed: attribution-on finishes with zero corrupted completions
and a strictly higher clean-goodput rate, and quarantines at least one
worker. A second benchmark runs the full-size soak with value faults
enabled and asserts zero invariant violations.
"""

from __future__ import annotations

from benchmarks.conftest import run_once

from repro.experiments import integrity
from repro.soak import SoakConfig, run_soak

SEED = 0


def test_integrity_deterministic():
    """Two same-seed runs must agree on every headline metric."""
    first = integrity.run(SEED, smoke=True)
    second = integrity.run(SEED, smoke=True)
    for name in first:
        assert first[name].makespan_s == second[name].makespan_s, name
        assert first[name].extras == second[name].extras, name


def test_integrity_full(benchmark):
    results = run_once(benchmark, integrity.run, SEED)
    off = results["attribution-off"]
    on = results["attribution-on"]

    # The storm bit both variants and every task resolved COMPLETE.
    for name, result in results.items():
        assert result.extras["black_holes_injected"] == integrity.STORM_SIZE, name
        assert result.tasks_completed == integrity.N_TASKS, name
        assert result.extras["tasks_abandoned"] == 0, name

    # Without verification nothing is ever caught; the fakes land in
    # the done set and no worker is ever blamed.
    assert off.extras["corrupted_completes"] > 0
    assert off.extras["verify_fails"] == 0
    assert off.extras["quarantines"] == 0

    # The acceptance-gate contract at the validated seed: a corrupted
    # result never reaches COMPLETE, the black holes are quarantined,
    # and the clean-goodput rate is strictly higher.
    assert on.extras["corrupted_completes"] == 0
    assert on.extras["verify_fails"] > 0
    assert on.extras["quarantines"] >= 1
    assert on.extras["tasks_poisoned"] == 0  # no false poison verdicts
    assert integrity.clean_goodput_rate(on) > integrity.clean_goodput_rate(off)


def test_soak_with_integrity_full(benchmark):
    """A full-size soak with value faults holds every invariant."""
    config = SoakConfig(integrity=True)
    report = run_once(benchmark, run_soak, 1, config)
    assert report.quiesced, report.describe()
    assert report.ok, report.describe()
    assert (
        report.stats["tasks_done"] + report.stats["tasks_abandoned"] == 120
    )
    # The seed-1 schedule draws at least one value fault, and whatever
    # corruption landed never reached COMPLETE (verification is armed).
    assert (
        report.stats["corruptions_injected"] + report.stats["black_holes_injected"]
        > 0
    )
    assert report.stats["corrupted_completes"] == 0
