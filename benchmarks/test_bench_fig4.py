"""Bench: regenerate fig 4 (worker-pod sizing study)."""

from __future__ import annotations

from benchmarks.conftest import run_once

from repro.experiments import fig4


def test_fig4_worker_sizing(benchmark, capsys):
    results = run_once(benchmark, fig4.run, 0)
    with capsys.disabled():
        print()
        print(fig4.report(results))

    fine = results["fine-grained"]
    unknown = results["coarse-unknown"]
    known = results["coarse-known"]

    assert all(r.tasks_completed == fig4.N_TASKS for r in results.values())

    # Runtime ordering (paper: 330 < 411 < 632 s).
    assert known.makespan_s < fine.makespan_s < unknown.makespan_s

    # Bandwidth: coarse configurations beat fine-grained (fewer streams
    # share the master egress; paper: 452/466 vs 278 MB/s).
    assert fine.extras["mean_bandwidth_mbps"] < known.extras["mean_bandwidth_mbps"]
    assert fine.extras["mean_bandwidth_mbps"] < unknown.extras["mean_bandwidth_mbps"]

    # CPU utilization: one-job-per-node wastes ~2/3 of each node
    # (paper: 32.4% vs 87.2%/85.7%).
    assert unknown.accounting.utilization < 0.45
    assert known.accounting.utilization > 0.6
    assert fine.accounting.utilization > 0.55

    # Data volume: fine-grained moves 3x the input bytes (15 caches vs 5).
    assert fine.extras["bytes_moved_mb"] > 2.5 * known.extras["bytes_moved_mb"]
