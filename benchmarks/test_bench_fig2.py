"""Bench: regenerate fig 2 (HPA target-CPU sweep on 200-job BLAST).

Prints the same series/rows the paper reports and asserts the shape:
Config-10 ≈ Config-50 ≪ Config-99; the ideal schedule is fastest; the
99 % target never scales the pool.
"""

from __future__ import annotations

from benchmarks.conftest import run_once

from repro.experiments import fig2


def test_fig2_hpa_target_sweep(benchmark, capsys):
    results = run_once(benchmark, fig2.run, 0)
    with capsys.disabled():
        print()
        print(fig2.report(results))

    c10, c50, c99 = results["Config-10"], results["Config-50"], results["Config-99"]
    ideal = results["ideal"]

    # Everyone finishes the workload.
    assert all(r.tasks_completed == fig2.N_TASKS for r in (c10, c50, c99))

    # Config-10 and Config-50 land close together (paper: 1294 vs 1304 s).
    assert abs(c10.makespan_s - c50.makespan_s) / c50.makespan_s < 0.25

    # Config-99 never scales up and is several times slower (paper: 3.6x).
    t0, t1 = c99.accountant.window()
    assert c99.series("workers_connected").maximum(t0, t1) <= 3.0
    assert c99.makespan_s > 3.0 * c10.makespan_s

    # The ideal schedule beats every HPA configuration (paper: 240 s).
    assert ideal.makespan_s < c10.makespan_s
    assert ideal.makespan_s < 1.5 * fig2.PAPER["runtime_ideal_s"]
