"""Bench: preemptible capacity + the chaos soak (beyond the paper).

Regenerates the preemption experiment at full scale — a mixed
on-demand/spot fleet hit by a reclamation wave, spot-aware HTA vs
vanilla — and asserts the contract the spot machinery is sold on:
strictly higher goodput at no worse cost, on the validated seed. A
second benchmark runs a full-size chaos soak and asserts zero invariant
violations.
"""

from __future__ import annotations

from benchmarks.conftest import run_once

from repro.experiments import preemption
from repro.metrics.cost import CostModel
from repro.soak import SoakConfig, run_soak

SEED = 0


def test_preemption_deterministic():
    """Two same-seed runs must agree on every headline metric."""
    first = preemption.run(SEED, smoke=True)
    second = preemption.run(SEED, smoke=True)
    for name in first:
        assert first[name].makespan_s == second[name].makespan_s, name
        assert first[name].extras == second[name].extras, name


def test_preemption_full(benchmark):
    results = run_once(benchmark, preemption.run, SEED)
    aware = results["hta-spot-aware"]
    vanilla = results["hta-vanilla"]

    # The wave actually fired against both variants, and only the aware
    # variant consumed the notices through the responder.
    for result in (aware, vanilla):
        assert result.extras["preemptions"] >= preemption.WAVE_SIZE
        assert result.tasks_completed == preemption.N_TASKS
    assert aware.extras["workers_evacuated"] > 0
    assert "workers_evacuated" not in vanilla.extras

    # The contract: strictly higher goodput at no worse cost.
    aware_rate = preemption.goodput_rate(aware)
    vanilla_rate = preemption.goodput_rate(vanilla)
    assert aware_rate > vanilla_rate
    cost_model = CostModel()
    aware_cost = cost_model.cost_of_mixed(aware, preemption.MACHINE_TYPE).total_usd
    vanilla_cost = cost_model.cost_of_mixed(vanilla, preemption.MACHINE_TYPE).total_usd
    assert aware_cost <= vanilla_cost + 1e-9

    # Both fleets actually bought spot capacity (the discount is real).
    for result in (aware, vanilla):
        mixed = cost_model.cost_of_mixed(result, preemption.MACHINE_TYPE)
        assert mixed.spot.node_hours > 0
        assert mixed.spot.hourly_price < mixed.on_demand.hourly_price


def test_soak_full(benchmark):
    """A full-size soak run holds every invariant."""
    report = run_once(benchmark, run_soak, 1, SoakConfig())
    assert report.quiesced, report.describe()
    assert report.ok, report.describe()
    assert report.stats["tasks_done"] + report.stats["tasks_abandoned"] == 120
    assert len(report.events) >= SoakConfig().schedule.min_events
