"""Micro-benchmarks of the simulation substrate itself.

These keep the kernel honest as the codebase grows: event throughput,
link re-planning under churn, and a full mid-sized experiment, measured
with pytest-benchmark's normal multi-round statistics (unlike the figure
benches, these are cheap enough to repeat).
"""

from __future__ import annotations

from repro.cluster.cluster import ClusterConfig
from repro.cluster.node import N1_STANDARD_4_RESERVED
from repro.experiments.runner import StackConfig, run_hta_experiment
from repro.sim.engine import Engine
from repro.wq.link import Link
from repro.workloads.synthetic import uniform_bag


def test_engine_event_throughput(benchmark):
    """Schedule-and-fire cost for 10k chained events."""

    def run():
        engine = Engine()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                engine.call_in(1.0, tick)

        engine.call_in(1.0, tick)
        engine.run()
        return count[0]

    assert benchmark(run) == 10_000


def test_link_replan_churn(benchmark):
    """500 staggered transfers forcing continual fair-share re-planning."""

    def run():
        engine = Engine()
        link = Link(engine, 1000.0)
        for i in range(500):
            engine.call_at(
                float(i % 50), lambda i=i: link.start_transfer(f"t{i}", 100.0)
            )
        engine.run()
        return link.transfers_completed

    assert benchmark(run) == 500


def test_full_experiment_wall_time(benchmark):
    """A mid-sized HTA experiment end-to-end (the harness's unit cost)."""
    cfg = StackConfig(
        cluster=ClusterConfig(
            machine_type=N1_STANDARD_4_RESERVED, min_nodes=2, max_nodes=6
        ),
        seed=3,
    )

    def run():
        return run_hta_experiment(
            uniform_bag(40, execute_s=60.0, declared=True), stack_config=cfg
        )

    result = benchmark(run)
    assert result.tasks_completed == 40
