"""Bench: HTA under infrastructure churn (beyond the paper).

Pods are "disposable object[s] which might fail or restart" (§II-C).
This bench runs the multistage workflow while a chaos schedule crashes a
random worker node every ~10 simulated minutes, and verifies the whole
stack converges: tasks requeue, the cloud controller heals the pool, HTA
re-provisions, and the workflow completes with bounded overhead.
"""

from __future__ import annotations

from benchmarks.conftest import run_once

from repro.cluster.chaos import ChaosInjector
from repro.cluster.cluster import ClusterConfig
from repro.cluster.node import N1_STANDARD_4_RESERVED
from repro.experiments.runner import StackConfig, run_hta_experiment
from repro.workloads.synthetic import staged_pipeline


def _run(seed: int, chaos_interval_s: float | None):
    cfg = StackConfig(
        cluster=ClusterConfig(
            machine_type=N1_STANDARD_4_RESERVED,
            min_nodes=3,
            max_nodes=10,
            node_reservation_mean_s=100.0,
            node_reservation_std_s=3.0,
        ),
        seed=seed,
        max_sim_time_s=50_000.0,
    )
    workload = staged_pipeline([40, 6, 30], execute_s=120.0, declared=True)

    # Plug chaos into the runner via a monkey-level hook: we re-create
    # the private stack the runner builds, so instead run through the
    # public API and inject chaos with a wrapper workload? Simpler: use
    # the runner and attach chaos by patching the drive loop is fragile —
    # instead assemble manually for the chaotic variant.
    if chaos_interval_s is None:
        return run_hta_experiment(workload, stack_config=cfg, name="calm")
    return _run_chaotic(cfg, workload, chaos_interval_s)


def _run_chaotic(cfg, workload, interval_s):
    from repro.cluster.images import ContainerImage
    from repro.experiments.runner import _Stack, _drive, _collect, _make_accountant
    from repro.hta.inittime import InitTimeTracker
    from repro.hta.operator import HtaConfig, HtaOperator
    from repro.hta.provisioner import WorkerProvisioner
    from repro.makeflow.manager import WorkflowManager

    stack = _Stack(cfg, estimator_kind="monitor")
    provisioner = WorkerProvisioner(
        stack.engine,
        stack.cluster.api,
        stack.runtime,
        image=cfg.image,
        worker_request=stack.worker_request,
    )
    tracker = InitTimeTracker(stack.cluster.api, prior_s=160.0, selector_label="wq-worker")
    operator = HtaOperator(
        stack.engine,
        stack.master,
        provisioner,
        tracker,
        HtaConfig(initial_workers=3, max_workers=10),
        stack.recorder,
    )
    chaos = ChaosInjector(stack.engine, stack.cluster.api, stack.rng)
    chaos.schedule_node_failures(interval_s, start_after=300.0)
    manager = WorkflowManager(stack.engine, workload, operator, recorder=stack.recorder)
    manager.done_signal.add_waiter(lambda _m: operator.notify_no_more_jobs())
    accountant = _make_accountant(stack, shortage_extra=operator.held_cores)
    operator.start()
    _drive(stack, manager, accountant)
    chaos.stop()
    result = _collect(
        "chaotic",
        stack,
        manager,
        accountant,
        workload,
        nodes_killed=float(chaos.nodes_killed),
    )
    return result


def test_hta_survives_node_churn(benchmark, capsys):
    def run_both():
        calm = _run(seed=0, chaos_interval_s=None)
        chaotic = _run(seed=0, chaos_interval_s=600.0)
        return calm, chaotic

    calm, chaotic = run_once(benchmark, run_both)
    with capsys.disabled():
        print()
        print(f"  calm    : {calm.summary()}")
        print(
            f"  chaotic : {chaotic.summary()}  "
            f"nodes_killed={chaotic.extras['nodes_killed']:.0f} "
            f"requeued={chaotic.tasks_requeued}"
        )

    assert calm.tasks_completed == chaotic.tasks_completed == 76
    assert chaotic.extras["nodes_killed"] >= 1
    assert chaotic.tasks_requeued >= 1  # crashes really did hit workers
    # Bounded degradation: churn costs time, but not a collapse.
    assert chaotic.makespan_s < 3.0 * calm.makespan_s
