"""Bench: regenerate fig 6 (resource-initialization latency, 10 trials)."""

from __future__ import annotations

from benchmarks.conftest import run_once

from repro.experiments import fig6


def test_fig6_init_latency(benchmark, capsys):
    result = run_once(benchmark, fig6.run, 0, 10)
    with capsys.disabled():
        print()
        print(fig6.report(result))

    # Paper: mean 157.4 s, std 4.2 s — "the resource initialization
    # latency alters little".
    assert abs(result.mean_s - fig6.PAPER["mean_s"]) < 10.0
    assert result.std_s < 3 * fig6.PAPER["std_s"]
    assert len(result.samples) == 10
    # Stability claim: spread under 10% of the mean.
    spread = max(result.samples) - min(result.samples)
    assert spread < 0.15 * result.mean_s
