"""Bench: shard failover re-homes a dead shard's work (beyond the paper).

Regenerates the failover experiment at full scale — a 4-shard dispatch
plane losing one shard permanently mid-flight — and asserts the
contract the subsystem is sold on at the validated seed: with the
failover coordinator every task completes and the merged journal passes
the failover-protocol audit (zero tasks resumed twice, OUT/IN
balanced), while the bare plane strands the dead shard's partition at
the same sim-time horizon; HTA sizing under the crash stays within
tolerance of the no-crash oracle. A second benchmark runs the full-size
soak with the ``shard_crash`` chaos primitive enabled and asserts zero
invariant violations.
"""

from __future__ import annotations

import json

from benchmarks.conftest import run_once

from repro.experiments import failover
from repro.soak import SoakConfig, run_soak

SEED = 0


def test_failover_deterministic():
    """Two same-seed drives must agree on every headline number."""
    first = failover.run_shard_loss(failover=True, n_tasks=600, seed=SEED)
    second = failover.run_shard_loss(failover=True, n_tasks=600, seed=SEED)
    for attr in (
        "completed",
        "sim_s",
        "failovers",
        "tasks_rehomed",
        "tasks_rebalanced",
        "workers_reattached",
        "protocol_violations",
        "replay_violations",
    ):
        assert getattr(first, attr) == getattr(second, attr), attr


def test_failover_full(benchmark, tmp_path):
    """The full contract: main() raises SystemExit on any violation."""
    run_once(benchmark, failover.main, SEED, out_dir=str(tmp_path))
    report = json.loads((tmp_path / "BENCH_PERF.json").read_text())
    assert report["ok"] is True
    on = report["runs"]["shard-loss-failover"]
    off = report["runs"]["shard-loss-bare"]
    # Failover completes everything; the bare plane strands the dead
    # shard's partition — strictly fewer completions, same horizon.
    assert on["completed"] == on["n_tasks"]
    assert off["completed"] < on["completed"]
    assert on["failovers"] == 1
    assert on["tasks_rehomed"] > 0
    # Zero tasks resumed twice, OUT/IN balanced, replay clean.
    assert on["protocol_violations"] == 0
    assert on["replay_violations"] == 0
    assert off["protocol_violations"] == 0
    # HTA sizing under the mid-flight crash tracks the no-crash oracle.
    assert report["hta_fidelity"]["ok"] is True


def test_soak_with_shard_crashes_full(benchmark):
    """A full-size sharded soak with shard_crash holds every invariant."""
    config = SoakConfig(shards=4, shard_crash=True)
    report = run_once(benchmark, run_soak, 1, config)
    assert report.quiesced, report.describe()
    assert report.ok, report.describe()
    assert report.stats["shard_crashes"] >= 1, report.describe()
    assert (
        report.stats["tasks_done"] + report.stats["tasks_abandoned"] == 120
    )
