"""Bench: control-plane recovery (beyond the paper).

Runs HTA through a master crash at mid-makespan plus an API-server
outage, once with journal replay and once as a cold restart, each
against the same-seed fault-free twin, and asserts the recovery layer's
contract: journal replay re-executes zero completed tasks and degrades
the makespan strictly less than the cold restart (which re-runs its
completed prefix), and a given seed replays bit-for-bit.
"""

from __future__ import annotations

from benchmarks.conftest import run_once

from repro.experiments import recovery

SEED = 0


def _summaries(results):
    return {strategy: s for strategy, (_f, _b, s) in results.items()}


def test_recovery_deterministic():
    """Two same-seed runs must agree on every metric, bit for bit."""
    first = _summaries(recovery.run(SEED, smoke=True))
    second = _summaries(recovery.run(SEED, smoke=True))
    assert first.keys() == second.keys()
    for strategy in first:
        assert first[strategy].as_dict() == second[strategy].as_dict(), strategy


def test_recovery_full(benchmark):
    results = run_once(benchmark, recovery.run, SEED)
    assert set(results) == set(recovery.STRATEGIES)
    total = sum(count for _, count, _, _, _ in recovery.SPEC)

    for strategy, (faulty, baseline, summary) in results.items():
        # Both strategies eventually finish the whole workload.
        assert faulty.tasks_completed == total, strategy
        assert baseline.tasks_completed == total, strategy
        # The control-plane faults actually fired and the informer's
        # periodic relist-and-resync machinery ran behind them.
        assert summary.master_crashes == 1, strategy
        assert summary.api_outages >= 1, strategy
        assert summary.informer_resyncs > 0, strategy
        # The operator noticed: degraded cycles during the outage/crash.
        assert summary.degraded_cycles > 0, strategy
        assert summary.recovery_latency_s > 0, strategy
        assert summary.makespan_degradation >= 0, strategy

    journal = results["journal"][2]
    cold = results["cold"][2]
    # The headline contract: replaying the journal re-executes no
    # completed task; a cold restart re-runs its completed prefix and
    # pays for it in makespan.
    assert journal.tasks_rerun == 0
    assert cold.tasks_rerun > 0
    assert journal.makespan_degradation < cold.makespan_degradation
