"""Bench: HTA vs HPA vs a KEDA-style queue scaler (beyond the paper).

The paper's baseline is CPU-reactive HPA; modern deployments would reach
for a queue-driven scaler (KEDA). This bench runs all three on the fig-10
multistage workflow and the fig-11 I/O-bound workload at full scale:

* the queue scaler fixes HPA's I/O blind spot (it watches backlog, not
  CPU) — I/O-bound runtimes land near HTA's;
* on the CPU-bound multistage workflow it is *no better than HPA on
  waste*: it counts tasks rather than resources, jumps straight to the
  replica cap, and its cooldown pins the pool there through the stage-2
  dip exactly like HPA's stabilization window;
* HTA wastes the least against both — resource-aware packing plus
  init-time-paced decisions, not just a better trigger metric.
"""

from __future__ import annotations

from benchmarks.conftest import run_once

from repro.experiments import fig10, fig11
from repro.experiments.runner import run_queue_scaler_experiment
from repro.metrics.cost import CostModel
from repro.metrics.summary import format_summary_table


def test_baselines_multistage(benchmark, capsys):
    def run_all():
        results = {
            "HPA(20% CPU)": fig10.run_hpa(0.20, 0),
            "HTA": fig10.run_hta(0),
            "KEDA-queue": run_queue_scaler_experiment(
                fig10.workload(),
                stack_config=fig10.stack_config(0),
                tasks_per_replica=3.0,
                min_replicas=3,
                max_replicas=20,
            ),
        }
        return results

    results = run_once(benchmark, run_all)
    model = CostModel()
    with capsys.disabled():
        print()
        print(
            format_summary_table(
                {k: r.accounting for k, r in results.items()},
                title="Multistage BLAST: HPA vs HTA vs KEDA-style queue scaler",
            )
        )
        for name, r in results.items():
            cost = model.cost_of(r, "n1-standard-4-reserved")
            print(f"  {name:<14} cloud cost: {cost}")

    total = sum(fig10.STAGES)
    assert all(r.tasks_completed == total for r in results.values())
    hta, keda, hpa = results["HTA"], results["KEDA-queue"], results["HPA(20% CPU)"]
    # The queue scaler is at best comparable to HPA on waste here: it
    # saturates the replica cap instantly and the cooldown pins it there
    # through the stage-2 dip, same pathology as HPA's stabilization.
    assert (
        keda.accounting.accumulated_waste_core_s
        > 0.6 * hpa.accounting.accumulated_waste_core_s
    )
    # It does finish no slower than HPA (no CPU-ramp lag).
    assert keda.makespan_s <= hpa.makespan_s * 1.1
    # HTA wastes the least against both baselines, by a wide margin.
    assert (
        hta.accounting.accumulated_waste_core_s
        < 0.5 * keda.accounting.accumulated_waste_core_s
    )
    assert (
        hta.accounting.accumulated_waste_core_s
        < 0.5 * hpa.accounting.accumulated_waste_core_s
    )
    # Node-hour *dollars* tell a subtler story than core-second waste:
    # HTA releases worker pods promptly, but the freed nodes idle through
    # the cluster autoscaler's 10-minute reclaim timeout before billing
    # stops, and HTA's longer runtime keeps the base pool alive longer —
    # so the 4-5x pod-level waste cut compresses to near-parity on the
    # bill. (Shortening the node idle timeout recovers the gap; see the
    # cost model docs.) Guard the observation, not a fairy tale:
    hta_cost = model.cost_of(hta, "n1-standard-4-reserved").total_usd
    hpa_cost = model.cost_of(hpa, "n1-standard-4-reserved").total_usd
    assert hta_cost < hpa_cost * 1.15


def test_baselines_io_bound(benchmark, capsys):
    def run_all():
        return {
            "HPA(20% CPU)": fig11.run_hpa(0.20, 0),
            "HTA": fig11.run_hta(0),
            "KEDA-queue": run_queue_scaler_experiment(
                fig11.workload(),
                stack_config=fig11.stack_config(0),
                tasks_per_replica=3.0,
                min_replicas=3,
                max_replicas=20,
            ),
        }

    results = run_once(benchmark, run_all)
    with capsys.disabled():
        print()
        print(
            format_summary_table(
                {k: r.accounting for k, r in results.items()},
                title="I/O-bound: HPA vs HTA vs KEDA-style queue scaler",
            )
        )

    assert all(r.tasks_completed == fig11.N_TASKS for r in results.values())
    hta, keda, hpa = results["HTA"], results["KEDA-queue"], results["HPA(20% CPU)"]
    # No CPU blind spot: the queue scaler finishes several times faster
    # than HPA, in HTA's ballpark.
    assert keda.makespan_s < 0.5 * hpa.makespan_s
    assert keda.makespan_s < 2.0 * hta.makespan_s
