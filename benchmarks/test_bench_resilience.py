"""Bench: the resilience evaluation (beyond the paper).

Runs HTA, HPA, and the predictive scaler under the default fault
profile — per-attempt task failures, resource-exhaustion kills, node
crashes, a boot-failure window, and an image-pull stall — next to their
fault-free twins, and asserts the fault-tolerance layer's contract:
every policy finishes every task (nothing permanently abandoned), the
goodput/waste/degradation metrics are recorded for all three, and a
given seed replays bit-for-bit.
"""

from __future__ import annotations

from benchmarks.conftest import run_once

from repro.experiments import resilience

SEED = 0


def _summaries(results):
    return {policy: s for policy, (_f, _b, s) in results.items()}


def test_resilience_deterministic():
    """Two same-seed runs must agree on every metric, bit for bit."""
    first = _summaries(resilience.run(SEED))
    second = _summaries(resilience.run(SEED))
    assert first.keys() == second.keys()
    for policy in first:
        assert first[policy].as_dict() == second[policy].as_dict(), policy


def test_resilience_full(benchmark):
    results = run_once(benchmark, resilience.run, SEED)
    assert set(results) == set(resilience.POLICIES)
    total = sum(count for _, count, _, _, _ in resilience.SPEC)

    for policy, (faulty, baseline, summary) in results.items():
        # Everything finished despite the faults — the retry/escalation
        # machinery never permanently gave up on a task.
        assert summary.tasks_abandoned == 0, policy
        assert faulty.tasks_completed == total, policy
        assert baseline.tasks_completed == total, policy
        # The benchmark's headline metrics exist and are sane.
        assert summary.goodput_core_s > 0, policy
        assert summary.wasted_core_s >= 0, policy
        assert summary.makespan_degradation >= 0, policy
        assert 0 < summary.goodput_fraction <= 1, policy
        # The fault-free twin really ran fault-free.
        assert baseline.extras["tasks_failed"] == 0, policy
        assert baseline.extras["wasted_core_s"] == 0, policy

    hta = results["HTA"][2]
    # The profile actually injected faults into the HTA run: task-level
    # failures, provisioning faults, and node crashes all fired.
    assert hta.tasks_failed > 0
    assert hta.nodes_killed > 0
    assert hta.boot_failures > 0
    # Exhaustion kills escalated category allocations (fed into HTA's
    # planning through the monitor).
    assert hta.escalations > 0
