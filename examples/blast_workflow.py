#!/usr/bin/env python3
"""The paper's motivating scenario: a multistage BLAST workflow,
HTA vs the Kubernetes Horizontal Pod Autoscaler.

A scaled-down version of the fig-10 evaluation (stages of 60/10/48 tasks
instead of 200/34/164) so it runs in a couple of seconds:

    python examples/blast_workflow.py
"""

from repro.cluster.cluster import ClusterConfig
from repro.cluster.node import N1_STANDARD_4_RESERVED
from repro.experiments.report import ascii_chart
from repro.experiments.runner import (
    StackConfig,
    ExperimentSpec,
    run_experiment,
)
from repro.metrics.summary import comparison_factors, format_summary_table
from repro.workloads.blast import blast_multistage


def stack(seed: int = 7) -> StackConfig:
    return StackConfig(
        cluster=ClusterConfig(
            machine_type=N1_STANDARD_4_RESERVED,
            min_nodes=3,
            max_nodes=12,
        ),
        seed=seed,
    )


def main() -> None:
    workload = lambda: blast_multistage(
        (60, 10, 48), execute_s=150.0, declared=False
    )

    print("Running HPA(20% CPU) ...")
    hpa = run_experiment(
        ExperimentSpec(
            workload(),
            policy="hpa",
            stack=stack(),
            options={"target_cpu": 0.2, "min_replicas": 3, "max_replicas": 12},
        )
    )
    print("Running HTA ...")
    hta = run_experiment(ExperimentSpec(workload(), policy="hta", stack=stack()))

    print()
    print(
        format_summary_table(
            {"HPA(20% CPU)": hpa.accounting, "HTA": hta.accounting},
            title="Multistage BLAST (60/10/48 tasks)",
        )
    )
    factors = comparison_factors(hta.accounting, hpa.accounting)
    print()
    print(
        f"HTA vs HPA-20: waste cut {factors['waste_reduction']:.1f}x, "
        f"runtime {factors['runtime_increase']:+.1%} "
        f"(paper at full scale: 5.6x for +12.5%)"
    )

    for name, result in (("HPA-20", hpa), ("HTA", hta)):
        t0, t1 = result.accountant.window()
        print()
        print(
            ascii_chart(
                {
                    "supply": result.series("supply"),
                    "demand": result.series("demand"),
                },
                t0,
                t1,
                title=f"{name}: supply vs demand (cores) — note HTA's "
                "mid-workflow dip" if name == "HTA" else f"{name}: supply vs demand (cores)",
            )
        )


if __name__ == "__main__":
    main()
