#!/usr/bin/env python3
"""The HPA blind spot: I/O-bound workloads never trip a CPU autoscaler.

A scaled-down fig-11: 60 disk-bound tasks whose CPU usage sits near 11%.
Every HPA CPU target above that reads "over-provisioned" and the cluster
never grows, while the queue starves. HTA plans from queue length and
per-category resource estimates instead, and scales out immediately.

    python examples/io_bound_autoscaling.py
"""

from repro.cluster.cluster import ClusterConfig
from repro.cluster.node import N1_STANDARD_4_RESERVED
from repro.experiments.runner import (
    StackConfig,
    ExperimentSpec,
    run_experiment,
)
from repro.metrics.summary import comparison_factors, format_summary_table
from repro.workloads.iobound import iobound_parallel


def stack(seed: int = 3) -> StackConfig:
    return StackConfig(
        cluster=ClusterConfig(
            machine_type=N1_STANDARD_4_RESERVED,
            min_nodes=3,
            max_nodes=10,
        ),
        seed=seed,
    )


def main() -> None:
    workload = lambda: iobound_parallel(60, execute_s=120.0, declared=False)

    results = {}
    for target in (0.2, 0.5):
        name = f"HPA({int(target*100)}% CPU)"
        print(f"Running {name} ...")
        results[name] = run_experiment(
            ExperimentSpec(
                workload(),
                policy="hpa",
                stack=stack(),
                options={"target_cpu": target, "min_replicas": 3, "max_replicas": 10},
            )
        )
    print("Running HTA ...")
    results["HTA"] = run_experiment(
        ExperimentSpec(workload(), policy="hta", stack=stack())
    )

    print()
    print(
        format_summary_table(
            {k: r.accounting for k, r in results.items()},
            title="I/O-bound workload (60 dd-style tasks, CPU ~11%)",
        )
    )

    for name, r in results.items():
        t0, t1 = r.accountant.window()
        peak_workers = r.series("workers_connected").maximum(t0, t1)
        print(f"  {name:<14} peak workers: {peak_workers:.0f}")

    f = comparison_factors(results["HTA"].accounting, results["HPA(20% CPU)"].accounting)
    print()
    print(
        f"HTA finishes {f['speedup']:.2f}x faster than HPA-20 "
        f"(paper at full scale: 3.66x)"
    )


if __name__ == "__main__":
    main()
