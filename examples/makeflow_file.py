#!/usr/bin/env python3
"""Drive a workflow written in the Makeflow dialect end-to-end.

Writes a Makeflow file (GNU-Make-like rules with category/resource
directives), parses it into a DAG, and executes it under HTA — the exact
pipeline of the paper's fig 8 (Makeflow → HTA → Work Queue → Kubernetes).

    python examples/makeflow_file.py
"""

import tempfile

from repro.cluster.cluster import ClusterConfig
from repro.cluster.node import N1_STANDARD_4_RESERVED
from repro.experiments.runner import ExperimentSpec, StackConfig, run_experiment
from repro.makeflow.parser import parse_makeflow_file

MAKEFLOW_TEXT = """\
# A split / align / reduce workflow in the Makeflow dialect.
# .SIZE declares file sizes (MB); CACHE marks worker-cacheable files.
.SIZE genome.db 1400 CACHE

CATEGORY=split
CORES=1
MEMORY=1000
RUNTIME=30

chunk.0 chunk.1 chunk.2 chunk.3: reads.fastq
\tsplit-reads reads.fastq 4

CATEGORY=align
MEMORY=2500
RUNTIME=120

hits.0: genome.db chunk.0
\tblastall -d genome.db -i chunk.0 -o hits.0
hits.1: genome.db chunk.1
\tblastall -d genome.db -i chunk.1 -o hits.1
hits.2: genome.db chunk.2
\tblastall -d genome.db -i chunk.2 -o hits.2
hits.3: genome.db chunk.3
\tblastall -d genome.db -i chunk.3 -o hits.3

CATEGORY=reduce
MEMORY=1500
RUNTIME=45

report.txt: hits.0 hits.1 hits.2 hits.3
\tmerge-hits -o report.txt hits.*
"""


def main() -> None:
    with tempfile.NamedTemporaryFile("w", suffix=".mf", delete=False) as fh:
        fh.write(MAKEFLOW_TEXT)
        path = fh.name

    graph = parse_makeflow_file(path)
    print(f"Parsed {path}:")
    print(f"  tasks            : {len(graph)}")
    print(f"  categories       : {graph.category_counts()}")
    print(f"  DAG depth        : {graph.depth()}")
    print(f"  initial files    : {sorted(graph.initial_files())}")
    print(f"  final outputs    : {sorted(graph.final_outputs())}")
    print(f"  critical path    : {graph.critical_path_seconds():.0f}s")

    result = run_experiment(
        ExperimentSpec(
            graph,
            policy="hta",
            stack=StackConfig(
                cluster=ClusterConfig(
                    machine_type=N1_STANDARD_4_RESERVED, min_nodes=2, max_nodes=4
                ),
                seed=1,
            ),
        )
    )
    print()
    print(result.summary())
    lower_bound = graph.critical_path_seconds()
    print(f"  (critical-path lower bound: {lower_bound:.0f}s)")


if __name__ == "__main__":
    main()
