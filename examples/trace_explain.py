#!/usr/bin/env python3
"""Trace a run and explain the autoscaler's decisions.

Runs a small bursty workload under HTA with telemetry enabled, then:

1. prints the per-cycle decision audit (what the operator saw, what it
   estimated, what it did, and why — including degraded-mode overrides);
2. shows a few raw trace events from each layer;
3. exports the trace as Chrome trace format (open in chrome://tracing or
   https://ui.perfetto.dev) and the run's metrics as Prometheus text.

    python examples/trace_explain.py
"""

from collections import Counter

from repro import ExperimentSpec, TelemetryConfig, run_experiment
from repro.cluster.cluster import ClusterConfig
from repro.cluster.node import N1_STANDARD_4_RESERVED
from repro.experiments.runner import StackConfig
from repro.telemetry import (
    explain_decisions,
    prometheus_text,
    write_chrome_trace,
)
from repro.workloads.synthetic import uniform_bag


def main() -> None:
    result = run_experiment(
        ExperimentSpec(
            uniform_bag(40, execute_s=60.0, declared=False),
            policy="hta",
            stack=StackConfig(
                cluster=ClusterConfig(
                    machine_type=N1_STANDARD_4_RESERVED,
                    min_nodes=2,
                    max_nodes=8,
                ),
                seed=11,
            ),
            telemetry=TelemetryConfig(enabled=True),
        )
    )
    print(result.summary())

    # 1. The decision audit: one row per operator cycle.
    print()
    print(explain_decisions(result.trace_events))

    # 2. What else the trace captured, by layer and event name.
    print()
    counts = Counter((e.layer, e.name) for e in result.trace_events)
    print(f"{len(result.trace_events)} events recorded:")
    for (layer, name), n in sorted(counts.items()):
        print(f"  {layer:8s} {name:24s} x{n}")

    # 3. Export: a Chrome trace plus the metrics in Prometheus text.
    write_chrome_trace([(result.name, result.trace_events)], "hta_trace.json")
    print("\nwrote hta_trace.json (load in chrome://tracing or ui.perfetto.dev)")
    text = prometheus_text(result.telemetry.metrics)
    print(f"\nmetrics ({text.count(chr(10))} exposition lines), e.g.:")
    for line in text.splitlines():
        if line.startswith("wq_task_execute_seconds_"):
            print(f"  {line}")


if __name__ == "__main__":
    main()
