#!/usr/bin/env python3
"""Quickstart: run a workload under HTA and inspect the result.

This is the smallest end-to-end use of the library: generate a bag of
tasks, run it under the High-Throughput Autoscaler on a simulated
GKE-like cluster, and look at the resource series the paper plots.

    python examples/quickstart.py
"""

from repro.cluster.cluster import ClusterConfig
from repro.cluster.node import N1_STANDARD_4_RESERVED
from repro.experiments.report import ascii_chart
from repro.experiments.runner import ExperimentSpec, StackConfig, run_experiment
from repro.workloads.synthetic import uniform_bag


def main() -> None:
    # 1. A workload: 60 identical one-core jobs of ~90 s each, with
    #    resource requirements *not* declared — HTA will probe the first
    #    job, learn the category's footprint, and pack the rest.
    workload = uniform_bag(60, execute_s=90.0, declared=False)

    # 2. A cluster: up to 10 n1-standard-4 nodes (3 allocatable cores
    #    each), starting from a 3-node base pool.
    stack = StackConfig(
        cluster=ClusterConfig(
            machine_type=N1_STANDARD_4_RESERVED,
            min_nodes=3,
            max_nodes=10,
        ),
        seed=42,
    )

    # 3. Run it.
    result = run_experiment(ExperimentSpec(workload, policy="hta", stack=stack))

    # 4. What happened?
    print(result.summary())
    print()
    print(f"  peak nodes        : {result.nodes_peak}")
    print(f"  workers started   : {result.workers_started}")
    print(f"  resize decisions  : {result.extras['plans']:.0f}")
    print(f"  init-time samples : {result.extras['init_time_samples']:.0f}")
    print()
    t0, t1 = result.accountant.window()
    print(
        ascii_chart(
            {
                "supply": result.series("supply"),
                "in-use": result.series("in_use"),
                "shortage": result.series("shortage"),
            },
            t0,
            t1,
            title="Resource supply / in-use / shortage (cores)",
        )
    )


if __name__ == "__main__":
    main()
