#!/usr/bin/env python3
"""Sensitivity sweeps around the paper's operating points.

Three studies in one script:

1. the fig-2 HPA target-CPU comparison, generalized to a 5-point grid;
2. HTA's sensitivity to a mis-estimated resource-initialization time
   (what the live informer feedback is worth);
3. the fig-4 worker-granularity trade-off as a curve, with total cores
   held constant.

Also demonstrates CSV export of the series for external plotting:

    python examples/parameter_sweep.py
"""

import tempfile

from repro.cluster.cluster import ClusterConfig
from repro.cluster.node import GKE_SMALL_3CPU, N1_STANDARD_4_RESERVED
from repro.experiments.runner import StackConfig
from repro.experiments.sweeps import (
    sweep_fixed_init_time,
    sweep_hpa_targets,
    sweep_table,
    sweep_worker_sizes,
)
from repro.metrics.export import export_series_csv
from repro.workloads.blast import blast_parallel
from repro.workloads.synthetic import uniform_bag


def main() -> None:
    stack = StackConfig(
        cluster=ClusterConfig(
            machine_type=N1_STANDARD_4_RESERVED, min_nodes=3, max_nodes=10
        ),
        seed=11,
    )

    print("1) HPA target-CPU grid (fig 2, generalized) ...")
    hpa = sweep_hpa_targets(
        lambda: uniform_bag(60, execute_s=60.0, declared=True),
        [0.1, 0.3, 0.5, 0.7, 0.95],
        stack_config=stack,
        min_replicas=3,
    )
    print(sweep_table(hpa, title="HPA target sweep (60 x 60s jobs)"))
    print()

    print("2) HTA init-time estimate sensitivity ...")
    init = sweep_fixed_init_time(
        lambda: uniform_bag(60, execute_s=60.0, declared=True),
        [10.0, 80.0, 320.0],
        stack_config=stack,
    )
    print(sweep_table(init, title="HTA with pinned init-time estimates"))
    print("   ('live' = informer-measured; tiny estimates re-plan furiously,")
    print("    huge ones react a full fake-cycle late)")
    print()

    print("3) Worker granularity with 12 total cores (fig 4, as a curve) ...")
    sizes = sweep_worker_sizes(
        lambda: blast_parallel(40, execute_s=40.0, declared=True),
        [1.0, 1.5, 3.0],
        stack_config=StackConfig(
            cluster=ClusterConfig(
                machine_type=GKE_SMALL_3CPU, min_nodes=4, max_nodes=4
            ),
            link_capacity_mbps=500.0,
            per_stream_overhead=0.05,
            seed=11,
        ),
        total_cores=12.0,
    )
    print(sweep_table(sizes, title="Worker size sweep (cores per worker)"))

    # Export one run's series for external plotting.
    some_result = hpa[0.3]
    with tempfile.NamedTemporaryFile("w", suffix=".csv", delete=False) as fh:
        path = fh.name
    rows = export_series_csv(some_result, path, dt=15.0)
    print(f"\nExported {rows} rows of HPA-30% series to {path}")


if __name__ == "__main__":
    main()
