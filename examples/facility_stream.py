#!/usr/bin/env python3
"""A long-running HTC facility: workflows arriving all day.

The paper's opening scenario — "complete as many jobs as possible over a
long period of time" — as a runnable demo: a Poisson stream of workflow
instances over four simulated hours, managed once by HTA and once by
HPA, with facility-level statistics (per-workflow makespans, throughput,
day-scale waste).

    python examples/facility_stream.py
"""

from repro.cluster.cluster import ClusterConfig
from repro.cluster.node import N1_STANDARD_4_RESERVED
from repro.experiments.continuous import run_continuous_hpa, run_continuous_hta
from repro.experiments.runner import StackConfig
from repro.makeflow.dag import WorkflowGraph
from repro.sim.rng import RngRegistry
from repro.workloads.arrivals import poisson_arrivals
from repro.workloads.synthetic import uniform_bag


def workflow_factory(i: int) -> WorkflowGraph:
    # Every instance is the same pipeline shape; resource requirements
    # are NOT declared — the facility learns them from the first instance
    # and every later arrival skips the probing cost.
    return WorkflowGraph(
        uniform_bag(16, execute_s=180.0, declared=False, category="analysis")
    )


def make_arrivals(seed: int):
    return poisson_arrivals(
        workflow_factory,
        rng=RngRegistry(seed),
        rate_per_hour=5.0,
        horizon_s=4 * 3600.0,
    )


def stack(seed: int = 0) -> StackConfig:
    return StackConfig(
        cluster=ClusterConfig(
            machine_type=N1_STANDARD_4_RESERVED, min_nodes=3, max_nodes=10
        ),
        seed=seed,
        max_sim_time_s=100_000.0,
    )


def main() -> None:
    arrivals = make_arrivals(2)
    print(f"{len(arrivals)} workflow instances over 4 simulated hours\n")

    print("Running the stream under HTA ...")
    hta = run_continuous_hta(make_arrivals(2), stack_config=stack())
    print("Running the same stream under HPA-20% ...")
    hpa = run_continuous_hpa(
        make_arrivals(2), target_cpu=0.2, stack_config=stack(),
        min_replicas=3, max_replicas=10,
    )

    print()
    for name, res in (("HTA", hta), ("HPA-20%", hpa)):
        print(f"{name}:")
        print(f"  {res.summary()}")
    print()
    first, *rest = hta.workflow_makespans
    faster = sum(m < first for m in rest)
    print(
        f"Category learning across instances: the first workflow took "
        f"{first:.0f}s (probe included); {faster}/{len(rest)} later "
        f"instances were faster."
    )
    waste_cut = (
        hpa.result.accounting.accumulated_waste_core_s
        / max(1.0, hta.result.accounting.accumulated_waste_core_s)
    )
    print(f"Facility-level waste cut by HTA over the stream: {waste_cut:.1f}x")


if __name__ == "__main__":
    main()
