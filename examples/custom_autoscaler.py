#!/usr/bin/env python3
"""Build your own autoscaling policy on the library's substrates.

The experiment runner wires HTA or HPA, but every piece is a public
component: this example assembles the stack by hand and plugs in a
custom policy — a naive "queue-proportional" controller that requests
one worker per N waiting tasks with no init-time awareness — then
compares it against HTA on the same workload and seed.

The point: the HTA operator is ~one class; alternative controllers drop
into the same sockets (master stats in, provisioner actions out).

    python examples/custom_autoscaler.py
"""

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.images import ContainerImage
from repro.cluster.node import N1_STANDARD_4_RESERVED
from repro.experiments.runner import ExperimentSpec, StackConfig, run_experiment
from repro.hta.provisioner import WorkerProvisioner
from repro.metrics.accounting import ResourceAccountant
from repro.makeflow.dag import WorkflowGraph
from repro.makeflow.manager import WorkflowManager
from repro.sim.engine import Engine, PeriodicTask
from repro.sim.rng import RngRegistry
from repro.wq.estimator import MonitorEstimator
from repro.wq.link import Link
from repro.wq.master import Master
from repro.wq.monitor import ResourceMonitor
from repro.wq.runtime import WorkerPodRuntime
from repro.workloads.synthetic import uniform_bag


class QueueProportionalAutoscaler:
    """One worker per ``tasks_per_worker`` waiting tasks, every 30 s.

    Deliberately naive: no init-time feedback (it re-requests while pods
    are still provisioning, over-shooting), no drain-on-idle until the
    queue is fully empty.
    """

    def __init__(self, engine, master, provisioner, *, tasks_per_worker=3, max_workers=10):
        self.engine = engine
        self.master = master
        self.provisioner = provisioner
        self.tasks_per_worker = tasks_per_worker
        self.max_workers = max_workers
        self.decisions = 0
        self._loop = PeriodicTask(engine, 30.0, self._sync, start_after=5.0)

    def _sync(self):
        self.decisions += 1
        stats = self.master.stats()
        live = len(self.provisioner.live_pods())
        desired = min(
            self.max_workers,
            max(1, -(-stats.backlog // self.tasks_per_worker)),  # ceil
        )
        if desired > live:
            self.provisioner.create_workers(desired - live)
        elif stats.waiting == 0 and stats.workers_idle > 0:
            self.provisioner.drain_workers(stats.workers_idle)

    def stop(self):
        self._loop.stop()


def run_custom(workload, seed=5):
    engine = Engine()
    rng = RngRegistry(seed)
    cluster = Cluster(
        engine,
        rng,
        ClusterConfig(machine_type=N1_STANDARD_4_RESERVED, min_nodes=2, max_nodes=10),
    )
    link = Link(engine, 500.0)
    monitor = ResourceMonitor()
    master = Master(engine, link, estimator=MonitorEstimator(monitor), monitor=monitor)
    runtime = WorkerPodRuntime(engine, cluster.api, cluster.kubelets, master)
    provisioner = WorkerProvisioner(
        engine,
        cluster.api,
        runtime,
        image=ContainerImage("wq-worker", 500.0),
        worker_request=N1_STANDARD_4_RESERVED.allocatable,
    )
    scaler = QueueProportionalAutoscaler(engine, master, provisioner)
    accountant = ResourceAccountant(
        engine,
        supply=master.supplied_cores,
        in_use=master.cores_in_use,
        shortage=master.cores_waiting,
        nodes=lambda: float(cluster.node_count()),
    )
    manager = WorkflowManager(engine, WorkflowGraph(workload), master)
    accountant.start()
    manager.start()
    while not manager.done and engine.peek() is not None:
        engine.run(until=engine.now + 60.0)
    accountant.stop()
    scaler.stop()
    provisioner.drain_all()
    return manager, accountant, scaler


def main() -> None:
    make_workload = lambda: uniform_bag(45, execute_s=80.0, declared=True)

    manager, accountant, scaler = run_custom(make_workload())
    custom = accountant.summarize()
    print("queue-proportional (custom):")
    print(
        f"  runtime {manager.makespan:.0f}s, "
        f"waste {custom.accumulated_waste_core_s:.0f} core*s, "
        f"utilization {custom.utilization:.1%}, "
        f"decisions {scaler.decisions}"
    )

    hta = run_experiment(
        ExperimentSpec(
            make_workload(),
            policy="hta",
            stack=StackConfig(
                cluster=ClusterConfig(
                    machine_type=N1_STANDARD_4_RESERVED, min_nodes=2, max_nodes=10
                ),
                seed=5,
            ),
        )
    )
    print("HTA (paper's controller):")
    print(f"  {hta.summary()}")
    print()
    ratio = custom.accumulated_waste_core_s / max(
        1.0, hta.accounting.accumulated_waste_core_s
    )
    print(f"The naive controller wastes {ratio:.1f}x more core-seconds than HTA.")


if __name__ == "__main__":
    main()
