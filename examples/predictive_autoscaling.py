#!/usr/bin/env python3
"""Predictive autoscaling: provision *before* the burst lands.

A facility where a burst of identical jobs arrives on a fixed cadence —
an upstream instrument dumping a batch every 7 minutes — and every burst
arrives faster than a worker can cold-start. Reactive policies pay one
full resource-initialization cycle of shortage per burst; the
:class:`~repro.forecast.scaler.PredictiveScaler` samples demand, keeps a
pool of competing forecasters scored by rolling error, and sizes the
worker pool for the predicted demand envelope one init cycle ahead.

The forecaster pool includes an AR model whose order spans one arrival
period, so it can *learn the burst cycle*: watch the online selector
switch to it once its rolling error undercuts the reactive models.

    python examples/predictive_autoscaling.py
"""

from repro.experiments.continuous import (
    run_continuous_predictive,
    run_continuous_queue_scaler,
)
from repro.experiments.forecast_cmp import (
    BURSTS,
    BURST_TASKS,
    EXECUTE_S,
    INTERVAL_S,
    arrivals,
    stack_config,
)
from repro.forecast.models import ArLeastSquaresForecaster, default_forecasters
from repro.forecast.selector import OnlineModelSelector


def main() -> None:
    print(
        f"Burst stream: {BURSTS} bursts x {BURST_TASKS} tasks "
        f"({EXECUTE_S:.0f}s each), one burst every {INTERVAL_S:.0f}s.\n"
    )

    # Default pool (naive / EWMA / Holt) plus a period-spanning AR:
    # 420 s period / 15 s sampling = 28 lags, so order 30 sees one full
    # cycle and can predict the next burst before it arrives.
    pool = default_forecasters() + [
        ArLeastSquaresForecaster(window=96, order=30, name="ar-period")
    ]
    selector = OnlineModelSelector(pool)

    print("Running the stream under the PredictiveScaler ...")
    predictive = run_continuous_predictive(
        arrivals(), stack_config=stack_config(0), selector=selector,
        name="Predictive",
    )
    print("Running the same stream under the KEDA-style queue scaler ...")
    keda = run_continuous_queue_scaler(
        arrivals(), stack_config=stack_config(0), tasks_per_replica=3.0,
        name="KEDA-queue",
    )

    print()
    for name, res in (("Predictive", predictive), ("KEDA-queue", keda)):
        print(f"{name}:")
        print(f"  {res.summary()}")

    print()
    print("Forecaster pool after the run (rolling MAE, times selected):")
    for f in pool:
        picks = selector.selections.get(f.name, 0)
        mae = f.rolling_mae()
        mae_s = f"{mae:8.2f}" if mae != float("inf") else "     n/a"
        print(f"  {f.name:<12} mae {mae_s}   selected {picks:4d}x")

    p_acc = predictive.result.accounting
    k_acc = keda.result.accounting
    print()
    print(
        f"Waste: predictive {p_acc.accumulated_waste_core_s:.0f} core*s "
        f"vs queue baseline {k_acc.accumulated_waste_core_s:.0f} core*s "
        f"({p_acc.accumulated_waste_core_s / k_acc.accumulated_waste_core_s:.0%}) "
        f"at last finish {predictive.last_finish_s:.0f}s vs "
        f"{keda.last_finish_s:.0f}s."
    )
    print(
        "The queue scaler's cooldown pins the pool at the burst peak "
        "between bursts; the predictive pool drains it (drains are free) "
        "and re-provisions ahead of the next burst."
    )


if __name__ == "__main__":
    main()
