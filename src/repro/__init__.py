"""repro — reproduction of *Autoscaling High-Throughput Workloads on
Container Orchestrators* (Zheng, Kremer-Herman, Shaffer, Thain; IEEE
CLUSTER 2020).

The package implements the paper's contribution — **HTA, the
High-Throughput Autoscaler** (:mod:`repro.hta`) — together with every
substrate it runs on, rebuilt from scratch as a deterministic
discrete-event simulation:

* :mod:`repro.sim` — the discrete-event kernel (engine, processes, seeded
  RNG streams, exact step-function metric traces);
* :mod:`repro.cluster` — a Kubernetes-like orchestrator (API server +
  watches, scheduler, kubelets, cloud-controller node autoscaling,
  metrics-server, and the HPA baseline);
* :mod:`repro.wq` — a Work Queue-like master/worker scheduler with a
  fair-share master-egress network link and per-worker input caches;
* :mod:`repro.makeflow` — a Makeflow-like DAG workflow manager with a
  GNU-Make-style parser;
* :mod:`repro.workloads` — the paper's workloads (multistage BLAST,
  I/O-bound `dd`, CPU-bound synthetics);
* :mod:`repro.metrics` — RIU/RSH/RD/RS/RW accounting and core×s integrals;
* :mod:`repro.telemetry` — structured tracing, a metrics registry, and
  exporters (JSONL / Chrome trace / Prometheus text) shared by every
  layer, plus the per-cycle autoscaling decision audit;
* :mod:`repro.experiments` — one harness per paper figure/table.

Quickstart::

    from repro import ExperimentSpec, run_experiment
    from repro.workloads import blast_multistage

    result = run_experiment(
        ExperimentSpec(blast_multistage(), policy="hta", seed=7)
    )
    print(result.summary())

Swap ``policy`` for ``"hpa"``, ``"predictive"``, ``"queue"``, or
``"static"`` (with ``options={"n_workers": N}``) to compare the paper's
baselines on the same substrate. To audit what the autoscaler did, pass
``telemetry=TelemetryConfig(enabled=True)`` and feed
``result.trace_events`` to :func:`repro.telemetry.explain_decisions`.

See README.md for the architecture overview, DESIGN.md for the system
inventory, and EXPERIMENTS.md for paper-vs-measured numbers.
"""

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # -- the experiment API
    "ExperimentResult",
    "ExperimentSpec",
    "FaultProfile",
    "StackConfig",
    "register_policy",
    "run_experiment",
    # -- the sharded data plane (see repro.wq for the full substrate)
    "DispatchConfig",
    "DispatchCore",
    "FailoverConfig",
    "FailoverCoordinator",
    "Foreman",
    "TaskPartitioner",
    # -- telemetry
    "MetricsRegistry",
    "TelemetryConfig",
    "TraceEvent",
    "Tracer",
    "chrome_trace",
    "explain_decisions",
    "prometheus_text",
    "write_events_jsonl",
    # -- deprecated entry points (thin wrappers over run_experiment)
    "run_hpa_experiment",
    "run_hta_experiment",
    "run_predictive_experiment",
    "run_queue_scaler_experiment",
    "run_static_experiment",
]

_RUNNER_EXPORTS = {
    "ExperimentResult",
    "ExperimentSpec",
    "FaultProfile",
    "StackConfig",
    "register_policy",
    "run_experiment",
    "run_hpa_experiment",
    "run_hta_experiment",
    "run_predictive_experiment",
    "run_queue_scaler_experiment",
    "run_static_experiment",
}

_WQ_EXPORTS = {
    "DispatchConfig",
    "DispatchCore",
    "FailoverConfig",
    "FailoverCoordinator",
    "Foreman",
    "TaskPartitioner",
}

_TELEMETRY_EXPORTS = {
    "MetricsRegistry",
    "TelemetryConfig",
    "TraceEvent",
    "Tracer",
    "chrome_trace",
    "explain_decisions",
    "prometheus_text",
    "write_events_jsonl",
}


def __getattr__(name: str):
    # Lazy re-export: keeps `import repro` cheap and avoids importing the
    # whole experiment stack for users who only need a substrate.
    if name in _RUNNER_EXPORTS:
        from repro.experiments import runner

        return getattr(runner, name)
    if name in _WQ_EXPORTS:
        import repro.wq as wq

        return getattr(wq, name)
    if name in _TELEMETRY_EXPORTS:
        import repro.telemetry as telemetry

        return getattr(telemetry, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
