"""A KEDA-style queue-length autoscaler baseline.

Control law (KEDA's ``queueLength`` trigger feeding an HPA external
metric, collapsed to its effective behaviour):

    desired = clamp(ceil(backlog / tasks_per_replica), min, max)

with a polling interval and a scale-down *cooldown*: the replica count
only shrinks after the recommendation has been at/below the lower value
for ``cooldown_s`` seconds. Unlike HTA it knows nothing about resource
initialization time or per-category footprints — it reacts to queue
*length*, not queue *size in resources* — and unlike HTA it scales a
replica controller whose shrink path **deletes pods** (killing tasks).

This is deliberately a strong baseline: on homogeneous workloads with
well-chosen ``tasks_per_replica`` it tracks demand closely; HTA's edge
shows up when task footprints are unknown/mixed or provisioning latency
makes reactive requests arrive late.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

import math

from repro.cluster.replicaset import WorkerReplicaSet
from repro.sim.engine import Engine, PeriodicTask
from repro.sim.tracing import MetricRecorder
from repro.wq.master import Master


@dataclass(frozen=True, slots=True)
class QueueScalerConfig:
    """Tunables; defaults follow KEDA's."""

    #: Waiting+running tasks one replica is expected to absorb
    #: (KEDA's ``queueLength`` target value).
    tasks_per_replica: float = 3.0
    min_replicas: int = 1
    max_replicas: int = 20
    polling_interval_s: float = 30.0
    #: The recommendation must stay low this long before shrinking
    #: (KEDA's ``cooldownPeriod``).
    cooldown_s: float = 300.0

    def __post_init__(self) -> None:
        if self.tasks_per_replica <= 0:
            raise ValueError("tasks_per_replica must be positive")
        if self.min_replicas < 0 or self.max_replicas < self.min_replicas:
            raise ValueError("invalid replica bounds")
        if self.polling_interval_s <= 0:
            raise ValueError("polling_interval_s must be positive")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be non-negative")


class QueueLengthAutoscaler:
    """Scales a :class:`WorkerReplicaSet` from the master's backlog."""

    def __init__(
        self,
        engine: Engine,
        master: Master,
        target: WorkerReplicaSet,
        config: QueueScalerConfig = QueueScalerConfig(),
        recorder: Optional[MetricRecorder] = None,
    ) -> None:
        self.engine = engine
        self.master = master
        self.target = target
        self.config = config
        self.recorder = recorder
        self.sync_count = 0
        self.scale_events = 0
        self._recommendations: Deque[Tuple[float, int]] = deque()
        self._loop = PeriodicTask(
            engine, config.polling_interval_s, self.sync, start_after=0.0
        )
        if target.current_count() < config.min_replicas:
            target.scale_to(config.min_replicas)

    def stop(self) -> None:
        self._loop.stop()

    # ----------------------------------------------------------------- sync
    def sync(self) -> None:
        self.sync_count += 1
        backlog = self.master.stats().backlog
        raw = math.ceil(backlog / self.config.tasks_per_replica)
        raw = max(self.config.min_replicas, min(self.config.max_replicas, raw))
        desired = self._cooled(raw)
        if self.recorder is not None:
            self.recorder.set("keda.backlog", backlog)
            self.recorder.set("keda.desired", desired)
        current = self.target.current_count()
        if desired != current:
            self.scale_events += 1
            self.target.scale_to(desired)

    def _cooled(self, raw: int) -> int:
        """Scale-down cooldown: use the max recommendation in the window."""
        now = self.engine.now
        self._recommendations.append((now, raw))
        cutoff = now - self.config.cooldown_s
        while self._recommendations and self._recommendations[0][0] < cutoff:
            self._recommendations.popleft()
        return max(rec for _, rec in self._recommendations)
