"""Additional autoscaling baselines beyond the paper's HPA.

The paper's related work (§VII) discusses queue-driven autoscalers;
today's canonical open-source implementation is KEDA's queue-length
scaler. :mod:`~repro.baselines.queue_scaler` implements that control law
on our substrates so HTA can be compared against a stronger baseline
than CPU-reactive HPA — see ``benchmarks/test_bench_baselines.py``.
"""

from repro.baselines.queue_scaler import QueueLengthAutoscaler, QueueScalerConfig

__all__ = ["QueueLengthAutoscaler", "QueueScalerConfig"]
