"""The Makeflow-Kubernetes operator: HTA's control loop (fig 8).

The operator sits between the workflow manager and the Work Queue master
(it satisfies :class:`repro.makeflow.manager.Submitter`), and drives the
three autoscaling stages of §V-C:

1. **Warm-up** — the initial worker pool is created and job fan-out is
   gated: the first job of each *unknown* category goes out alone as a
   probe; its siblings are held until the probe completes and the
   resource monitor has a category estimate. Jobs with declared
   resources pass straight through.
2. **Runtime** — a periodic resizing loop: gather the latest resource
   initialization time (informer), queue status (master), and category
   statistics (monitor); run Algorithm 1; create or drain worker pods.
   The interval to the next action is the plan's — by default one
   resource-initialization cycle, exactly the paper's anti-thrashing
   rule ("time intervals between two resizing actions is always set as
   the latest resource initialization time").
3. **Clean-up** — on the workflow's no-more-jobs notification, once the
   queue drains: drain all workers, delete leftover pods, stop loops.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from repro.cluster.resources import ResourceVector
from repro.forecast.models import default_forecasters
from repro.forecast.selector import OnlineModelSelector
from repro.hta.estimator import (
    EstimatorConfig,
    ForecastArrival,
    PendingWorker,
    ResourceEstimator,
    ScalePlan,
    SimulatedTask,
)
from repro.hta.inittime import InitTimeTracker
from repro.hta.preemption import PreemptionResponder
from repro.hta.provisioner import WorkerProvisioner
from repro.sim.engine import Engine, PeriodicTask
from repro.sim.process import Signal
from repro.sim.tracing import MetricRecorder
from repro.telemetry.events import NULL_TRACER, Tracer
from repro.wq.master import Master
from repro.wq.task import Task, TaskResult, TaskState
from repro.wq.worker import WorkerState


@dataclass(frozen=True, slots=True)
class HtaConfig:
    """Operator tunables."""

    #: Worker pods created at start ("the cluster has 3 nodes" §V-A).
    initial_workers: int = 3
    #: Resource quota, in workers (= nodes, one worker-pod per node).
    max_workers: int = 20
    #: Worker pool floor during the run (the 3-node base pool, §V-A);
    #: the clean-up stage still drains everything at the end.
    min_workers: int = 3
    #: Gate unknown categories behind a single probe task (§V-C warm-up).
    warmup_probing: bool = True
    #: Count warm-up-held tasks as waiting when estimating. The paper
    #: provisions for jobs it has *submitted* — held jobs have unknown
    #: sizes by definition (that is why they are held), so including
    #: them forces worst-case whole-worker guesses and defeats the
    #: warm-up stage. Off by default; the ablation bench flips it.
    count_held_tasks: bool = False
    #: Feed in-flight worker pods into the estimator (see estimator doc).
    count_pending_workers: bool = True
    #: Delay before the first resizing decision.
    first_cycle_s: float = 5.0
    #: Hybrid mode: inject forecast task arrivals as synthetic waiting
    #: tasks into Algorithm 1's simulation, so the plan provisions for
    #: predicted inflow as well as the visible queue. The arrival rate is
    #: sampled from the operator's own submission stream and forecast by
    #: an online-selected model pool (see :mod:`repro.forecast`).
    forecast_arrivals: bool = False
    #: Arrival-rate sampling cadence for the hybrid mode.
    forecast_sample_interval_s: float = 15.0
    #: Cap on synthetic tasks injected per plan (keeps Algorithm 1's
    #: forward simulation bounded when a model overshoots).
    forecast_max_tasks: int = 64
    #: Rolling error window for the hybrid mode's model pool.
    forecast_error_window: int = 32
    #: Control-plane self-defense: when the API server is down, the
    #: master is unreachable, or the informer cache is stale beyond
    #: ``staleness_bound``, the resize cycle stops trusting its inputs —
    #: scale-down freezes, the last-known-good init-time estimate is
    #: held, and sizing falls back to conservative queue length.
    degraded_mode: bool = True
    #: Informer staleness (store writes not yet seen) above which the
    #: feedback signal is considered broken. Healthy operation is
    #: transiently nonzero (watch delivery is asynchronous), so the
    #: bound must absorb a normal burst of in-flight events.
    staleness_bound: int = 16
    estimator: EstimatorConfig = field(default_factory=EstimatorConfig)


class HtaOperator:
    """The HTA middleware. See module docstring."""

    def __init__(
        self,
        engine: Engine,
        master: Master,
        provisioner: WorkerProvisioner,
        init_tracker: InitTimeTracker,
        config: HtaConfig = HtaConfig(),
        recorder: Optional[MetricRecorder] = None,
        *,
        tracer: Optional[Tracer] = None,
        preemption: Optional[PreemptionResponder] = None,
    ) -> None:
        self.engine = engine
        self.master = master
        self.provisioner = provisioner
        self.init_tracker = init_tracker
        self.config = config
        self.recorder = recorder
        #: Set when the stack runs a spot pool with a responder: the
        #: resize cycle then discounts spot workers by the observed
        #: survival rate (Algorithm 1's supply term, preemption-aware).
        self.preemption = preemption
        #: Decision-audit stream: one ``hta/decision`` event per resize
        #: cycle when tracing is armed (see telemetry.explain).
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.estimator = ResourceEstimator(provisioner.worker_request, config.estimator)
        self._held: Dict[str, List[Task]] = {}
        self._probes_in_flight: Dict[str, int] = {}
        self._callbacks: List[Callable[[Task, TaskResult], None]] = []
        self._no_more_jobs = False
        self._cleaned_up = False
        self.started = False
        self.plans: List[ScalePlan] = []
        self.done_signal = Signal(engine, "hta.done")
        self._loop: Optional[PeriodicTask] = None
        #: Degraded-mode telemetry (see :attr:`HtaConfig.degraded_mode`).
        self.degraded_cycles = 0
        self.scale_downs_frozen = 0
        self._last_good_init: Optional[float] = None
        #: Hybrid-mode state (inert unless ``config.forecast_arrivals``).
        self.arrival_selector: Optional[OnlineModelSelector] = None
        self._arrivals_seen = 0
        self._arrivals_at_last_sample = 0
        self._recent_arrivals: Deque[Task] = deque(maxlen=32)
        self._arrival_sampler: Optional[PeriodicTask] = None
        if config.forecast_arrivals:
            self.arrival_selector = OnlineModelSelector(
                default_forecasters(error_window=config.forecast_error_window)
            )
        master.on_complete(self._master_completed)

    # ----------------------------------------------------------- Submitter
    def submit(self, task: Task) -> None:
        """Accept a ready job from the workflow manager (TCP server role)."""
        self._arrivals_seen += 1
        if self.config.forecast_arrivals:
            self._recent_arrivals.append(task)
        if self._should_hold(task):
            self._held.setdefault(task.category, []).append(task)
            return
        self._forward(task)

    def on_complete(self, fn: Callable[[Task, TaskResult], None]) -> None:
        self._callbacks.append(fn)

    def on_abandoned(self, fn: Callable[[Task], None]) -> None:
        """Pass-through: abandoned-task notifications come from the
        master (tasks held by HTA are never lost, only queued ones)."""
        self.master.on_abandoned(fn)

    def _should_hold(self, task: Task) -> bool:
        if not self.config.warmup_probing:
            return False
        if task.declared is not None:
            return False
        if self.master.monitor.has_estimate(task.category):
            return False
        # Unknown category: the first job becomes the probe, the rest wait.
        return self._probes_in_flight.get(task.category, 0) > 0

    def _forward(self, task: Task) -> None:
        if (
            self.config.warmup_probing
            and task.declared is None
            and not self.master.monitor.has_estimate(task.category)
        ):
            self._probes_in_flight[task.category] = (
                self._probes_in_flight.get(task.category, 0) + 1
            )
        self.master.submit(task)

    def _master_completed(self, task: Task, result: TaskResult) -> None:
        # Probe done → its category now has an estimate; flush held tasks.
        if self._probes_in_flight.pop(task.category, None) is not None:
            for held in self._held.pop(task.category, []):
                self.master.submit(held)
        for fn in list(self._callbacks):
            fn(task, result)
        self._maybe_clean_up()

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Warm-up stage: bootstrap the worker pool and the resize loop."""
        if self.started:
            return
        self.started = True
        self.provisioner.create_workers(self.config.initial_workers)
        self._loop = PeriodicTask(
            self.engine,
            self.config.estimator.default_cycle_s,
            self._cycle,
            start_after=self.config.first_cycle_s,
            use_return_delay=True,
        )
        if self.config.forecast_arrivals:
            self._arrival_sampler = PeriodicTask(
                self.engine,
                self.config.forecast_sample_interval_s,
                self._sample_arrival_rate,
                start_after=self.config.forecast_sample_interval_s,
            )

    def _sample_arrival_rate(self) -> None:
        """Feed the hybrid mode's models one arrival-rate observation."""
        assert self.arrival_selector is not None
        delta = self._arrivals_seen - self._arrivals_at_last_sample
        self._arrivals_at_last_sample = self._arrivals_seen
        rate = delta / self.config.forecast_sample_interval_s
        self.arrival_selector.observe(self.engine.now, rate)

    def notify_no_more_jobs(self) -> None:
        """The workflow manager has no further jobs (clean-up trigger)."""
        self._no_more_jobs = True
        self._maybe_clean_up()

    def stop(self) -> None:
        if self._loop is not None:
            self._loop.stop()
            self._loop = None
        if self._arrival_sampler is not None:
            self._arrival_sampler.stop()
            self._arrival_sampler = None
        if self.preemption is not None:
            self.preemption.close()
        close = getattr(self.init_tracker, "close", None)
        if close is not None:
            # Unsubscribe the tracker's informer (and stop its resync
            # timer) so back-to-back experiments on one API server don't
            # leak watch handlers. FixedInitTime has nothing to close.
            close()

    @property
    def held_count(self) -> int:
        return sum(len(v) for v in self._held.values())

    def held_cores(self) -> float:
        """Footprint cores of warm-up-held tasks; part of the true
        resource shortage (held jobs are ready, just gated by HTA)."""
        return sum(t.footprint.cores for v in self._held.values() for t in v)

    def _maybe_clean_up(self) -> None:
        if (
            not self._no_more_jobs
            or self._cleaned_up
            or self.held_count
            or not self.master.all_done
        ):
            return
        self._cleaned_up = True
        self.stop()
        self.provisioner.stop()
        self.provisioner.drain_all()
        self.provisioner.cancel_pending(10**9)
        self.done_signal.fire_once(self)

    # --------------------------------------------------------- resize cycle
    def _cycle(self) -> float:
        """One runtime-stage pass; returns the delay to the next one."""
        if self._cleaned_up:
            return False  # stop the loop
        if self.config.degraded_mode and self._degraded():
            return self._degraded_cycle()
        if self.master.tasks_submitted == 0 and not self._no_more_jobs:
            # Still in warm-up: the initial pool stands until the first
            # jobs arrive; resizing starts with the runtime stage (§V-C).
            if self.tracer.enabled:
                self._emit_decision("warmup", 0)
            return self.config.estimator.default_cycle_s
        self._last_good_init = self.init_tracker.current()
        plan = self.plan_once()
        self.plans.append(plan)
        created, cancelled, drained = self._apply(plan)
        if self.recorder is not None:
            self.recorder.set("hta.plan.delta", plan.delta)
            self.recorder.set("hta.plan.waiting_after", plan.waiting_after)
            self.recorder.set("hta.init_time", self.init_tracker.current())
        if self.tracer.enabled:
            self._emit_decision(
                "normal",
                plan.delta,
                created=created,
                cancelled=cancelled,
                drained=drained,
                next_action_s=plan.next_action_s,
                waiting_after=plan.waiting_after,
            )
        return max(self.config.estimator.min_cycle_s, plan.next_action_s)

    def _degraded(self) -> bool:
        """True when the control loop's feedback inputs cannot be
        trusted: API server down, master unreachable, or informer cache
        stale beyond the bound."""
        api = getattr(self.provisioner, "api", None)
        if api is not None and not getattr(api, "available", True):
            return True
        if not self.master.available:
            return True
        informer = getattr(self.init_tracker, "informer", None)
        if informer is not None and informer.staleness() > self.config.staleness_bound:
            return True
        return False

    def _degraded_cycle(self) -> float:
        """Fail-safe resize pass: never scale down on stale data; size
        the pool by raw queue length (one worker per backlogged task,
        the conservative pre-Algorithm-1 rule) so live demand is always
        covered; hold the last-known-good init time as the interval."""
        self.degraded_cycles += 1
        live = [
            w
            for w in self.master.connected_workers()
            if w.state is WorkerState.READY and not w.quarantined
        ]
        backlog = 0
        if self.master.available:
            stats = self.master.stats()
            backlog = stats.waiting + stats.running + self.held_count
        target = max(
            len(live),
            min(self.config.max_workers, max(self.config.min_workers, backlog)),
        )
        pending = len(self.provisioner.pending_pods())
        delta = target - (len(live) + pending)
        created_pods = 0
        if delta > 0:
            created_pods = len(self.provisioner.create_workers(delta))
        elif delta < 0:
            # Would shrink the pool — frozen until the signal recovers.
            self.scale_downs_frozen += 1
        if self.recorder is not None:
            self.recorder.set("hta.degraded", 1.0)
        if self.tracer.enabled:
            api = getattr(self.provisioner, "api", None)
            informer = getattr(self.init_tracker, "informer", None)
            staleness = informer.staleness() if informer is not None else 0
            self._emit_decision(
                "degraded",
                delta,
                created=created_pods,
                scale_down_frozen=delta < 0,
                api_available=bool(getattr(api, "available", True)),
                master_available=self.master.available,
                staleness_exceeded=staleness > self.config.staleness_bound,
            )
        hold = (
            self._last_good_init
            if self._last_good_init is not None
            else self.config.estimator.default_cycle_s
        )
        return max(self.config.estimator.min_cycle_s, hold)

    def plan_once(self) -> ScalePlan:
        """Gather inputs and run Algorithm 1 (no side effects)."""
        init_time = self.init_tracker.current()
        running = [self._simulated_running(t) for t in self.master.running_tasks()]
        waiting = [self._simulated_waiting(t) for t in self.master.waiting_tasks()]
        if self.config.count_held_tasks:
            for held_tasks in self._held.values():
                waiting.extend(self._simulated_waiting(t) for t in held_tasks)

        # Quarantined workers are dead supply: the dispatcher refuses
        # them, so counting them would understate the workers Algorithm 1
        # still needs to provision.
        live = [
            w
            for w in self.master.connected_workers()
            if w.state is WorkerState.READY and not w.quarantined
        ]
        idle = sum(1 for w in live if w.idle)
        pending: List[PendingWorker] = []
        if self.config.count_pending_workers:
            for pod in self.provisioner.pending_pods():
                age = self.engine.now - pod.meta.creation_time
                eta = max(1.0, init_time - age)
                pending.append(PendingWorker(pod.spec.request, eta))
        spot_workers = 0
        spot_survival = 1.0
        if self.preemption is not None:
            spot_workers = sum(1 for w in live if self._on_spot_node(w))
            spot_survival = self.preemption.tracker.survival_rate()
        return self.estimator.estimate(
            rsrc_init_time=init_time,
            running=running,
            waiting=waiting,
            active_workers=len(live),
            idle_workers=idle,
            pending=pending,
            max_workers=self.config.max_workers,
            min_workers=self.config.min_workers,
            future_arrivals=self._forecast_arrivals(init_time),
            spot_workers=spot_workers,
            spot_survival=spot_survival,
        )

    @staticmethod
    def _on_spot_node(worker) -> bool:
        pod = worker.pod
        return pod is not None and pod.node is not None and pod.node.preemptible

    def _forecast_arrivals(self, init_time: float) -> List[ForecastArrival]:
        """Hybrid mode: predicted submissions over the coming cycle.

        Expected count is the trapezoid of the forecast rate at now and
        at the cycle end; synthetic tasks are spread evenly over the
        cycle and shaped like recent real arrivals (cycling through the
        last few, so a mixed stream injects a mixed prediction). After
        the workflow manager declares no more jobs the prediction is
        dropped — inflow is known to be zero and synthetic tasks would
        only stall the clean-up drain.
        """
        if (
            self.arrival_selector is None
            or self._no_more_jobs
            or not self._recent_arrivals
        ):
            return []
        rate_now = self.arrival_selector.predict(0.0)
        rate_end = self.arrival_selector.predict(init_time)
        expected = (rate_now + rate_end) / 2.0 * init_time
        count = min(int(expected), self.config.forecast_max_tasks)
        if count <= 0:
            return []
        prototypes = list(self._recent_arrivals)
        arrivals: List[ForecastArrival] = []
        for i in range(count):
            proto = prototypes[i % len(prototypes)]
            synthetic = SimulatedTask(
                self._estimate_resources(proto), self._estimate_runtime(proto)
            )
            eta = (i + 1) / (count + 1) * init_time
            arrivals.append(ForecastArrival(synthetic, eta))
        return arrivals

    def _apply(self, plan: ScalePlan) -> tuple:
        """Execute a plan; returns ``(created, cancelled, drained)`` pod
        counts for the decision audit."""
        if plan.delta > 0:
            created = self.provisioner.create_workers(plan.delta)
            return len(created), 0, 0
        if plan.delta < 0:
            remaining = -plan.delta
            cancelled = self.provisioner.cancel_pending(remaining)
            remaining -= cancelled
            drained = 0
            if remaining > 0:
                drained = len(self.provisioner.drain_workers(remaining))
            return 0, cancelled, drained
        return 0, 0, 0

    def _emit_decision(self, mode: str, delta: int, **extra) -> None:
        """One ``hta/decision`` audit record: the inputs this cycle saw,
        the resulting delta, and what was actually done (callers add the
        action/override attributes)."""
        live = [
            w
            for w in self.master.connected_workers()
            if w.state is WorkerState.READY and not w.quarantined
        ]
        stats = self.master.stats() if self.master.available else None
        informer = getattr(self.init_tracker, "informer", None)
        init_time = (
            self._last_good_init
            if self._last_good_init is not None
            else self.init_tracker.current()
        )
        attrs = dict(
            mode=mode,
            delta=int(delta),
            waiting=stats.waiting if stats is not None else 0,
            running=stats.running if stats is not None else 0,
            held=self.held_count,
            live_workers=len(live),
            idle_workers=sum(1 for w in live if w.idle),
            pending_pods=len(self.provisioner.pending_pods()),
            init_time_s=float(init_time),
            staleness=int(informer.staleness()) if informer is not None else 0,
        )
        attrs.update(extra)
        self.tracer.emit("hta", "decision", mode, **attrs)

    # ------------------------------------------------------------ modelling
    def _simulated_running(self, task: Task) -> SimulatedTask:
        resources = task.allocation or self._estimate_resources(task)
        predicted = self._estimate_runtime(task)
        if task.state is TaskState.RUNNING and task.start_time is not None:
            elapsed = self.engine.now - task.start_time
            remaining = max(1.0, predicted - elapsed)
        else:
            remaining = predicted  # still fetching inputs
        return SimulatedTask(resources, remaining)

    def _simulated_waiting(self, task: Task) -> SimulatedTask:
        return SimulatedTask(self._estimate_resources(task), self._estimate_runtime(task))

    def _estimate_resources(self, task: Task) -> ResourceVector:
        estimate = self.master.monitor.resource_estimate(task.category)
        if task.declared is not None:
            # Resource-exhaustion escalations can exceed the declaration
            # (that is their point); plan with whichever is larger, as
            # long as it still fits a worker.
            if estimate is not None:
                combined = task.declared.max_with(estimate)
                if combined.fits_in(self.provisioner.worker_request):
                    return combined
            return task.declared
        if estimate is not None and estimate.fits_in(self.provisioner.worker_request):
            return estimate
        return self.provisioner.worker_request  # unknown → whole worker

    def _estimate_runtime(self, task: Task) -> float:
        estimate = self.master.monitor.runtime_estimate(task.category)
        if estimate is not None and estimate > 0:
            return estimate
        if task.execute_s > 0 and task.declared is not None:
            # With declared resources and no history, the best available
            # guess in a real deployment is user-provided; our tasks carry
            # it as execute_s. Use it rather than a blind fallback.
            return task.execute_s
        return self.config.estimator.fallback_runtime_s
