"""Resource-initialization-time tracking through the informer cache.

§V-B: "we use the log data of the informer API to track the lifecycle of
each worker-pod ... If the creation process of a worker-pod experiences
three states — No Available Node, No Container Image, Worker-Pod Running
— we will use the time interval between HTA generating the worker-pod
creation request and the worker-pod becoming ready as the latest resource
initialization time."

Pods that start on an existing node (no ``FailedScheduling``) are *not*
cold starts and do not update the estimate — they would bias it far low.
Before any cold start has been observed, a configurable prior is served
(the paper's fig-6 benchmark measured ≈157 s on GKE).
"""

from __future__ import annotations

from statistics import median
from typing import Dict, List, Optional

from repro.cluster.api import KubeApiServer
from repro.cluster.informer import Informer
from repro.cluster.objects import KubeObject
from repro.cluster.pod import Pod, PodPhase
from repro.telemetry.events import Tracer


class FixedInitTime:
    """A non-learning stand-in for :class:`InitTimeTracker`.

    Always reports the constructed value; used by ablation benchmarks to
    measure what the live informer-fed estimate buys (and by deployments
    on clusters with no autoscaling, where the cycle length is policy).
    """

    def __init__(self, value_s: float):
        if value_s <= 0:
            raise ValueError("value_s must be positive")
        self.value_s = value_s
        self.samples: List[float] = []

    def current(self) -> float:
        return self.value_s

    @property
    def sample_count(self) -> int:
        return 0

    def mean(self) -> Optional[float]:
        return None


class InitTimeTracker:
    """Maintains the latest cold-start initialization time.

    The default estimate is the paper's: the single most recent cold
    start. ``robust=True`` switches to the median of the last ``window``
    samples — under provisioning faults (boot failures, pull stalls) one
    pathological cold start would otherwise poison the resizing horizon
    for a full cycle. Pods that never reach Running (boot failures,
    timed-out-and-deleted pods) are excluded either way: only
    Running/Succeeded transitions record a sample.
    """

    def __init__(
        self,
        api: KubeApiServer,
        *,
        prior_s: float = 160.0,
        selector_label: Optional[str] = None,
        robust: bool = False,
        window: int = 5,
        resync_period_s: Optional[float] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if prior_s <= 0:
            raise ValueError("prior_s must be positive")
        if window < 1:
            raise ValueError("window must be at least 1")
        self.prior_s = prior_s
        self.selector_label = selector_label
        self.robust = robust
        self.window = window
        self.latest_s: Optional[float] = None
        self.samples: List[float] = []
        self._seen: Dict[str, bool] = {}
        self.informer = Informer(
            api, "Pod", resync_period_s=resync_period_s, tracer=tracer
        )
        self.informer.on_update(self._pod_changed)
        self.informer.on_add(self._pod_changed)
        self.tracer = self.informer.tracer

    def close(self) -> None:
        """Unsubscribe the informer (experiments share one API server)."""
        self.informer.close()

    def __enter__(self) -> "InitTimeTracker":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ---------------------------------------------------------------- reads
    def current(self) -> float:
        """The initialization time HTA should plan with, in seconds."""
        if not self.samples:
            return self.prior_s
        if self.robust:
            return float(median(self.samples[-self.window:]))
        assert self.latest_s is not None
        return self.latest_s

    @property
    def sample_count(self) -> int:
        return len(self.samples)

    def mean(self) -> Optional[float]:
        return sum(self.samples) / len(self.samples) if self.samples else None

    # -------------------------------------------------------------- updates
    def _pod_changed(self, obj: KubeObject) -> None:
        if not isinstance(obj, Pod):
            return
        if self.selector_label is not None and (
            obj.meta.labels.get("app") != self.selector_label
        ):
            return
        if obj.phase not in (PodPhase.RUNNING, PodPhase.SUCCEEDED):
            return
        if self._seen.get(obj.name):
            return
        if not obj.experienced_cold_start():
            # Warm start (bin-packed onto an existing node): mark seen so
            # we don't re-inspect, but record nothing.
            if obj.started_time is not None:
                self._seen[obj.name] = True
            return
        interval = obj.initialization_interval()
        if interval is None or interval <= 0:
            return
        self._seen[obj.name] = True
        self.samples.append(interval)
        self.latest_s = interval
        if self.tracer.enabled:
            self.tracer.emit(
                "hta", "init_time.sample", pod=obj.name, interval_s=interval
            )
