"""HTA — the High-Throughput Autoscaler (the paper's contribution).

HTA is middleware between the workflow manager, the job scheduler, and
the cluster manager. It resizes the worker-pod pool from three inputs
(fig 7): the job queue's real-time status, the runtime statistics of
completed jobs (per category), and the cluster manager's latest
resource-initialization time.

* :mod:`~repro.hta.inittime` — tracks the fig-9 pod lifecycle through an
  informer and reports the latest cold-start initialization time;
* :mod:`~repro.hta.estimator` — Algorithm 1: forward-simulate completions
  and dispatch over one initialization cycle, returning the scale delta
  and the time to the next resizing action;
* :mod:`~repro.hta.provisioner` — creates worker pods (one whole node
  each, per §IV-A) and drains workers for non-disruptive scale-down;
* :mod:`~repro.hta.operator` — the Makeflow-Kubernetes operator: accepts
  jobs from the workflow manager, runs the warm-up / runtime / clean-up
  stages (§V-C), and applies the estimator's plan each cycle;
* :mod:`~repro.hta.preemption` — spot-pool awareness: evacuates workers
  on preemption-noticed nodes inside the grace window and tracks the
  pool's survival rate for Algorithm 1's discounted supply term.
"""

from repro.hta.inittime import InitTimeTracker
from repro.hta.estimator import (
    ResourceEstimator,
    EstimatorConfig,
    ScalePlan,
    SimulatedTask,
    PendingWorker,
)
from repro.hta.provisioner import SpotPolicy, WorkerProvisioner
from repro.hta.preemption import PreemptionResponder, SurvivalTracker
from repro.hta.operator import HtaOperator, HtaConfig
from repro.hta.deployment import MasterDeployment
from repro.hta.inittime import FixedInitTime

__all__ = [
    "InitTimeTracker",
    "ResourceEstimator",
    "EstimatorConfig",
    "ScalePlan",
    "SimulatedTask",
    "PendingWorker",
    "SpotPolicy",
    "WorkerProvisioner",
    "PreemptionResponder",
    "SurvivalTracker",
    "HtaOperator",
    "HtaConfig",
    "MasterDeployment",
    "FixedInitTime",
]
