"""Deploying the Work Queue master on the cluster (§V-A).

HTA "sets up the Work Queue framework on Kubernetes": the master runs in
a pod wrapped in a single-replica StatefulSet (sticky identity +
persistent volume for intermediate data), with two Services — a
LoadBalancer for Makeflow/HTA connecting from outside the cluster and a
ClusterIP for worker-pods inside it.

:class:`MasterDeployment` creates those objects and binds the
:class:`~repro.wq.master.Master` process to the pod's lifecycle:

* pod Running → ``master.resume()`` (queue state restored from the
  persistent volume; buffered worker completions delivered);
* pod killed (node crash, eviction) → ``master.pause()`` — dispatch
  stops and workers hold results until the StatefulSet controller's
  sticky replacement comes up.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.api import KubeApiServer, WatchEvent, WatchEventType
from repro.cluster.images import ContainerImage
from repro.cluster.objects import Service, StatefulSet
from repro.cluster.pod import Pod, PodPhase, PodSpec
from repro.cluster.resources import ResourceVector
from repro.cluster.statefulset import StatefulSetController
from repro.sim.engine import Engine
from repro.wq.master import Master

#: Default resource request of the master pod (it mostly moves data).
DEFAULT_MASTER_REQUEST = ResourceVector(cores=1, memory_mb=4 * 1024, disk_mb=50 * 1024)


class MasterDeployment:
    """Hosts a Work Queue master in a StatefulSet on the cluster."""

    def __init__(
        self,
        engine: Engine,
        api: KubeApiServer,
        master: Master,
        *,
        controller: Optional[StatefulSetController] = None,
        image: Optional[ContainerImage] = None,
        request: ResourceVector = DEFAULT_MASTER_REQUEST,
        port: int = 9123,
    ) -> None:
        self.engine = engine
        self.api = api
        self.master = master
        self.controller = (
            controller if controller is not None else StatefulSetController(engine, api)
        )
        self.image = image if image is not None else ContainerImage("wq-master", 300.0)
        self.restarts_observed = 0
        # The master is down until its pod starts.
        if master.available:
            master.pause()

        template = PodSpec(self.image, request, labels={"app": master.name})
        self.statefulset = StatefulSet(
            master.name,
            replicas=1,
            selector={"app": master.name},
            template=template,
            volume_gb=100.0,
        )
        api.create(self.statefulset)
        # "Dedicated services for HTA and worker-pods to access the
        # master pod from outside and inside of the cluster" (§V-A).
        self.external_service = Service(
            f"{master.name}-external",
            {"app": master.name},
            service_type="LoadBalancer",
            port=port,
        )
        self.internal_service = Service(
            f"{master.name}-internal",
            {"app": master.name},
            service_type="ClusterIP",
            port=port,
        )
        api.create(self.external_service)
        api.create(self.internal_service)
        api.watch("Pod", self._on_pod_event, replay_existing=True)

    def close(self) -> None:
        """Unsubscribe from the API server (end of an experiment run)."""
        self.api.unwatch("Pod", self._on_pod_event)

    def __enter__(self) -> "MasterDeployment":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # --------------------------------------------------------------- events
    def _on_pod_event(self, event: WatchEvent) -> None:
        pod = event.obj
        if not isinstance(pod, Pod):
            return
        if pod.meta.labels.get("statefulset") != self.statefulset.name:
            return
        if event.type is WatchEventType.DELETED:
            if not self.master.available:
                return
            self.master.pause()
            return
        if pod.phase is PodPhase.RUNNING and not self.master.available:
            if self.master.outages > 0 or self.restarts_observed > 0:
                self.restarts_observed += 1
            self.master.resume()
        elif pod.phase.terminal and self.master.available:
            self.master.pause()

    # ---------------------------------------------------------------- reads
    @property
    def master_pod(self) -> Optional[Pod]:
        pods = self.controller.pods_of(self.statefulset)
        return pods[0] if pods else None

    def describe(self) -> dict:
        pod = self.master_pod
        return {
            "statefulset": self.statefulset.name,
            "pod": pod.name if pod else None,
            "phase": pod.phase.value if pod else None,
            "master_available": self.master.available,
            "outages": self.master.outages,
        }
