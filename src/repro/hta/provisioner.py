"""The resource provisioner: creates worker pods and drains workers.

§IV-A's conclusion — "the configuration with larger worker-pod should be
preferred" — fixes the worker-pod shape: one pod per node, requesting the
node's full allocatable resources. Scale-up creates such pods through the
API server (the scheduler/cloud-controller do the rest). Scale-down
*drains*: the least-loaded live workers stop accepting tasks, finish what
they run, and exit — never interrupting jobs (§II-C).

The provisioner also garbage-collects Succeeded worker pods, so drained
nodes go idle and the cloud controller can reclaim them.
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from repro.cluster.api import KubeApiServer, WatchEvent, WatchEventType
from repro.cluster.images import ContainerImage
from repro.cluster.pod import Pod, PodPhase, PodSpec
from repro.cluster.resources import ResourceVector
from repro.sim.engine import Engine
from repro.wq.runtime import WorkerPodRuntime
from repro.wq.worker import Worker, WorkerState


class WorkerProvisioner:
    """Creates/drains HTA worker pods."""

    def __init__(
        self,
        engine: Engine,
        api: KubeApiServer,
        runtime: WorkerPodRuntime,
        *,
        image: ContainerImage,
        worker_request: ResourceVector,
        app_label: str = "wq-worker",
        name_prefix: str = "hta-worker",
    ) -> None:
        self.engine = engine
        self.api = api
        self.runtime = runtime
        self.image = image
        self.worker_request = worker_request
        self.app_label = app_label
        self.name_prefix = name_prefix
        self._seq = itertools.count(1)
        self.pods_created = 0
        self.pods_reaped = 0
        self.drains_requested = 0
        api.watch("Pod", self._on_pod_event, replay_existing=False)

    # -------------------------------------------------------------- scaling
    def create_workers(self, count: int) -> List[Pod]:
        """Create ``count`` worker pods (whole-node sized)."""
        created: List[Pod] = []
        for _ in range(count):
            name = f"{self.name_prefix}-{next(self._seq):04d}"
            spec = PodSpec(self.image, self.worker_request, labels={"app": self.app_label})
            pod = Pod(name, spec, creation_time=self.engine.now)
            self.api.create(pod)
            self.pods_created += 1
            created.append(pod)
        return created

    def drain_workers(self, count: int) -> List[Worker]:
        """Drain up to ``count`` live workers, idlest first."""
        candidates = [
            w
            for w in self.runtime.live_workers()
            if w.state in (WorkerState.READY, WorkerState.CONNECTING)
        ]
        # Idle first, then fewest running tasks, then youngest.
        candidates.sort(key=lambda w: (len(w.runs), -(w.connected_time or 0.0)))
        drained: List[Worker] = []
        for worker in candidates[:count]:
            worker.drain()
            self.drains_requested += 1
            drained.append(worker)
        return drained

    def drain_all(self) -> List[Worker]:
        """Clean-up stage: drain every live worker."""
        workers = list(self.runtime.live_workers())
        for worker in workers:
            worker.drain()
            self.drains_requested += 1
        return workers

    # ------------------------------------------------------------- tracking
    def my_pods(self) -> List[Pod]:
        return [
            p
            for p in self.api.pods({"app": self.app_label})
            if p.name.startswith(self.name_prefix)
        ]

    def live_pods(self) -> List[Pod]:
        return [p for p in self.my_pods() if not p.phase.terminal]

    def pending_pods(self) -> List[Pod]:
        """Created but not yet running — the estimator's in-flight pods."""
        return [p for p in self.my_pods() if p.phase is PodPhase.PENDING]

    def running_pods(self) -> List[Pod]:
        return [p for p in self.my_pods() if p.phase is PodPhase.RUNNING]

    def cancel_pending(self, count: int) -> int:
        """Delete up to ``count`` not-yet-running pods (over-provisioned
        before they cost anything); newest first."""
        pending = sorted(
            self.pending_pods(), key=lambda p: p.meta.creation_time, reverse=True
        )
        removed = 0
        for pod in pending[:count]:
            self.api.try_delete("Pod", pod.name)
            removed += 1
        return removed

    # --------------------------------------------------------------- events
    def _on_pod_event(self, event: WatchEvent) -> None:
        pod = event.obj
        if not isinstance(pod, Pod) or not pod.name.startswith(self.name_prefix):
            return
        if event.type is WatchEventType.MODIFIED and pod.phase is PodPhase.SUCCEEDED:
            # Reap completed (drained) worker pods so their node frees up.
            self.api.try_delete("Pod", pod.name)
            self.pods_reaped += 1
