"""The resource provisioner: creates worker pods and drains workers.

§IV-A's conclusion — "the configuration with larger worker-pod should be
preferred" — fixes the worker-pod shape: one pod per node, requesting the
node's full allocatable resources. Scale-up creates such pods through the
API server (the scheduler/cloud-controller do the rest). Scale-down
*drains*: the least-loaded live workers stop accepting tasks, finish what
they run, and exit — never interrupting jobs (§II-C).

The provisioner also garbage-collects Succeeded worker pods, so drained
nodes go idle and the cloud controller can reclaim them.

With a :class:`ProvisionerFaultConfig` installed, the provisioner also
defends against a faulty substrate: pods pending past a timeout are
deleted and re-created with exponential backoff, and a **circuit
breaker** halts scale-up bursts while provisioning keeps failing (node
boot failures, registry outages), re-probing with a single pod after a
cooldown — closed/open/half-open, like any service-call breaker.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.cluster.api import KubeApiServer, WatchEvent, WatchEventType
from repro.cluster.images import ContainerImage
from repro.cluster.node import PREEMPTIBLE_LABEL
from repro.cluster.pod import Pod, PodPhase, PodSpec
from repro.cluster.resources import ResourceVector
from repro.sim.engine import Engine, PeriodicTask
from repro.wq.runtime import WorkerPodRuntime
from repro.wq.worker import Worker, WorkerState

if TYPE_CHECKING:  # pragma: no cover — avoid an hta→metrics import cycle
    from repro.metrics.cost import CostModel


@dataclass(frozen=True, slots=True)
class ProvisionerFaultConfig:
    """Defensive-provisioning tunables (None on the provisioner = off)."""

    #: A pod pending longer than this is presumed stuck (boot failure,
    #: stalled pull) and deleted; generous by default — several times a
    #: healthy cold start — so slow-but-alive provisioning is untouched.
    pending_timeout_s: float = 420.0
    #: Scan cadence for the timeout check.
    check_period_s: float = 30.0
    #: Exponential backoff for re-creating timed-out pods.
    retry_backoff_base_s: float = 10.0
    retry_backoff_max_s: float = 300.0
    #: Consecutive pod timeouts that trip the breaker open.
    breaker_threshold: int = 3
    #: Open-state cooldown before a single half-open probe is allowed.
    breaker_cooldown_s: float = 300.0

    def __post_init__(self) -> None:
        if self.pending_timeout_s <= 0 or self.check_period_s <= 0:
            raise ValueError("timeouts must be positive")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be at least 1")
        if self.breaker_cooldown_s <= 0:
            raise ValueError("breaker_cooldown_s must be positive")


@dataclass(frozen=True, slots=True)
class SpotPolicy:
    """How scale-up splits new workers between on-demand and spot pools.

    Preemptible capacity is cheap but revocable; the policy caps spot
    exposure at ``spot_fraction`` of every batch so a reclamation wave
    never takes the whole fleet. :meth:`from_cost_model` derives the
    fraction from the actual price gap — the cheaper spot is relative to
    on-demand, the more of it is worth the interruption risk.
    """

    #: Fraction of each scale-up batch placed on the preemptible pool.
    spot_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.spot_fraction <= 1.0:
            raise ValueError("spot_fraction must be within [0, 1]")

    def split(self, count: int) -> tuple:
        """``count`` new workers → ``(n_spot, n_ondemand)``."""
        if count <= 0:
            return (0, 0)
        n_spot = round(count * self.spot_fraction)
        return (n_spot, count - n_spot)

    @classmethod
    def from_cost_model(
        cls,
        cost_model: "CostModel",
        machine_type_name: str,
        *,
        pool: str = "spot",
        cap: float = 0.8,
    ) -> "SpotPolicy":
        """Spot share proportional to the discount, capped at ``cap``.

        A 79% discount (the GCE preemptible rate) yields ~0.79 → capped;
        a pool barely cheaper than on-demand is barely used.
        """
        discount = cost_model.spot_discount(machine_type_name, pool=pool)
        return cls(spot_fraction=min(cap, discount))


class WorkerProvisioner:
    """Creates/drains HTA worker pods."""

    def __init__(
        self,
        engine: Engine,
        api: KubeApiServer,
        runtime: WorkerPodRuntime,
        *,
        image: ContainerImage,
        worker_request: ResourceVector,
        app_label: str = "wq-worker",
        name_prefix: str = "hta-worker",
        fault_config: Optional[ProvisionerFaultConfig] = None,
        spot_policy: Optional[SpotPolicy] = None,
    ) -> None:
        self.engine = engine
        self.api = api
        self.runtime = runtime
        self.image = image
        self.worker_request = worker_request
        self.app_label = app_label
        self.name_prefix = name_prefix
        #: None keeps every worker on-demand (and pods selector-free);
        #: set, each batch is split per the policy and pods carry a
        #: preemptible node selector so the scheduler pins the pools.
        self.spot_policy = spot_policy
        self._seq = itertools.count(1)
        self.pods_created = 0
        self.spot_pods_created = 0
        self.pods_reaped = 0
        self.drains_requested = 0
        # ----------------------------------------- defensive provisioning
        self.fault_config = fault_config
        #: "closed" (normal) / "open" (creations suppressed) /
        #: "half_open" (one probe allowed).
        self.breaker_state = "closed"
        self._breaker_open_until: Optional[float] = None
        self._probe_outstanding = False
        self._consecutive_timeouts = 0
        self._retry_attempt = 0
        self.pods_timed_out = 0
        self.creations_suppressed = 0
        self.retries_scheduled = 0
        self.breaker_opens = 0
        self.breaker_closes = 0
        #: Creations skipped because the API server was unavailable.
        self.creations_deferred = 0
        #: Creations refused because :meth:`stop` already ran — a pending
        #: retry scheduled by :meth:`_check_pending` can fire after the
        #: clean-up drain; creating then would leak an undrainable worker.
        self.creations_after_stop = 0
        self._stopped = False
        self._check_loop: Optional[PeriodicTask] = None
        if fault_config is not None:
            self._check_loop = PeriodicTask(
                engine, fault_config.check_period_s, self._check_pending
            )
        api.watch("Pod", self._on_pod_event, replay_existing=False)

    def stop(self) -> None:
        """Stop the defensive-provisioning loop and unsubscribe from the
        API server (clean-up stage; experiments share one server)."""
        self._stopped = True
        if self._check_loop is not None:
            self._check_loop.stop()
            self._check_loop = None
        self.api.unwatch("Pod", self._on_pod_event)

    # -------------------------------------------------------------- scaling
    def create_workers(self, count: int) -> List[Pod]:
        """Create ``count`` worker pods (whole-node sized)."""
        if self._stopped:
            # The clean-up drain already ran; a pod created now (e.g. a
            # pending-timeout retry that was in flight) would spawn a
            # worker no drain pass will ever visit.
            self.creations_after_stop += max(0, count)
            return []
        if not getattr(self.api, "available", True):
            # API server down: the create calls would fail. The next
            # (degraded) cycle re-evaluates demand and retries.
            self.creations_deferred += max(0, count)
            return []
        if self.fault_config is not None:
            count = self._breaker_admit(count)
        n_spot = 0
        if self.spot_policy is not None:
            n_spot, _ = self.spot_policy.split(count)
        created: List[Pod] = []
        for i in range(count):
            name = f"{self.name_prefix}-{next(self._seq):04d}"
            selector = {}
            if self.spot_policy is not None:
                selector = {PREEMPTIBLE_LABEL: "true" if i < n_spot else "false"}
            spec = PodSpec(
                self.image,
                self.worker_request,
                labels={"app": self.app_label},
                node_selector=selector,
            )
            pod = Pod(name, spec, creation_time=self.engine.now)
            self.api.create(pod)
            self.pods_created += 1
            if i < n_spot:
                self.spot_pods_created += 1
            created.append(pod)
        return created

    # ------------------------------------------------------ circuit breaker
    def _breaker_admit(self, count: int) -> int:
        """How many of ``count`` requested creations may proceed."""
        if count <= 0 or self.breaker_state == "closed":
            return count
        now = self.engine.now
        if self.breaker_state == "open":
            assert self._breaker_open_until is not None
            if now < self._breaker_open_until:
                self.creations_suppressed += count
                return 0
            self.breaker_state = "half_open"
            self._probe_outstanding = False
        # Half-open: let exactly one probe pod through at a time.
        if self._probe_outstanding:
            self.creations_suppressed += count
            return 0
        self._probe_outstanding = True
        if count > 1:
            self.creations_suppressed += count - 1
        return 1

    def _trip_breaker(self) -> None:
        assert self.fault_config is not None
        self.breaker_state = "open"
        self._breaker_open_until = (
            self.engine.now + self.fault_config.breaker_cooldown_s
        )
        self._probe_outstanding = False
        self._consecutive_timeouts = 0
        self.breaker_opens += 1

    def _close_breaker(self) -> None:
        if self.breaker_state != "closed":
            self.breaker_state = "closed"
            self._breaker_open_until = None
            self._probe_outstanding = False
            self.breaker_closes += 1
        self._consecutive_timeouts = 0
        self._retry_attempt = 0

    def _check_pending(self) -> None:
        """Delete pods pending past the timeout; retry with backoff."""
        cfg = self.fault_config
        assert cfg is not None
        if not getattr(self.api, "available", True):
            # Can't delete or re-create anything during an outage; don't
            # let timeout bookkeeping trip the breaker on stale reads.
            return
        now = self.engine.now
        timed_out = [
            p
            for p in self.pending_pods()
            if now - p.meta.creation_time >= cfg.pending_timeout_s
        ]
        if not timed_out:
            return
        for pod in timed_out:
            self.api.try_delete("Pod", pod.name)
        self.pods_timed_out += len(timed_out)
        self._consecutive_timeouts += len(timed_out)
        if self.breaker_state == "half_open":
            self._trip_breaker()  # the probe failed too; back to open
        elif (
            self.breaker_state == "closed"
            and self._consecutive_timeouts >= cfg.breaker_threshold
        ):
            self._trip_breaker()
        delay = min(
            cfg.retry_backoff_base_s * 2 ** self._retry_attempt,
            cfg.retry_backoff_max_s,
        )
        self._retry_attempt += 1
        self.retries_scheduled += len(timed_out)
        self.engine.call_in(delay, self.create_workers, len(timed_out))

    def drain_workers(self, count: int) -> List[Worker]:
        """Drain up to ``count`` live workers, idlest first."""
        candidates = [
            w
            for w in self.runtime.live_workers()
            if w.state in (WorkerState.READY, WorkerState.CONNECTING)
        ]
        # Idle first, then fewest running tasks, then youngest.
        candidates.sort(key=lambda w: (len(w.runs), -(w.connected_time or 0.0)))
        drained: List[Worker] = []
        for worker in candidates[:count]:
            worker.drain()
            self.drains_requested += 1
            drained.append(worker)
        return drained

    def drain_all(self) -> List[Worker]:
        """Clean-up stage: drain every live worker."""
        workers = list(self.runtime.live_workers())
        for worker in workers:
            worker.drain()
            self.drains_requested += 1
        return workers

    # ------------------------------------------------------------- tracking
    def my_pods(self) -> List[Pod]:
        return [
            p
            for p in self.api.pods({"app": self.app_label})
            if p.name.startswith(self.name_prefix)
        ]

    def live_pods(self) -> List[Pod]:
        return [p for p in self.my_pods() if not p.phase.terminal]

    def pending_pods(self) -> List[Pod]:
        """Created but not yet running — the estimator's in-flight pods."""
        return [p for p in self.my_pods() if p.phase is PodPhase.PENDING]

    def running_pods(self) -> List[Pod]:
        return [p for p in self.my_pods() if p.phase is PodPhase.RUNNING]

    def cancel_pending(self, count: int) -> int:
        """Delete up to ``count`` not-yet-running pods (over-provisioned
        before they cost anything); newest first."""
        pending = sorted(
            self.pending_pods(), key=lambda p: p.meta.creation_time, reverse=True
        )
        removed = 0
        for pod in pending[:count]:
            self.api.try_delete("Pod", pod.name)
            removed += 1
        return removed

    # --------------------------------------------------------------- events
    def _on_pod_event(self, event: WatchEvent) -> None:
        pod = event.obj
        if not isinstance(pod, Pod) or not pod.name.startswith(self.name_prefix):
            return
        if event.type is WatchEventType.MODIFIED and pod.phase is PodPhase.RUNNING:
            # Provisioning works again: reset failure tracking and close
            # the breaker (a half-open probe reaching Running recovers).
            if self.fault_config is not None:
                self._close_breaker()
        if event.type is WatchEventType.MODIFIED and pod.phase is PodPhase.SUCCEEDED:
            # Reap completed (drained) worker pods so their node frees up.
            self.api.try_delete("Pod", pod.name)
            self.pods_reaped += 1
