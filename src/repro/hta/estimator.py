"""Algorithm 1 — the Resource Estimation Algorithm.

A faithful port of the paper's pseudocode: simulate the execution of the
workflow forward over one resource-initialization cycle —

1. start from the resources currently available on active workers;
2. for each second ``t`` in ``1..rsrcInitTime``: return the resources of
   tasks predicted to complete at ``t``, then greedily dispatch waiting
   tasks into the freed capacity (first-fit, queue order);
3. afterwards:

   * waiting queue empty → ``(0, DefaultCycle)`` — resources suffice;
   * spare resources left → ``(-NumIdleWorkers, MaxRuntime(running))`` —
     scale down by the number of whole workers that would sit idle;
   * otherwise → ``(+WorkersRequired(waiting), rsrcInitTime)`` — scale up
     by the workers needed to host the still-waiting tasks.

Extensions (documented in DESIGN.md):

* worker pods already requested but not yet ready join the simulated
  capacity at their predicted ready time. The paper sidesteps this case
  by spacing decisions one initialization cycle apart; feeding the
  in-flight pods in keeps the algorithm correct even when a cycle fires
  early (and reduces double-provisioning when the measured
  initialization time jitters). Pass ``pending=()`` for the
  strictly-literal behaviour.
* *forecast arrivals*: tasks predicted to be submitted during the cycle
  join the simulated wait queue at their predicted arrival offset (the
  hybrid HTA mode, ``HtaConfig.forecast_arrivals``). Until they arrive
  they consume nothing; once arrived they compete for freed capacity in
  queue order like any waiting task, and any still unplaced at cycle end
  count toward the scale-up demand. Pass ``future_arrivals=()`` for the
  purely-reactive behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.resources import ResourceVector


@dataclass(frozen=True, slots=True)
class SimulatedTask:
    """A task as the estimator sees it: an allocation and a runtime guess.

    For running tasks ``remaining_s`` is the *predicted remaining* time
    (category mean minus elapsed, floored at zero); for waiting tasks it
    is the full predicted runtime.
    """

    resources: ResourceVector
    remaining_s: float

    def __post_init__(self) -> None:
        if self.remaining_s < 0:
            raise ValueError(f"remaining_s must be non-negative, got {self.remaining_s}")


@dataclass(frozen=True, slots=True)
class PendingWorker:
    """A worker pod requested but not ready; joins capacity at ``eta_s``."""

    capacity: ResourceVector
    eta_s: float


@dataclass(frozen=True, slots=True)
class ForecastArrival:
    """A task predicted to be submitted ``eta_s`` seconds into the cycle."""

    task: SimulatedTask
    eta_s: float

    def __post_init__(self) -> None:
        if self.eta_s < 0:
            raise ValueError(f"eta_s must be non-negative, got {self.eta_s}")


@dataclass(frozen=True, slots=True)
class ScalePlan:
    """The estimator's output: resize by ``delta`` workers, re-evaluate
    after ``next_action_s`` seconds."""

    delta: int
    next_action_s: float
    waiting_after: int = 0
    idle_cores_after: float = 0.0

    @property
    def action(self) -> str:
        if self.delta > 0:
            return "scale-up"
        if self.delta < 0:
            return "scale-down"
        return "hold"


@dataclass(frozen=True, slots=True)
class EstimatorConfig:
    """Tunables around the core algorithm."""

    #: Interval to re-check when the queue is empty and supply matches
    #: demand (the pseudocode's ``DefaultCycle``).
    default_cycle_s: float = 30.0
    #: Time-step for the forward simulation; the pseudocode iterates
    #: second by second.
    step_s: float = 1.0
    #: Runtime assumed for tasks whose category has no estimate yet.
    fallback_runtime_s: float = 60.0
    #: Lower bound on the returned next-action interval, to avoid a
    #: zero-delay resize storm when MaxRuntime(running) is tiny.
    min_cycle_s: float = 5.0
    #: Scale down when the simulated queue empties and whole workers sit
    #: idle. The paper's prose demands this ("scale down if RSH < 0",
    #: §IV-B, and fig 10b's mid-workflow dip) although the pseudocode's
    #: lines 19-21 return "do nothing" for an empty queue; False gives
    #: the literal pseudocode (see the ablation benchmark).
    scale_down_on_empty_queue: bool = True


class ResourceEstimator:
    """Stateless planner; one :meth:`estimate` call per resizing cycle."""

    def __init__(self, worker_capacity: ResourceVector, config: EstimatorConfig = EstimatorConfig()):
        if not worker_capacity.any_positive():
            raise ValueError("worker_capacity must be positive")
        self.worker_capacity = worker_capacity
        self.config = config

    # -------------------------------------------------------------- public
    def estimate(
        self,
        rsrc_init_time: float,
        running: Sequence[SimulatedTask],
        waiting: Sequence[SimulatedTask],
        active_workers: int,
        idle_workers: int,
        pending: Sequence[PendingWorker] = (),
        max_workers: Optional[int] = None,
        min_workers: int = 0,
        future_arrivals: Sequence[ForecastArrival] = (),
        spot_workers: int = 0,
        spot_survival: float = 1.0,
    ) -> ScalePlan:
        """Run Algorithm 1 and produce a :class:`ScalePlan`.

        ``active_workers``/``idle_workers`` describe the current pool;
        ``max_workers`` caps scale-up (the user's resource quota, §IV-B);
        ``min_workers`` floors scale-down (the paper keeps a 3-node base
        pool so the cluster survives master upgrades, §V-A);
        ``future_arrivals`` are forecast task submissions that join the
        simulated wait queue mid-cycle (arrivals past the cycle end are
        ignored — they belong to the next decision);
        ``spot_workers`` of the active pool run on preemptible capacity
        expected to survive the cycle with probability ``spot_survival``
        — the supply term counts each as only ``spot_survival`` of a
        worker, so a reclamation-prone pool drives extra scale-up
        instead of being trusted at face value.
        """
        if rsrc_init_time <= 0:
            raise ValueError("rsrc_init_time must be positive")
        if not 0 <= spot_workers <= active_workers:
            raise ValueError("spot_workers must be within [0, active_workers]")
        if not 0.0 <= spot_survival <= 1.0:
            raise ValueError("spot_survival must be within [0, 1]")
        cfg = self.config

        # --- lines 1-2: capacity and currently-available resources,
        # spot workers discounted by their expected survival
        effective = active_workers - spot_workers * (1.0 - spot_survival)
        ava = self.worker_capacity.scale(max(0.0, effective))
        for task in running:
            ava = (ava - task.resources).clamp_floor(0.0)

        # Completion schedule for running tasks, bucketed to steps.
        completions: Dict[int, List[ResourceVector]] = {}
        for task in running:
            step = max(1, math.ceil(task.remaining_s / cfg.step_s))
            completions.setdefault(step, []).append(task.resources)
        arrivals: Dict[int, List[ResourceVector]] = {}
        for pw in pending:
            step = max(1, math.ceil(max(pw.eta_s, 0.0) / cfg.step_s))
            arrivals.setdefault(step, []).append(pw.capacity)

        wait_queue: List[SimulatedTask] = list(waiting)
        steps = max(1, math.ceil(rsrc_init_time / cfg.step_s))

        # Forecast submissions joining the wait queue mid-cycle
        # (extension: the hybrid mode's predicted inflow).
        task_arrivals: Dict[int, List[SimulatedTask]] = {}
        for fa in future_arrivals:
            step = max(1, math.ceil(fa.eta_s / cfg.step_s))
            if step <= steps:
                task_arrivals.setdefault(step, []).append(fa.task)

        # --- lines 3-18: forward simulation over one init cycle
        for t in range(1, steps + 1):
            for freed in completions.get(t, ()):  # lines 4-7
                ava = ava + freed
            for extra in arrivals.get(t, ()):  # extension: in-flight pods
                ava = ava + extra
            wait_queue.extend(task_arrivals.get(t, ()))  # predicted inflow
            wait_queue, ava = self._dispatch(wait_queue, ava)

        def removable() -> int:
            limit = max(0, active_workers - min_workers)
            return min(self._num_idle_workers(ava, idle_workers), limit)

        # --- lines 19-21: resources are enough. The pseudocode holds
        # steady here; the paper's controller ("scale down if RSH < 0")
        # additionally releases whole idle workers — see EstimatorConfig.
        if not wait_queue:
            if cfg.scale_down_on_empty_queue:
                idle_removable = removable()
                if idle_removable > 0:
                    max_run = max(
                        (t.remaining_s for t in running), default=cfg.default_cycle_s
                    )
                    next_action = max(cfg.min_cycle_s, min(max_run, cfg.default_cycle_s))
                    return ScalePlan(-idle_removable, next_action, 0, ava.cores)
            return ScalePlan(0, cfg.default_cycle_s, 0, ava.cores)

        # --- lines 22-24: spare whole workers at cycle end → scale down
        idle_removable = removable()
        if idle_removable > 0:
            max_run = max((t.remaining_s for t in running), default=cfg.default_cycle_s)
            next_action = max(cfg.min_cycle_s, max_run)
            return ScalePlan(-idle_removable, next_action, len(wait_queue), ava.cores)

        # --- line 25: scale up by the workers the waiting tasks need
        needed = self._workers_required(wait_queue)
        if max_workers is not None:
            in_flight = len(pending)
            headroom = max(0, max_workers - active_workers - in_flight)
            needed = min(needed, headroom)
        next_action = max(cfg.min_cycle_s, rsrc_init_time)
        return ScalePlan(needed, next_action, len(wait_queue), ava.cores)

    # ------------------------------------------------------------ internals
    @staticmethod
    def _dispatch(
        waiting: List[SimulatedTask], ava: ResourceVector
    ) -> Tuple[List[SimulatedTask], ResourceVector]:
        """Lines 8-17: first-fit dispatch of waiting tasks into ``ava``.

        Pure function of its inputs: returns the still-waiting tasks and
        the capacity left after dispatch. Dispatched tasks are assumed to
        hold their resources past the cycle end (conservative: their
        remaining runtime usually exceeds the remaining cycle; the paper's
        pseudocode makes the same simplification by never re-completing
        newly dispatched tasks inside the loop).
        """
        remaining: List[SimulatedTask] = []
        for i, task in enumerate(waiting):
            if ava.is_zero():  # lines 9-11
                remaining.extend(waiting[i:])
                break
            if task.resources.fits_in(ava):  # lines 12-16
                ava = (ava - task.resources).clamp_floor(0.0)
            else:
                remaining.append(task)
        return remaining, ava

    def _num_idle_workers(self, ava: ResourceVector, idle_workers: int) -> int:
        """Whole workers' worth of spare capacity, bounded by how many
        workers are actually idle (a busy worker cannot be drained
        instantly; it stops accepting work and exits later)."""
        by_capacity = self.worker_capacity.copies_fitting_in(ava)
        return min(by_capacity, idle_workers)

    def _workers_required(self, waiting: Sequence[SimulatedTask]) -> int:
        """First-fit-decreasing packing of waiting tasks into workers.

        Implementation notes, because this is the hottest loop of the HTA
        controller at large queue depths: bins are kept as component
        floats (the naive ResourceVector version allocated two vectors
        per probe), and the scan start is carried over between tasks with
        identical resources. Both preserve the packing bit-for-bit: the
        comparisons and accumulations below perform exactly the float
        operations ``fits_in(capacity - used)`` / ``used + res`` did, and
        after a task lands in bin *i*, bins before *i* are unchanged, so
        they would reject an identical next task again — the first-fit
        scan for it may legally resume at *i*.
        """
        cap = self.worker_capacity
        cap_c, cap_m, cap_d = cap.cores, cap.memory_mb, cap.disk_mb
        eps = 1e-9  # fits_in's float-drift epsilon
        bins_c: List[float] = []
        bins_m: List[float] = []
        bins_d: List[float] = []
        prev_res: Optional[ResourceVector] = None
        start = 0
        for task in sorted(waiting, key=lambda t: t.resources.cores, reverse=True):
            res = task.resources
            if res != prev_res:
                prev_res = res
                start = 0
            if not res.fits_in(cap):
                # Will never fit a worker; clamp to one dedicated worker.
                bins_c.append(cap_c)
                bins_m.append(cap_m)
                bins_d.append(cap_d)
                continue
            res_c, res_m, res_d = res.cores, res.memory_mb, res.disk_mb
            for i in range(start, len(bins_c)):
                if (
                    res_c <= (cap_c - bins_c[i]) + eps
                    and res_m <= (cap_m - bins_m[i]) + eps
                    and res_d <= (cap_d - bins_d[i]) + eps
                ):
                    bins_c[i] = bins_c[i] + res_c
                    bins_m[i] = bins_m[i] + res_m
                    bins_d[i] = bins_d[i] + res_d
                    start = i
                    break
            else:
                bins_c.append(res_c)
                bins_m.append(res_m)
                bins_d.append(res_d)
                start = len(bins_c) - 1
            # ``start`` is where this task landed; an identical next task
            # cannot land earlier, so its scan resumes there.
        return len(bins_c)
