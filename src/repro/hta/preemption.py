"""HTA's answer to preemptible capacity: notices, evacuation, survival.

Spot/preemptible nodes are the cloud's cheapest capacity, sold with a
revocation clause: the provider may reclaim a node at any time, giving a
short grace window (GCE's ACPI G2 signal, ~30 s) before the VM and every
pod on it vanish. A naive autoscaler treats spot workers like any other
and loses their in-flight tasks to the retry path; the HTA extension
here closes the loop through the informer instead:

* :class:`PreemptionResponder` watches Node objects. The instant a node
  carries a preemption notice, every HTA worker on it is **evacuated**:
  its in-flight runs are proactively requeued at the front of the master
  queue (inside the grace window, without burning a retry attempt) and
  the doomed worker is drained so it stops accepting work.
* :class:`SurvivalTracker` keeps an online estimate of the spot pool's
  survival rate — the fraction of spot workers that were *not* reclaimed
  — which Algorithm 1 uses to discount the supply term: a pool observed
  to lose a third of its workers counts each spot worker as only ~2/3 of
  a worker, so the plan buys real capacity instead of paper capacity.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.cluster.api import KubeApiServer, WatchEvent, WatchEventType
from repro.cluster.node import Node
from repro.cluster.pod import Pod, PodPhase
from repro.hta.provisioner import WorkerProvisioner
from repro.sim.engine import Engine
from repro.telemetry.events import NULL_TRACER, Tracer
from repro.wq.master import Master
from repro.wq.migration import MigrationCoordinator
from repro.wq.runtime import WorkerPodRuntime


class SurvivalTracker:
    """Online estimate of the spot pool's per-cycle survival rate.

    Counts spot workers observed starting (``S``) and spot workers
    reclaimed (``P``); the rate is the Laplace-smoothed survivor
    fraction ``(S - P + 1) / (S + 1)``, clipped away from zero so a
    brutal reclamation wave discounts the pool hard without zeroing the
    supply term entirely (a zero would make spot capacity invisible and
    the plan oscillate).
    """

    #: Floor on the reported rate — even a fully-reclaimed pool retains
    #: a sliver of trust, since new spot nodes are fresh draws.
    MIN_RATE = 0.05

    def __init__(self) -> None:
        self.spot_started = 0
        self.spot_preempted = 0

    def record_start(self) -> None:
        self.spot_started += 1

    def record_preempted(self) -> None:
        self.spot_preempted += 1

    def survival_rate(self) -> float:
        rate = (self.spot_started - self.spot_preempted + 1) / (self.spot_started + 1)
        return min(1.0, max(self.MIN_RATE, rate))


class PreemptionResponder:
    """Consumes preemption notices through the informer (Node watch).

    One instance per HTA stack. Reacts within the grace window: workers
    on a noticed node are evacuated (runs requeued without an attempt
    burn, worker drained) before the node dies, and the shared
    :class:`SurvivalTracker` is updated so the next resize cycle plans
    with the observed reclamation pressure.
    """

    def __init__(
        self,
        engine: Engine,
        api: KubeApiServer,
        master: Master,
        runtime: WorkerPodRuntime,
        provisioner: WorkerProvisioner,
        *,
        tracker: Optional[SurvivalTracker] = None,
        tracer: Optional[Tracer] = None,
        migration: Optional[MigrationCoordinator] = None,
    ) -> None:
        self.engine = engine
        self.api = api
        self.master = master
        self.runtime = runtime
        self.provisioner = provisioner
        self.tracker = tracker if tracker is not None else SurvivalTracker()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Optional checkpoint-migration coordinator: doomed runs that
        #: can checkpoint inside the grace window migrate instead of
        #: being requeued from scratch.
        self.migration = migration
        self._handled: Set[str] = set()
        self.notices_seen = 0
        self.workers_evacuated = 0
        self.runs_requeued = 0
        self.migrations_requested = 0
        api.watch("Node", self._on_node_event, replay_existing=False)
        api.watch("Pod", self._on_pod_event, replay_existing=False)

    def close(self) -> None:
        """Unsubscribe (experiments share one API server)."""
        self.api.unwatch("Node", self._on_node_event)
        self.api.unwatch("Pod", self._on_pod_event)

    # --------------------------------------------------------------- events
    def _on_pod_event(self, event: WatchEvent) -> None:
        """Count spot worker starts (the tracker's denominator)."""
        pod = event.obj
        if not isinstance(pod, Pod):
            return
        if event.type is not WatchEventType.MODIFIED:
            return
        if pod.phase is not PodPhase.RUNNING:
            return
        if pod.meta.labels.get("app") != self.provisioner.app_label:
            return
        if pod.name in self._handled:
            return
        if pod.node is not None and pod.node.preemptible:
            self._handled.add(pod.name)
            self.tracker.record_start()

    def _on_node_event(self, event: WatchEvent) -> None:
        node = event.obj
        if not isinstance(node, Node) or not node.preemptible:
            return
        if node.preemption_notice_at is None or node.name in self._handled:
            return
        self._handled.add(node.name)
        self.notices_seen += 1
        self._evacuate_node(node)

    #: Safety margin on the "can it finish inside the grace window?"
    #: decision: a run is left racing the clock only if its predicted
    #: remaining time fits in this fraction of the window.
    GRACE_MARGIN = 0.8

    def _evacuate_node(self, node: Node) -> None:
        """Grace-window response: move doomed runs, drain workers.

        Grace-aware triage per run: a task predicted to finish inside
        the grace window is *left running* — cancelling it would throw
        away nearly-complete work the node can still deliver — while
        everything longer leaves immediately. With a migration
        coordinator, doomed runs that can checkpoint inside the notice
        migrate (keeping their banked progress); without one — or when
        the checkpoint does not fit the remaining notice — they are
        requeued from scratch. Victims are collected across every pod
        on the node before a single seq-keyed evacuation, so the
        requeue preserves relative submit order.
        """
        grace = node.preemption_grace_s if node.preemption_grace_s is not None else 0.0
        triaged = []
        for pod in list(node.pods):
            if pod.meta.labels.get("app") != self.provisioner.app_label:
                continue
            worker = self.runtime.worker_for(pod)
            if worker is None:
                continue
            self.tracker.record_preempted()
            doomed = [
                run.task
                for run in list(worker.runs.values())
                if self._remaining_estimate(run.task) > grace * self.GRACE_MARGIN
            ]
            triaged.append((worker, doomed))
        if self.migration is not None:
            for worker, doomed in triaged:
                started = self.migration.drain_worker(
                    worker,
                    tasks=doomed,
                    reason="preemption",
                    deadline_s=grace,
                )
                self.migrations_requested += started
                self.runs_requeued += len(doomed) - started
        else:
            # One node-wide evacuation call keeps the requeue seq-keyed
            # across workers that share the doomed node.
            pairs = [(w, t) for w, doomed in triaged for t in doomed]
            requeued = self.master.evacuate(pairs)
            self.runs_requeued += len(requeued)
        for worker, doomed in triaged:
            worker.drain()
            self.workers_evacuated += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    "hta",
                    "worker.evacuated",
                    "preemption",
                    node=node.name,
                    worker=worker.name,
                    doomed=len(doomed),
                    migration=self.migration is not None,
                    left_racing=len(worker.runs),
                    survival_rate=self.tracker.survival_rate(),
                )

    def _remaining_estimate(self, task) -> float:
        """Predicted seconds of execution left for an in-flight run."""
        predicted = self.master.monitor.runtime_estimate(task.category)
        if predicted is None or predicted <= 0:
            predicted = task.execute_s
        if task.start_time is None:
            return float(predicted)  # still fetching inputs
        return max(0.0, predicted - (self.engine.now - task.start_time))
