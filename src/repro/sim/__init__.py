"""Deterministic discrete-event simulation kernel.

Everything in :mod:`repro` runs on top of this kernel: the Kubernetes-like
cluster substrate, the Work Queue scheduler, the Makeflow workflow manager,
and the HTA autoscaler are all state machines advanced by events scheduled
on a single :class:`~repro.sim.engine.Engine`.

The kernel offers two programming styles:

* **callback scheduling** — ``engine.call_in(delay, fn, *args)`` /
  ``engine.call_at(time, fn, *args)`` return cancellable
  :class:`~repro.sim.engine.ScheduledEvent` handles; and
* **generator processes** — ``engine.spawn(gen)`` runs a generator that
  yields :class:`~repro.sim.process.Timeout`, :class:`~repro.sim.process.Wait`
  (on a :class:`~repro.sim.process.Signal`), or other processes.

All randomness goes through named, seeded streams from
:class:`~repro.sim.rng.RngRegistry` so simulations replay bit-identically
regardless of module import order or event interleaving.
"""

from repro.sim.engine import Engine, ScheduledEvent, SimulationError
from repro.sim.process import Process, Signal, Timeout, Wait, AllOf, AnyOf
from repro.sim.rng import RngRegistry
from repro.sim.tracing import StepSeries, MetricRecorder, Sampler

__all__ = [
    "Engine",
    "ScheduledEvent",
    "SimulationError",
    "Process",
    "Signal",
    "Timeout",
    "Wait",
    "AllOf",
    "AnyOf",
    "RngRegistry",
    "StepSeries",
    "MetricRecorder",
    "Sampler",
]
