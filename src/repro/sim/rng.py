"""Named, seeded random streams.

Every source of randomness in the simulator (node-provisioning jitter,
image-pull jitter, task service-time noise) draws from its own named stream
derived from a single master seed. Stream seeds are derived by hashing the
stream name, so the values a stream produces do not depend on how many
*other* streams exist or the order in which components are constructed —
a prerequisite for regenerating each figure bit-identically even as the
codebase grows.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Optional

import numpy as np


def derive_seed(master_seed: int, name: str) -> int:
    """Stable 64-bit seed for stream ``name`` under ``master_seed``."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """Factory and cache of named :class:`numpy.random.Generator` streams."""

    def __init__(self, master_seed: int = 0):
        self.master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.master_seed, name))
            self._streams[name] = gen
        return gen

    def names(self) -> Iterable[str]:
        return tuple(self._streams)

    # Convenience draws ------------------------------------------------------
    def normal(self, name: str, mean: float, std: float, *, floor: Optional[float] = None) -> float:
        """One normal draw from stream ``name``; optionally clipped below.

        ``std == 0`` returns the mean exactly (useful for switching jitter
        off in tests without special-casing call sites).
        """
        value = mean if std == 0 else float(self.stream(name).normal(mean, std))
        if floor is not None and value < floor:
            value = floor
        return value

    def uniform(self, name: str, low: float, high: float) -> float:
        return float(self.stream(name).uniform(low, high))

    def lognormal_around(self, name: str, mean: float, cv: float) -> float:
        """Lognormal draw with the given mean and coefficient of variation.

        Convenient for strictly positive latencies: ``cv == 0`` returns the
        mean exactly.
        """
        if cv <= 0:
            return mean
        sigma2 = float(np.log(1.0 + cv * cv))
        mu = float(np.log(mean) - sigma2 / 2.0)
        return float(self.stream(name).lognormal(mu, np.sqrt(sigma2)))

    def fork(self, name: str) -> "RngRegistry":
        """A registry whose streams are independent of this one's, keyed by
        ``name`` (used to give replicated experiments disjoint randomness)."""
        return RngRegistry(derive_seed(self.master_seed, f"fork:{name}"))

    def __repr__(self) -> str:  # pragma: no cover
        return f"<RngRegistry seed={self.master_seed} streams={len(self._streams)}>"
