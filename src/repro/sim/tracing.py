"""Time-series recording and integration for evaluation metrics.

The paper's headline numbers — *accumulated resource waste* and
*accumulated resource shortage* — are definite integrals of step-function
metrics (core×seconds). :class:`StepSeries` records right-continuous step
functions exactly (value changes at event instants), so the integrals are
computed analytically rather than from lossy sampling. :class:`Sampler`
additionally snapshots a set of gauges on a fixed cadence for plotting
figure-style series.
"""

from __future__ import annotations

import bisect
import math
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sim.engine import Engine, PeriodicTask


class StepSeries:
    """A right-continuous step function sampled at change points.

    ``record(t, v)`` appends a change; times must be non-decreasing. The
    value at any time ``t`` is the value of the latest change at or before
    ``t`` (``initial`` before the first change).
    """

    __slots__ = ("name", "initial", "times", "values")

    def __init__(self, name: str = "", initial: float = 0.0):
        self.name = name
        self.initial = float(initial)
        self.times: List[float] = []
        self.values: List[float] = []

    def record(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError(
                f"StepSeries {self.name!r}: time {time} precedes last {self.times[-1]}"
            )
        if self.times and self.times[-1] == time:
            # Same-instant update supersedes the previous value.
            self.values[-1] = float(value)
            return
        if self.values and self.values[-1] == value:
            return  # no change; keep the series minimal
        self.times.append(float(time))
        self.values.append(float(value))

    def value_at(self, time: float) -> float:
        """Value of the step function at ``time``."""
        idx = bisect.bisect_right(self.times, time) - 1
        return self.initial if idx < 0 else self.values[idx]

    @property
    def last_value(self) -> float:
        return self.values[-1] if self.values else self.initial

    @property
    def last_time(self) -> Optional[float]:
        return self.times[-1] if self.times else None

    def integrate(self, t0: float, t1: float) -> float:
        """Exact integral of the step function over ``[t0, t1]``."""
        if t1 < t0:
            raise ValueError(f"integrate: t1 ({t1}) < t0 ({t0})")
        if t1 == t0:
            return 0.0
        total = 0.0
        t = t0
        v = self.value_at(t0)
        idx = bisect.bisect_right(self.times, t0)
        while idx < len(self.times) and self.times[idx] < t1:
            nt = self.times[idx]
            total += v * (nt - t)
            t = nt
            v = self.values[idx]
            idx += 1
        total += v * (t1 - t)
        return total

    def mean(self, t0: float, t1: float) -> float:
        """Time-weighted mean over ``[t0, t1]``."""
        if t1 <= t0:
            return self.value_at(t0)
        return self.integrate(t0, t1) / (t1 - t0)

    def maximum(self, t0: float, t1: float) -> float:
        """Maximum value attained on ``[t0, t1]``."""
        best = self.value_at(t0)
        idx = bisect.bisect_right(self.times, t0)
        while idx < len(self.times) and self.times[idx] <= t1:
            best = max(best, self.values[idx])
            idx += 1
        return best

    def resample(self, t0: float, t1: float, dt: float) -> Tuple[List[float], List[float]]:
        """Sample the step function on a uniform grid (for plotting/series
        output); the grid includes both endpoints."""
        if dt <= 0:
            raise ValueError(f"resample: dt must be positive, got {dt}")
        ts: List[float] = []
        vs: List[float] = []
        n = max(1, int(math.ceil((t1 - t0) / dt)))
        for i in range(n + 1):
            t = min(t0 + i * dt, t1)
            ts.append(t)
            vs.append(self.value_at(t))
            if t >= t1:
                break
        return ts, vs

    def changes(self) -> Iterable[Tuple[float, float]]:
        return zip(self.times, self.values)

    def __len__(self) -> int:
        return len(self.times)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<StepSeries {self.name!r} n={len(self.times)} last={self.last_value}>"


class MetricRecorder:
    """A named collection of :class:`StepSeries` bound to an engine clock.

    Components call ``recorder.set("pods.ready", 5)`` whenever state
    changes; the recorder timestamps with ``engine.now``. ``inc``/``dec``
    maintain counters on top of the same storage.
    """

    def __init__(self, engine: Engine):
        self.engine = engine
        self.series: Dict[str, StepSeries] = {}

    def get(self, name: str, initial: float = 0.0) -> StepSeries:
        s = self.series.get(name)
        if s is None:
            s = StepSeries(name, initial)
            self.series[name] = s
        return s

    def set(self, name: str, value: float) -> None:
        self.get(name).record(self.engine.now, value)

    def inc(self, name: str, amount: float = 1.0) -> float:
        s = self.get(name)
        v = s.last_value + amount
        s.record(self.engine.now, v)
        return v

    def dec(self, name: str, amount: float = 1.0) -> float:
        return self.inc(name, -amount)

    def value(self, name: str) -> float:
        s = self.series.get(name)
        return s.last_value if s is not None else 0.0

    def integral(self, name: str, t0: float, t1: float) -> float:
        s = self.series.get(name)
        return s.integrate(t0, t1) if s is not None else 0.0

    def names(self) -> Sequence[str]:
        return tuple(self.series)


class Sampler:
    """Snapshots a set of gauge callables on a fixed cadence.

    Used for figure-style series (resource supply/demand every second)
    where the plotted quantity is derived from several components and is
    cheaper to poll than to event out of each of them.
    """

    def __init__(self, engine: Engine, period: float = 1.0):
        self.engine = engine
        self.period = period
        self._gauges: Dict[str, Callable[[], float]] = {}
        self.series: Dict[str, StepSeries] = {}
        self._task: Optional[PeriodicTask] = None

    def add_gauge(self, name: str, fn: Callable[[], float]) -> None:
        self._gauges[name] = fn
        self.series[name] = StepSeries(name)

    def start(self) -> None:
        if self._task is None:
            self._task = PeriodicTask(self.engine, self.period, self._sample, start_after=0.0)

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    def sample_now(self) -> None:
        self._sample()

    def _sample(self) -> None:
        now = self.engine.now
        for name, fn in self._gauges.items():
            series = self.series[name]
            # allow same-instant resample (record() handles equal times)
            if series.last_time is not None and series.last_time > now:
                continue
            series.record(now, float(fn()))
