"""Generator-based processes layered on the event engine.

A *process* is a generator advanced by the kernel. It may yield:

* :class:`Timeout` — resume after a delay;
* :class:`Wait` — resume when a :class:`Signal` fires (with its payload);
* another :class:`Process` — resume when the child finishes (with its
  return value); a child that failed re-raises inside the parent;
* :class:`AllOf` / :class:`AnyOf` — join combinators over the above.

This style keeps sequential protocols (worker connect → fetch inputs →
execute → send outputs) readable, while control loops that react to many
concurrent conditions (the master's dispatcher, the link's bandwidth
re-sharing) stay callback-based.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, Optional

from repro.sim.engine import Engine, ScheduledEvent, SimulationError


class Timeout:
    """Yielded by a process to sleep for ``delay`` seconds."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        self.delay = delay
        self.value = value


class Signal:
    """A broadcast condition processes can wait on.

    ``fire(payload)`` wakes every current waiter exactly once, passing the
    payload as the value of their ``yield``. Unlike a queue, payloads are
    not buffered: a waiter that arrives after the fire waits for the next
    one. Use :meth:`fire_once` for one-shot completion signals — later
    waiters then complete immediately with the stored payload.
    """

    def __init__(self, engine: Engine, name: str = ""):
        self.engine = engine
        self.name = name
        self._waiters: list[Callable[[Any], None]] = []
        self._fired_forever = False
        self._payload: Any = None

    def add_waiter(self, callback: Callable[[Any], None]) -> None:
        if self._fired_forever:
            self.engine.call_soon(callback, self._payload)
        else:
            self._waiters.append(callback)

    def remove_waiter(self, callback: Callable[[Any], None]) -> None:
        try:
            self._waiters.remove(callback)
        except ValueError:
            pass

    def fire(self, payload: Any = None) -> int:
        """Wake all current waiters; returns how many were woken."""
        waiters, self._waiters = self._waiters, []
        for cb in waiters:
            self.engine.call_soon(cb, payload)
        return len(waiters)

    def fire_once(self, payload: Any = None) -> None:
        """Fire and latch: every future waiter completes immediately."""
        if self._fired_forever:
            return
        self._fired_forever = True
        self._payload = payload
        self.fire(payload)

    @property
    def latched(self) -> bool:
        return self._fired_forever

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Signal {self.name!r} waiters={len(self._waiters)}>"


class Wait:
    """Yielded by a process to block on a :class:`Signal`."""

    __slots__ = ("signal",)

    def __init__(self, signal: Signal):
        self.signal = signal


class AllOf:
    """Join: resume when every sub-wait completes; value is the list of
    sub-values in declaration order."""

    __slots__ = ("items",)

    def __init__(self, items: Iterable[Any]):
        self.items = list(items)


class AnyOf:
    """Join: resume when the first sub-wait completes; value is
    ``(index, value)`` of the winner. Remaining timers are cancelled and
    signal waiters detached."""

    __slots__ = ("items",)

    def __init__(self, items: Iterable[Any]):
        self.items = list(items)
        if not self.items:
            raise SimulationError("AnyOf requires at least one item")


class ProcessFailed(RuntimeError):
    """Wraps an exception escaping a child process awaited by a parent."""

    def __init__(self, process: "Process", cause: BaseException):
        super().__init__(f"process {process.name!r} failed: {cause!r}")
        self.process = process
        self.cause = cause


class Process:
    """A running generator coroutine; see module docstring for the protocol.

    Completion is observable either by another process yielding this one,
    or via :attr:`done_signal` (a latched :class:`Signal` fired with the
    return value).
    """

    def __init__(self, engine: Engine, gen: Generator, name: str = "proc"):
        self.engine = engine
        self.gen = gen
        self.name = name
        self.done = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.done_signal = Signal(engine, f"{name}.done")
        self._pending_handle: Optional[ScheduledEvent] = None
        self._detachers: list[Callable[[], None]] = []
        self._cancelled = False
        engine.call_soon(self._resume, None, None)

    # ----------------------------------------------------------- lifecycle
    def cancel(self) -> None:
        """Stop the process at its current suspension point.

        The generator's ``close()`` runs (triggering ``finally`` blocks),
        and the process completes with result None.
        """
        if self.done or self._cancelled:
            return
        self._cancelled = True
        self._detach_all()
        try:
            self.gen.close()
        finally:
            self._finish(None, None)

    def _detach_all(self) -> None:
        if self._pending_handle is not None:
            self._pending_handle.cancel()
            self._pending_handle = None
        for d in self._detachers:
            d()
        self._detachers.clear()

    def _finish(self, result: Any, error: Optional[BaseException]) -> None:
        if self.done:
            return
        self.done = True
        self.result = result
        self.error = error
        self.done_signal.fire_once((result, error))

    # ------------------------------------------------------------- stepping
    def _resume(self, value: Any, error: Optional[BaseException]) -> None:
        if self.done or self._cancelled:
            return
        self._pending_handle = None
        self._detachers.clear()
        try:
            if error is not None:
                yielded = self.gen.throw(error)
            else:
                yielded = self.gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value, None)
            return
        except BaseException as exc:  # noqa: BLE001 - propagated to waiters
            self._finish(None, exc)
            return
        try:
            self._arm(yielded)
        except SimulationError as exc:
            # Bad yield (unsupported object): the *process* failed, not
            # the engine; report through the normal completion channel.
            self._finish(None, exc)

    def _arm(self, yielded: Any) -> None:
        """Install wake-ups for whatever the generator yielded."""
        canceller = self._arm_single(yielded, self._resume)
        if canceller is not None:
            self._detachers.append(canceller)

    def _arm_single(
        self, item: Any, resume: Callable[[Any, Optional[BaseException]], None]
    ) -> Optional[Callable[[], None]]:
        if isinstance(item, Timeout):
            handle = self.engine.call_in(item.delay, resume, item.value, None)
            self._pending_handle = handle
            return handle.cancel
        if isinstance(item, Wait):
            cb = lambda payload: resume(payload, None)  # noqa: E731
            item.signal.add_waiter(cb)
            return lambda: item.signal.remove_waiter(cb)
        if isinstance(item, Process):
            def on_done(payload: Any) -> None:
                result, error = payload
                if error is not None:
                    resume(None, ProcessFailed(item, error))
                else:
                    resume(result, None)

            item.done_signal.add_waiter(on_done)
            return lambda: item.done_signal.remove_waiter(on_done)
        if isinstance(item, AllOf):
            return self._arm_all(item, resume)
        if isinstance(item, AnyOf):
            return self._arm_any(item, resume)
        raise SimulationError(f"process {self.name!r} yielded unsupported {item!r}")

    def _arm_all(
        self, allof: AllOf, resume: Callable[[Any, Optional[BaseException]], None]
    ) -> Callable[[], None]:
        n = len(allof.items)
        results: list[Any] = [None] * n
        remaining = [n]
        cancellers: list[Callable[[], None]] = []
        finished = [False]

        def make_resume(i: int) -> Callable[[Any, Optional[BaseException]], None]:
            def sub_resume(value: Any, error: Optional[BaseException]) -> None:
                if finished[0]:
                    return
                if error is not None:
                    finished[0] = True
                    for c in cancellers:
                        c()
                    resume(None, error)
                    return
                results[i] = value
                remaining[0] -= 1
                if remaining[0] == 0:
                    finished[0] = True
                    resume(list(results), None)

            return sub_resume

        if n == 0:
            self.engine.call_soon(resume, [], None)
            return lambda: None
        for i, sub in enumerate(allof.items):
            c = self._arm_single(sub, make_resume(i))
            if c is not None:
                cancellers.append(c)
        return lambda: [c() for c in cancellers]  # type: ignore[func-returns-value]

    def _arm_any(
        self, anyof: AnyOf, resume: Callable[[Any, Optional[BaseException]], None]
    ) -> Callable[[], None]:
        cancellers: list[Callable[[], None]] = []
        finished = [False]

        def make_resume(i: int) -> Callable[[Any, Optional[BaseException]], None]:
            def sub_resume(value: Any, error: Optional[BaseException]) -> None:
                if finished[0]:
                    return
                finished[0] = True
                for c in cancellers:
                    c()
                if error is not None:
                    resume(None, error)
                else:
                    resume((i, value), None)

            return sub_resume

        for i, sub in enumerate(anyof.items):
            c = self._arm_single(sub, make_resume(i))
            if c is not None:
                cancellers.append(c)
        return lambda: [c() for c in cancellers]  # type: ignore[func-returns-value]

    def __repr__(self) -> str:  # pragma: no cover
        state = "done" if self.done else ("cancelled" if self._cancelled else "running")
        return f"<Process {self.name!r} {state}>"


def spawn(engine: Engine, gen: Generator, name: str = "proc") -> Process:
    """Start ``gen`` as a process on ``engine``; convenience wrapper."""
    return Process(engine, gen, name)
