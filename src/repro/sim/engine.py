"""The discrete-event engine: a time-ordered queue of callbacks.

Design notes
------------
* Time is a float number of **seconds** since the start of the simulation.
* Events scheduled for the same instant fire in FIFO order (a monotonically
  increasing sequence number breaks ties), which keeps runs deterministic.
* Cancellation is O(1): cancelled events stay in the heap but are skipped
  when popped (the standard "lazy deletion" idiom), so control loops that
  re-arm timers frequently (HPA sync, transfer re-sharing) stay cheap.
* The engine never advances time past an event: components observe a
  consistent ``engine.now`` inside their callbacks.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (e.g. scheduling into the past)."""


class ScheduledEvent:
    """Handle for a pending callback; supports O(1) cancellation.

    Instances are returned by :meth:`Engine.call_at` / :meth:`Engine.call_in`
    and compare by ``(time, seq)`` so they can live directly in the heap.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "fired")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn: Optional[Callable[..., Any]] = fn
        self.args = args
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the callback from running; idempotent, safe after firing."""
        self.cancelled = True
        # Drop references so cancelled events pinned in the heap don't keep
        # large object graphs (workers, pods) alive.
        self.fn = None
        self.args = ()

    @property
    def pending(self) -> bool:
        """True while the event is armed and not yet fired or cancelled."""
        return not self.cancelled and not self.fired

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"<ScheduledEvent t={self.time:.3f} seq={self.seq} {state}>"


class Engine:
    """A deterministic discrete-event simulation engine.

    Typical use::

        eng = Engine()
        eng.call_in(5.0, print, "five seconds in")
        eng.run()            # runs until the event queue drains
        assert eng.now == 5.0

    The engine is deliberately minimal; richer constructs (processes,
    signals) are layered on in :mod:`repro.sim.process`.
    """

    def __init__(self) -> None:
        self._now = 0.0
        # Heap entries are (time, seq, event) tuples: (time, seq) is unique,
        # so heap comparisons never fall through to the event object and
        # stay C-level tuple compares instead of Python __lt__ calls.
        self._heap: list[tuple[float, int, ScheduledEvent]] = []
        self._seq = itertools.count()
        self._running = False
        self._fired_count = 0

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total number of callbacks executed so far (for diagnostics)."""
        return self._fired_count

    # ------------------------------------------------------------ scheduling
    def call_at(self, time: float, fn: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Schedule ``fn(*args)`` to run at absolute simulation ``time``."""
        if not math.isfinite(time):
            raise SimulationError(f"cannot schedule event at non-finite time {time!r}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} in the past (now={self._now})"
            )
        ev = ScheduledEvent(time, next(self._seq), fn, args)
        heapq.heappush(self._heap, (time, ev.seq, ev))
        return ev

    def call_in(self, delay: float, fn: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self._now + delay, fn, *args)

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Schedule ``fn(*args)`` at the current instant (after pending
        same-time events already in the queue)."""
        return self.call_at(self._now, fn, *args)

    # --------------------------------------------------------------- running
    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        self._drop_cancelled()
        return self._heap[0][0] if self._heap else None

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)

    def step(self) -> bool:
        """Fire the single next event. Returns False if none remained."""
        self._drop_cancelled()
        if not self._heap:
            return False
        ev = heapq.heappop(self._heap)[2]
        self._now = ev.time
        ev.fired = True
        fn, args = ev.fn, ev.args
        ev.fn, ev.args = None, ()  # release references promptly
        self._fired_count += 1
        assert fn is not None
        fn(*args)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` callbacks have fired.

        When stopping at ``until`` with events still pending beyond it, the
        clock is advanced exactly to ``until`` so subsequent scheduling is
        relative to the requested horizon. Returns the final clock value.
        """
        if self._running:
            raise SimulationError("engine is not reentrant: run() called from a callback")
        self._running = True
        fired = 0
        try:
            while True:
                self._drop_cancelled()
                if not self._heap:
                    break
                nxt = self._heap[0][0]
                if until is not None and nxt > until:
                    self._now = max(self._now, until)
                    break
                if max_events is not None and fired >= max_events:
                    break
                ev = heapq.heappop(self._heap)[2]
                self._now = ev.time
                ev.fired = True
                fn, args = ev.fn, ev.args
                ev.fn, ev.args = None, ()
                self._fired_count += 1
                fired += 1
                assert fn is not None
                fn(*args)
            if until is not None and self._now < until and not self._heap:
                # Queue drained before the horizon: advance to it anyway so
                # repeated run(until=...) calls behave like a wall clock.
                self._now = until
        finally:
            self._running = False
        return self._now

    def pending_count(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        self._drop_cancelled()
        return sum(1 for _, _, ev in self._heap if not ev.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Engine t={self._now:.3f} pending={len(self._heap)}>"


class PeriodicTask:
    """Re-arming timer used by control loops (HPA sync, samplers, HTA cycles).

    With ``use_return_delay=True``, ``fn`` may return a float to override
    the delay before the next firing (HTA uses this: the next resize
    happens one *resource-initialization cycle* later, and that cycle
    length changes as new measurements arrive). Returning ``False`` stops
    the loop in either mode; other return values are ignored by default so
    callbacks with informative returns (e.g. "pods bound this pass") can
    be reused directly as loop bodies.
    """

    def __init__(
        self,
        engine: Engine,
        period: float,
        fn: Callable[[], Any],
        *,
        start_after: Optional[float] = None,
        use_return_delay: bool = False,
    ) -> None:
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        self.engine = engine
        self.period = period
        self.fn = fn
        self.use_return_delay = use_return_delay
        self._stopped = False
        delay = period if start_after is None else start_after
        self._handle: Optional[ScheduledEvent] = engine.call_in(delay, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        result = self.fn()
        if result is False or self._stopped:
            self._handle = None
            return
        delay = self.period
        if (
            self.use_return_delay
            and isinstance(result, (int, float))
            and not isinstance(result, bool)
        ):
            if result <= 0:
                raise SimulationError(f"periodic task returned non-positive delay {result}")
            delay = float(result)
        self._handle = self.engine.call_in(delay, self._fire)

    def stop(self) -> None:
        """Stop the loop; idempotent."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def running(self) -> bool:
        return not self._stopped and self._handle is not None
