"""Chaos-soak subsystem: seeded fault schedules + invariant checking.

The soak harness answers a question the per-fault benchmarks cannot:
does the whole stack stay *coherent* when every failure mode fires in
one run, in random order, at random times? A seeded schedule generator
(:mod:`~repro.soak.schedule`) samples all chaos primitives; the harness
(:mod:`~repro.soak.harness`) drives a spot-aware HTA stack through the
schedule to quiescence; the invariant checkers
(:mod:`~repro.soak.invariants`) then audit the final state — task
conservation, worker-leak freedom, monotonic API resource versions,
metrics/trace consistency, and the quiescence itself. A failing seed is
a complete reproduction recipe.
"""

from repro.soak.schedule import (
    FAULT_KINDS,
    FaultEvent,
    SoakScheduleConfig,
    generate_schedule,
)
from repro.soak.invariants import (
    VersionProbe,
    Violation,
    check_journal_replay,
    check_no_worker_leaks,
    check_task_conservation,
    check_trace_consistency,
    check_version_monotonic,
)
from repro.soak.harness import (
    SoakConfig,
    SoakReport,
    first_violation,
    run_soak,
    run_soak_batch,
)

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "SoakScheduleConfig",
    "generate_schedule",
    "VersionProbe",
    "Violation",
    "check_journal_replay",
    "check_no_worker_leaks",
    "check_task_conservation",
    "check_trace_consistency",
    "check_version_monotonic",
    "SoakConfig",
    "SoakReport",
    "first_violation",
    "run_soak",
    "run_soak_batch",
]
