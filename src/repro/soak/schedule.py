"""Seeded random fault schedules — the soak harness's chaos generator.

A schedule is a pure function of ``(seed, SoakScheduleConfig)``: the same
seed always yields the same list of :class:`FaultEvent`, so any invariant
violation the soak finds is reported as *the seed*, which is a complete
reproduction recipe. The generator samples every chaos primitive the
simulator knows — node kills, pod evictions, spot preemption waves,
worker⇄master network partitions, master crashes, API-server outages,
node boot-failure windows, and image-pull stalls — with per-kind weights
and parameter ranges tuned so a default schedule is hostile but
survivable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.sim.rng import RngRegistry

#: Every chaos primitive the generator can emit, with its sampling weight
#: (kills and evictions are routine; control-plane faults are rarer, as
#: each one stalls progress for its whole window).
FAULT_KIND_WEIGHTS: Dict[str, float] = {
    "node_kill": 2.0,
    "pod_eviction": 2.0,
    "preemption_wave": 2.0,
    "partition": 2.0,
    "master_crash": 0.75,
    "api_outage": 0.75,
    "boot_failures": 1.0,
    "pull_stall": 1.0,
}

FAULT_KINDS: Tuple[str, ...] = tuple(FAULT_KIND_WEIGHTS)

#: Sampling weight the ``migrate`` primitive gets when a schedule opts
#: in (:attr:`SoakScheduleConfig.migrate`). Kept out of
#: :data:`FAULT_KIND_WEIGHTS` so default schedules stay bit-identical.
MIGRATE_WEIGHT: float = 1.5

#: Sampling weights for the value-fault primitives when a schedule opts
#: in (:attr:`SoakScheduleConfig.integrity`); same bit-identity rule.
CORRUPT_WEIGHT: float = 1.5
BLACK_HOLE_WEIGHT: float = 0.75

#: Sampling weight of the ``shard_crash`` primitive (kill one dispatch
#: shard behind the foreman) when a sharded schedule opts in
#: (:attr:`SoakScheduleConfig.shard_crash`); same bit-identity rule.
SHARD_CRASH_WEIGHT: float = 1.0


@dataclass(frozen=True, slots=True)
class FaultEvent:
    """One scheduled chaos strike."""

    at_s: float
    kind: str
    #: Frozen per-kind parameters (durations, counts, probabilities).
    params: Tuple[Tuple[str, float], ...] = ()

    def param(self, key: str, default: float = 0.0) -> float:
        for k, v in self.params:
            if k == key:
                return v
        return default

    def __str__(self) -> str:
        args = ", ".join(f"{k}={v:g}" for k, v in self.params)
        return f"t={self.at_s:.0f}s {self.kind}({args})"


@dataclass(frozen=True, slots=True)
class SoakScheduleConfig:
    """Shape of a generated schedule."""

    #: Strikes land inside ``[start_after_s, horizon_s]``.
    horizon_s: float = 600.0
    start_after_s: float = 90.0
    #: Inclusive bounds on the number of strikes.
    min_events: int = 3
    max_events: int = 9
    #: At most this many master crashes per schedule (each one pauses
    #: the whole data plane for its restart delay).
    max_master_crashes: int = 1
    #: At most this many API outages per schedule.
    max_api_outages: int = 1
    #: Opt-in: add the ``migrate`` primitive (checkpoint/restore drain of
    #: a random busy worker) to the sampling pool. Off by default so the
    #: seeded draws of existing schedules stay bit-identical.
    migrate: bool = False
    #: Opt-in: add the value-fault primitives — ``corrupt`` (silently
    #: damage one running attempt's result) and ``black_hole`` (turn one
    #: worker into a fast-fail/fast-fake sink) — to the sampling pool.
    #: Off by default for the same bit-identity reason.
    integrity: bool = False
    #: Opt-in: add the ``shard_crash`` primitive (kill one random
    #: dispatch shard; roughly half the strikes are permanent — no
    #: restart — so the failover path is actually exercised) to the
    #: sampling pool. Only meaningful on a sharded soak stack. Off by
    #: default for the same bit-identity reason.
    shard_crash: bool = False
    #: At most this many shard crashes per schedule (each permanent one
    #: costs a failover grace worth of stranded work).
    max_shard_crashes: int = 2

    def __post_init__(self) -> None:
        if self.horizon_s <= self.start_after_s:
            raise ValueError("horizon_s must exceed start_after_s")
        if not 0 < self.min_events <= self.max_events:
            raise ValueError("need 0 < min_events <= max_events")


def _sample_params(
    kind: str, rng: RngRegistry, config: SoakScheduleConfig
) -> Tuple[Tuple[str, float], ...]:
    s = rng.stream("soak.params")
    if kind == "preemption_wave":
        return (("count", float(int(s.integers(1, 4)))),)
    if kind == "partition":
        return (("duration_s", float(s.uniform(10.0, 180.0))),)
    if kind == "master_crash":
        return (("restart_delay_s", float(s.uniform(30.0, 90.0))),)
    if kind == "api_outage":
        return (("duration_s", float(s.uniform(60.0, 240.0))),)
    if kind == "boot_failures":
        return (
            ("prob", float(s.uniform(0.3, 0.9))),
            ("duration_s", float(s.uniform(60.0, 240.0))),
        )
    if kind == "pull_stall":
        return (
            ("factor", float(s.uniform(2.0, 8.0))),
            ("duration_s", float(s.uniform(60.0, 240.0))),
        )
    if kind == "black_hole":
        # mode: 0 = fast-fail, 1 = fast-fake (encoded as a float because
        # FaultEvent params are frozen (str, float) pairs).
        return (
            ("mode", float(int(s.integers(0, 2)))),
            ("latency_s", float(s.uniform(0.5, 3.0))),
        )
    if kind == "shard_crash":
        # permanent: 1 = the shard never restarts (failover must
        # re-home its work); 0 = transient, restart_delay applies.
        permanent = float(int(s.integers(0, 2)))
        return (
            ("permanent", permanent),
            ("restart_delay_s", float(s.uniform(30.0, 120.0))),
        )
    return ()  # node_kill / pod_eviction / corrupt need no parameters


def generate_schedule(
    seed: int, config: SoakScheduleConfig = SoakScheduleConfig()
) -> List[FaultEvent]:
    """The seed's fault schedule, sorted by strike time.

    Deterministic: the generator draws only from named streams of an
    :class:`RngRegistry` keyed by ``seed``, so regenerating with the
    same arguments is bit-identical.
    """
    rng = RngRegistry(seed)
    s = rng.stream("soak.schedule")
    n = int(s.integers(config.min_events, config.max_events + 1))
    kinds = list(FAULT_KIND_WEIGHTS)
    weights = [FAULT_KIND_WEIGHTS[k] for k in kinds]
    if config.migrate:
        kinds.append("migrate")
        weights.append(MIGRATE_WEIGHT)
    if config.integrity:
        kinds.append("corrupt")
        weights.append(CORRUPT_WEIGHT)
        kinds.append("black_hole")
        weights.append(BLACK_HOLE_WEIGHT)
    if config.shard_crash:
        kinds.append("shard_crash")
        weights.append(SHARD_CRASH_WEIGHT)
    total = sum(weights)
    probs = [w / total for w in weights]
    events: List[FaultEvent] = []
    crashes = outages = shard_crashes = 0
    for _ in range(n):
        kind = kinds[int(s.choice(len(kinds), p=probs))]
        # Budget the control-plane strikes; overflow degrades to a
        # routine data-plane fault so the event count stays as drawn.
        if kind == "master_crash":
            if crashes >= config.max_master_crashes:
                kind = "node_kill"
            else:
                crashes += 1
        if kind == "api_outage":
            if outages >= config.max_api_outages:
                kind = "pod_eviction"
            else:
                outages += 1
        if kind == "shard_crash":
            if shard_crashes >= config.max_shard_crashes:
                kind = "node_kill"
            else:
                shard_crashes += 1
        at = float(s.uniform(config.start_after_s, config.horizon_s))
        events.append(FaultEvent(at_s=at, kind=kind, params=_sample_params(kind, rng, config)))
    events.sort(key=lambda e: (e.at_s, e.kind))
    return events
