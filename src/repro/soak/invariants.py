"""Invariant checkers the soak harness runs at quiescence.

Each checker inspects the final state of one run (whitebox master/cluster
state plus the telemetry trace) and returns the violations it found. The
invariants are chosen to catch the failure modes chaos is most likely to
expose:

* **task conservation** — every submitted task ends exactly once, as a
  completion or an abandonment; nothing is lost, nothing runs twice into
  the ``done`` ledger (exactly-once across crashes/partitions);
* **no worker leaks** — after the final drain no live worker, running
  worker pod, or master-side registration remains;
* **monotonic resource versions** — the API server's per-kind version
  counter, as observed through a watch, never goes backwards (cache
  coherence across outages and watch drops);
* **metrics/trace consistency** — the chaos counters and the master's
  ledgers agree with the telemetry trace recorded along the way;
* **eventual quiescence** — the run actually reached a terminal state
  before its deadline (checked by the harness, reported here).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.cluster.api import KubeApiServer, WatchEvent


@dataclass(frozen=True, slots=True)
class Violation:
    """One broken invariant, with enough detail to start debugging."""

    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.detail}"


class VersionProbe:
    """Records per-kind resourceVersions exactly as a watcher sees them.

    Attach before the run starts; the recorded sequences are the ground
    truth for the monotonic-versions invariant (the probe receives the
    same stream every informer does, gaps from outages included).
    """

    def __init__(self, api: KubeApiServer, kinds: Sequence[str] = ("Pod", "Node")):
        self.api = api
        self.versions: Dict[str, List[int]] = {k: [] for k in kinds}
        self._handlers = {}
        for kind in kinds:
            handler = self._make_handler(kind)
            self._handlers[kind] = handler
            api.watch(kind, handler, replay_existing=False)

    def _make_handler(self, kind: str):
        def record(event: WatchEvent) -> None:
            self.versions[kind].append(event.version)

        return record

    def close(self) -> None:
        for kind, handler in self._handlers.items():
            self.api.unwatch(kind, handler)
        self._handlers = {}


# ------------------------------------------------------------- checkers
def check_task_conservation(graph, master) -> List[Violation]:
    """done ⊎ abandoned == submitted, each exactly once."""
    violations: List[Violation] = []
    submitted = {t.id for t in graph.tasks}
    done_counts = Counter(t.id for t in master.done if t.speculation_of is None)
    abandoned_counts = Counter(
        t.id for t in master.abandoned if t.speculation_of is None
    )
    dupes = sorted(tid for tid, n in done_counts.items() if n > 1)
    if dupes:
        violations.append(
            Violation(
                "task-conservation",
                f"task(s) completed more than once: {dupes[:10]}",
            )
        )
    both = sorted(set(done_counts) & set(abandoned_counts))
    if both:
        violations.append(
            Violation(
                "task-conservation",
                f"task(s) both completed and abandoned: {both[:10]}",
            )
        )
    resolved = set(done_counts) | set(abandoned_counts)
    lost = sorted(submitted - resolved)
    if lost:
        violations.append(
            Violation(
                "task-conservation",
                f"{len(lost)} task(s) neither completed nor abandoned: {lost[:10]}",
            )
        )
    phantom = sorted(resolved - submitted)
    if phantom:
        violations.append(
            Violation(
                "task-conservation",
                f"task(s) resolved but never submitted: {phantom[:10]}",
            )
        )
    return violations


def check_no_worker_leaks(runtime, provisioner, master) -> List[Violation]:
    """After the final drain: no live workers, pods, or registrations."""
    violations: List[Violation] = []
    live = runtime.live_workers()
    if live:
        violations.append(
            Violation(
                "worker-leak",
                f"{len(live)} worker(s) still live after drain: "
                f"{[w.name for w in live[:5]]}",
            )
        )
    pods = provisioner.live_pods()
    if pods:
        violations.append(
            Violation(
                "worker-leak",
                f"{len(pods)} worker pod(s) not terminal after drain: "
                f"{[p.name for p in pods[:5]]}",
            )
        )
    stale = [
        name
        for name, w in master.workers.items()
        if w.state.name in ("STOPPED", "KILLED")
    ]
    if stale:
        violations.append(
            Violation(
                "worker-leak",
                f"master still lists dead worker(s): {stale[:5]}",
            )
        )
    return violations


def check_version_monotonic(probe: VersionProbe) -> List[Violation]:
    """Observed resourceVersions strictly increase per kind."""
    violations: List[Violation] = []
    for kind, versions in probe.versions.items():
        for i in range(1, len(versions)):
            if versions[i] <= versions[i - 1]:
                violations.append(
                    Violation(
                        "version-monotonic",
                        f"{kind} watch saw version {versions[i]} after "
                        f"{versions[i - 1]} (index {i})",
                    )
                )
                break  # one per kind is enough to flag the stream
    return violations


def check_journal_replay(master) -> List[Violation]:
    """Replaying the journal reconstructs the quiesced master exactly.

    At quiescence the log must fold back into the live ledgers
    bit-for-bit: the same completions in the same order, the same
    abandonments, and nothing left ready or unclaimed — the property
    crash recovery stakes its correctness on, checked here after every
    hostile schedule (crashes and partitions included)."""
    violations: List[Violation] = []
    state = master.journal.replay(completions=True)
    done_ids = [t.id for t in master.done if t.speculation_of is None]
    replayed_done = [t.id for t, _ in state.completions]
    if replayed_done != done_ids:
        extra = [i for i in replayed_done if i not in done_ids]
        missing = [i for i in done_ids if i not in replayed_done]
        violations.append(
            Violation(
                "journal-replay",
                f"replayed completions disagree with done ledger "
                f"(missing: {missing[:5]}, phantom: {extra[:5]}, "
                f"order_only={sorted(replayed_done) == sorted(done_ids)})",
            )
        )
    abandoned_ids = [t.id for t in master.abandoned]
    replayed_abandoned = [t.id for t in state.abandoned]
    if replayed_abandoned != abandoned_ids:
        violations.append(
            Violation(
                "journal-replay",
                f"replayed abandonments {replayed_abandoned[:5]} disagree "
                f"with ledger {abandoned_ids[:5]}",
            )
        )
    if state.ready:
        violations.append(
            Violation(
                "journal-replay",
                f"{len(state.ready)} task(s) replay as ready after "
                f"quiescence: {[t.id for t in state.ready[:5]]}",
            )
        )
    if state.unclaimed:
        violations.append(
            Violation(
                "journal-replay",
                f"{len(state.unclaimed)} task(s) replay as unclaimed after "
                f"quiescence: {sorted(state.unclaimed)[:5]}",
            )
        )
    return violations


def check_migration_protocol(master) -> List[Violation]:
    """Checkpoint/restore migrations obeyed their safety contract.

    Three properties, read straight off the journal: banked progress is
    monotonically nondecreasing per task (a later checkpoint never
    forgets work an earlier one banked); no checkpoint banks more
    execute-seconds than the task has; and resumes are at-most-once — a
    task is never dispatched (``dispatch``/``migrate_in``) while a prior
    attempt is still outstanding, which is the double-resume the
    handshake's stale-guards exist to prevent.
    """
    violations: List[Violation] = []
    last_progress: Dict[int, float] = {}
    in_flight: Dict[int, str] = {}
    for rec in master.journal.records:
        if rec.task is None:
            continue  # worker-scoped record (quarantine/unquarantine)
        tid = rec.task.id
        if rec.op == "checkpoint":
            progress = rec.progress if rec.progress is not None else 0.0
            if progress < last_progress.get(tid, 0.0) - 1e-9:
                violations.append(
                    Violation(
                        "migration-protocol",
                        f"task {tid} checkpoint progress regressed "
                        f"{last_progress[tid]:.6g} -> {progress:.6g}",
                    )
                )
            if progress > rec.task.execute_s + 1e-9:
                violations.append(
                    Violation(
                        "migration-protocol",
                        f"task {tid} banked {progress:.6g}s of progress, "
                        f"more than its {rec.task.execute_s:.6g}s of work",
                    )
                )
            last_progress[tid] = max(last_progress.get(tid, 0.0), progress)
        elif rec.op in ("dispatch", "migrate_in"):
            prior = in_flight.get(tid)
            if prior is not None:
                violations.append(
                    Violation(
                        "migration-protocol",
                        f"task {tid} dispatched ({rec.op}) while a prior "
                        f"attempt ({prior}) was still outstanding — "
                        f"duplicate resume",
                    )
                )
            in_flight[tid] = rec.op
        elif rec.op in ("retry", "migrate_out", "complete", "abandon"):
            in_flight.pop(tid, None)
    return violations


def check_failover_protocol(master) -> List[Violation]:
    """Shard failover obeyed its safety contract.

    Read off the *merged* journal (``master`` is the foreman): every
    re-home is a FAILOVER_OUT/FAILOVER_IN pair — task conservation
    across shard loss, the same count on both sides per task; re-homed
    tasks resume at most once — a task is never dispatched
    (``dispatch``/``migrate_in``) while a prior attempt is still
    outstanding, counting failover moves as the *same* execution
    (an ``unclaimed`` placement keeps the original attempt outstanding
    on its new shard; a ``ready`` placement parks it); and no task
    completes twice. The OUT/IN walk uses per-task counters, not a
    flag, because a merged log may fold a destination's IN before the
    dead shard's OUT at the same timestamp. "No task stranded after
    grace + failover" is covered by :func:`check_journal_replay` on the
    same merged journal (nothing left ready or unclaimed at
    quiescence) plus task conservation.
    """
    violations: List[Violation] = []
    outs: Dict[int, int] = {}
    ins: Dict[int, int] = {}
    completes: Dict[int, int] = {}
    outstanding: Dict[int, str] = {}
    for rec in master.journal.records:
        if rec.task is None:
            continue  # worker-scoped record (quarantine/unquarantine)
        tid = rec.task.id
        if rec.op == "failover_out":
            outs[tid] = outs.get(tid, 0) + 1
            if outs[tid] > ins.get(tid, 0):
                outstanding.pop(tid, None)
        elif rec.op == "failover_in":
            ins[tid] = ins.get(tid, 0) + 1
            if rec.placement == "unclaimed":
                # The original execution survives the move: its worker
                # may reattach and finish it on the new shard.
                outstanding[tid] = "failover_in"
            else:
                outstanding.pop(tid, None)
        elif rec.op in ("dispatch", "migrate_in"):
            prior = outstanding.get(tid)
            if prior is not None:
                violations.append(
                    Violation(
                        "failover-protocol",
                        f"task {tid} dispatched ({rec.op}) while a prior "
                        f"attempt ({prior}) was still outstanding — a "
                        f"re-homed task resumed twice",
                    )
                )
            outstanding[tid] = rec.op
        elif rec.op in ("retry", "migrate_out", "abandon"):
            outstanding.pop(tid, None)
        elif rec.op == "complete":
            completes[tid] = completes.get(tid, 0) + 1
            outstanding.pop(tid, None)
    for tid in sorted(set(outs) | set(ins)):
        if outs.get(tid, 0) != ins.get(tid, 0):
            violations.append(
                Violation(
                    "failover-protocol",
                    f"task {tid} has {outs.get(tid, 0)} FAILOVER_OUT but "
                    f"{ins.get(tid, 0)} FAILOVER_IN record(s) — a re-home "
                    f"lost or duplicated the task",
                )
            )
    doubled = sorted(tid for tid, n in completes.items() if n > 1)
    if doubled:
        violations.append(
            Violation(
                "failover-protocol",
                f"task(s) completed more than once in the merged journal: "
                f"{doubled[:10]}",
            )
        )
    return violations


def check_integrity_protocol(master) -> List[Violation]:
    """Result verification and quarantine obeyed their safety contract.

    Read off the final ledgers and the journal: with verification on, no
    corrupted payload ever reached COMPLETE (zero corrupted completes,
    and no done task still carries the corruption ground-truth flag);
    the QUARANTINE/UNQUARANTINE journal records agree with the master's
    counters and strictly alternate per worker (a worker is never
    condemned twice without re-admission in between)."""
    violations: List[Violation] = []
    if master.verify:
        if master.corrupted_completes:
            violations.append(
                Violation(
                    "integrity-protocol",
                    f"{master.corrupted_completes} corrupted result(s) "
                    f"reached COMPLETE despite verification",
                )
            )
        tainted = sorted(
            t.id
            for t in master.done
            if t.speculation_of is None and t.payload_corrupt
        )
        if tainted:
            violations.append(
                Violation(
                    "integrity-protocol",
                    f"done task(s) still flagged corrupt: {tainted[:10]}",
                )
            )
    quarantine_recs = unquarantine_recs = 0
    condemned: Dict[str, bool] = {}
    for rec in master.journal.records:
        if rec.op == "quarantine":
            quarantine_recs += 1
            if condemned.get(rec.worker):
                violations.append(
                    Violation(
                        "integrity-protocol",
                        f"worker {rec.worker} quarantined twice without "
                        f"an intervening unquarantine",
                    )
                )
            condemned[rec.worker] = True
        elif rec.op == "unquarantine":
            unquarantine_recs += 1
            if not condemned.get(rec.worker):
                violations.append(
                    Violation(
                        "integrity-protocol",
                        f"worker {rec.worker} unquarantined while not "
                        f"quarantined",
                    )
                )
            condemned[rec.worker] = False
    if quarantine_recs != master.quarantines:
        violations.append(
            Violation(
                "integrity-protocol",
                f"quarantine counter {master.quarantines} != "
                f"{quarantine_recs} QUARANTINE journal records",
            )
        )
    if unquarantine_recs != master.unquarantines:
        violations.append(
            Violation(
                "integrity-protocol",
                f"unquarantine counter {master.unquarantines} != "
                f"{unquarantine_recs} UNQUARANTINE journal records",
            )
        )
    return violations


def check_trace_consistency(master, chaos, tracer) -> List[Violation]:
    """Counters, ledgers, and the trace tell the same story."""
    violations: List[Violation] = []
    if not tracer.enabled:
        return violations
    events = list(tracer.events)
    complete_ids = {
        e.attrs.get("task_id") for e in events if e.name == "task.complete"
    }
    abandon_ids = {
        e.attrs.get("task_id") for e in events if e.name == "task.abandon"
    }
    done_ids = {t.id for t in master.done if t.speculation_of is None}
    if done_ids != complete_ids:
        missing = sorted(done_ids - complete_ids)
        extra = sorted(complete_ids - done_ids)
        violations.append(
            Violation(
                "trace-consistency",
                f"done ledger vs task.complete trace mismatch "
                f"(untraced: {missing[:5]}, phantom: {extra[:5]})",
            )
        )
    abandoned_ids = {t.id for t in master.abandoned if t.speculation_of is None}
    if abandoned_ids != abandon_ids:
        violations.append(
            Violation(
                "trace-consistency",
                f"abandoned ledger ({sorted(abandoned_ids)[:5]}…) disagrees "
                f"with task.abandon trace ({sorted(abandon_ids)[:5]}…)",
            )
        )
    if chaos is not None:
        traced_preemptions = sum(1 for e in events if e.name == "chaos.preemption")
        if chaos.preemptions_total != traced_preemptions:
            violations.append(
                Violation(
                    "trace-consistency",
                    f"preemptions counter {chaos.preemptions_total} != "
                    f"{traced_preemptions} chaos.preemption trace events",
                )
            )
        traced_partitions = sum(1 for e in events if e.name == "chaos.partition")
        if chaos.partition_windows != traced_partitions:
            violations.append(
                Violation(
                    "trace-consistency",
                    f"partition counter {chaos.partition_windows} != "
                    f"{traced_partitions} chaos.partition trace events",
                )
            )
        traced_migrations = sum(1 for e in events if e.name == "chaos.migrate")
        if chaos.migrations_injected != traced_migrations:
            violations.append(
                Violation(
                    "trace-consistency",
                    f"migrate counter {chaos.migrations_injected} != "
                    f"{traced_migrations} chaos.migrate trace events",
                )
            )
        traced_corruptions = sum(1 for e in events if e.name == "chaos.corrupt")
        if chaos.corruptions_injected != traced_corruptions:
            violations.append(
                Violation(
                    "trace-consistency",
                    f"corrupt counter {chaos.corruptions_injected} != "
                    f"{traced_corruptions} chaos.corrupt trace events",
                )
            )
        traced_black_holes = sum(
            1 for e in events if e.name == "chaos.black_hole"
        )
        if chaos.black_holes_injected != traced_black_holes:
            violations.append(
                Violation(
                    "trace-consistency",
                    f"black-hole counter {chaos.black_holes_injected} != "
                    f"{traced_black_holes} chaos.black_hole trace events",
                )
            )
        traced_shard_crashes = sum(
            1 for e in events if e.name == "chaos.shard_crash"
        )
        if chaos.shard_crashes != traced_shard_crashes:
            violations.append(
                Violation(
                    "trace-consistency",
                    f"shard-crash counter {chaos.shard_crashes} != "
                    f"{traced_shard_crashes} chaos.shard_crash trace events",
                )
            )
    return violations
