"""The chaos-soak harness: one seeded hostile run, checked at the end.

``run_soak(seed)`` builds the full stack (cluster with a preemptible
pool, Work Queue master, spot-aware HTA), throws the seed's generated
fault schedule at it — node kills, evictions, preemption waves,
partitions, master crashes, API outages, boot failures, pull stalls —
drives to quiescence, and then runs every invariant checker. The report
carries the violations (if any) and the seed *is* the reproduction
recipe: ``run_soak(seed)`` again replays the identical run.

Unlike :func:`repro.experiments.runner.run_experiment`, the soak drive
loop tolerates task abandonment — under a sufficiently hostile schedule
abandoning a task is correct behaviour (bounded retries), and the
invariants check that it happens *consistently*, not that it never
happens.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.cluster.cloud import PreemptiblePoolConfig
from repro.cluster.cluster import ClusterConfig
from repro.experiments.runner import FaultProfile, StackConfig, _Stack
from repro.hta.inittime import InitTimeTracker
from repro.hta.operator import HtaConfig, HtaOperator
from repro.hta.preemption import PreemptionResponder
from repro.hta.provisioner import SpotPolicy, WorkerProvisioner
from repro.makeflow.manager import WorkflowManager
from repro.sim.rng import RngRegistry
from repro.soak.invariants import (
    VersionProbe,
    Violation,
    check_failover_protocol,
    check_integrity_protocol,
    check_journal_replay,
    check_migration_protocol,
    check_no_worker_leaks,
    check_task_conservation,
    check_trace_consistency,
    check_version_monotonic,
)
from repro.soak.schedule import FaultEvent, SoakScheduleConfig, generate_schedule
from repro.telemetry.session import TelemetryConfig
from repro.workloads.synthetic import uniform_bag
from repro.wq.faults import BLACK_HOLE_MODES, BlackHoleProfile
from repro.wq.health import HealthConfig
from repro.wq.master import Master
from repro.wq.migration import CheckpointSpec, MigrationCoordinator
from repro.wq.sharding import FailoverCoordinator, Foreman, TaskPartitioner


@dataclass(frozen=True, slots=True)
class SoakConfig:
    """One soak run's workload, substrate, and deadline."""

    #: Sized so the workload stays busy past the schedule's horizon —
    #: strikes that land on an idle, drained cluster test nothing.
    n_tasks: int = 120
    execute_s: float = 120.0
    runtime_cv: float = 0.3
    max_nodes: int = 16
    spot_max_nodes: int = 8
    spot_fraction: float = 0.5
    preemption_grace_s: float = 30.0
    max_retries: int = 8
    #: Hard deadline on reaching quiescence (violation when missed).
    quiescence_timeout_s: float = 8000.0
    #: Extra simulated time after quiescence for drains/reaping to land.
    drain_grace_s: float = 1200.0
    schedule: SoakScheduleConfig = field(default_factory=SoakScheduleConfig)
    #: Opt-in checkpoint/restore migration: tasks get a checkpoint spec,
    #: a MigrationCoordinator joins the stack (so preemption drains
    #: migrate instead of requeueing), and the ``migrate`` chaos
    #: primitive enters the schedule's sampling pool. Off by default so
    #: existing seeds replay bit-identically.
    migrate: bool = False
    #: Opt-in integrity faults: attempts corrupt with a small seeded
    #: probability, content-digest verification and the health ledger
    #: arm, and the ``corrupt``/``black_hole`` chaos primitives enter
    #: the sampling pool. Off by default for the same bit-identity
    #: reason.
    integrity: bool = False
    result_corruption_prob: float = 0.02
    checkpoint_corruption_prob: float = 0.05
    #: Run the dispatch plane as this many shards behind a Foreman
    #: (1 = the classic single master). HTA consumes the foreman's
    #: aggregate view, so the autoscaling loop is unchanged.
    shards: int = 1
    #: Opt-in shard chaos: a FailoverCoordinator joins the sharded stack
    #: and the ``shard_crash`` primitive (transient or permanent loss of
    #: one shard) enters the schedule's sampling pool. Requires
    #: ``shards >= 2``. Off by default for the bit-identity reason.
    shard_crash: bool = False

    def smoke(self) -> "SoakConfig":
        """A shrunk copy for CI: fewer tasks, fewer strikes."""
        return SoakConfig(
            n_tasks=60,
            execute_s=120.0,
            runtime_cv=self.runtime_cv,
            max_nodes=10,
            spot_max_nodes=5,
            spot_fraction=self.spot_fraction,
            preemption_grace_s=self.preemption_grace_s,
            max_retries=self.max_retries,
            quiescence_timeout_s=6000.0,
            drain_grace_s=self.drain_grace_s,
            schedule=SoakScheduleConfig(
                horizon_s=450.0,
                start_after_s=120.0,
                min_events=3,
                max_events=6,
                migrate=self.migrate,
                integrity=self.integrity,
                shard_crash=self.shard_crash,
            ),
            migrate=self.migrate,
            integrity=self.integrity,
            result_corruption_prob=self.result_corruption_prob,
            checkpoint_corruption_prob=self.checkpoint_corruption_prob,
            shards=self.shards,
            shard_crash=self.shard_crash,
        )


@dataclass
class SoakReport:
    """What one soak run found."""

    seed: int
    events: List[FaultEvent]
    violations: List[Violation]
    quiesced: bool
    stats: Dict[str, float] = field(default_factory=dict)
    #: SHA-256 of the master's transaction journal (canonical form) at
    #: the end of the run — the fixed-seed bit-fidelity oracle the perf
    #: subsystem checks optimizations against.
    journal_digest: str = ""

    @property
    def ok(self) -> bool:
        return not self.violations

    def describe(self) -> str:
        lines = [
            f"soak seed={self.seed}: "
            f"{'OK' if self.ok else f'{len(self.violations)} VIOLATION(S)'} "
            f"({len(self.events)} strikes, "
            f"quiesced={'yes' if self.quiesced else 'NO'})"
        ]
        for event in self.events:
            lines.append(f"  strike {event}")
        for key in sorted(self.stats):
            lines.append(f"  {key}: {self.stats[key]:g}")
        for violation in self.violations:
            lines.append(f"  VIOLATION {violation}")
        if not self.ok:
            lines.append(
                f"  reproduce with: python -m repro.experiments soak --seed {self.seed}"
            )
        return "\n".join(lines)


def _apply_event(
    stack: _Stack,
    event: FaultEvent,
    migration: Optional[MigrationCoordinator] = None,
) -> None:
    """Translate one scheduled strike into a chaos-injector call."""
    chaos = stack.chaos
    assert chaos is not None
    if event.kind == "migrate":
        assert migration is not None, "migrate strike needs a coordinator"
        chaos.migrate_random_worker(stack.master, migration)
    elif event.kind == "corrupt":
        chaos.corrupt_random_result(stack.master)
    elif event.kind == "black_hole":
        chaos.black_hole_random_worker(
            stack.master,
            BlackHoleProfile(
                mode=BLACK_HOLE_MODES[int(event.param("mode", 0.0))],
                latency_s=event.param("latency_s", 1.0),
            ),
        )
    elif event.kind == "node_kill":
        chaos.kill_random_node()
    elif event.kind == "pod_eviction":
        chaos.evict_random_pod()
    elif event.kind == "preemption_wave":
        chaos.preempt_random_spot_nodes(int(event.param("count", 1)))
    elif event.kind == "partition":
        chaos.partition_random_worker(
            stack.master, duration_s=event.param("duration_s", 60.0)
        )
    elif event.kind == "master_crash":
        chaos.crash_master(
            stack.master, restart_delay_s=event.param("restart_delay_s", 60.0)
        )
    elif event.kind == "shard_crash":
        assert isinstance(stack.master, Foreman), "shard_crash needs shards >= 2"
        chaos.crash_random_shard(
            stack.master,
            restart_delay_s=(
                None
                if event.param("permanent", 0.0) >= 1.0
                else event.param("restart_delay_s", 60.0)
            ),
        )
    elif event.kind == "api_outage":
        chaos.begin_api_outage(duration_s=event.param("duration_s", 120.0))
    elif event.kind == "boot_failures":
        chaos.begin_boot_failures(
            event.param("prob", 0.5), duration_s=event.param("duration_s", 120.0)
        )
    elif event.kind == "pull_stall":
        chaos.begin_image_pull_stall(
            event.param("factor", 4.0), duration_s=event.param("duration_s", 120.0)
        )
    else:  # pragma: no cover — schedule generator and harness in lockstep
        raise ValueError(f"unknown fault kind {event.kind!r}")


def run_soak(seed: int, config: SoakConfig = SoakConfig()) -> SoakReport:
    """One seeded soak run; see the module docstring."""
    if config.shard_crash and config.shards < 2:
        raise ValueError("shard_crash needs a sharded plane (shards >= 2)")
    schedule_cfg = config.schedule
    if config.migrate and not schedule_cfg.migrate:
        schedule_cfg = replace(schedule_cfg, migrate=True)
    if config.integrity and not schedule_cfg.integrity:
        schedule_cfg = replace(schedule_cfg, integrity=True)
    if config.shard_crash and not schedule_cfg.shard_crash:
        schedule_cfg = replace(schedule_cfg, shard_crash=True)
    events = generate_schedule(seed, schedule_cfg)
    fault_profile = FaultProfile(max_retries=config.max_retries)
    if config.integrity:
        fault_profile = replace(
            fault_profile,
            result_corruption_prob=config.result_corruption_prob,
            checkpoint_corruption_prob=config.checkpoint_corruption_prob,
            health=HealthConfig(),
        )
    stack_cfg = StackConfig(
        cluster=ClusterConfig(
            max_nodes=config.max_nodes,
            preemptible=PreemptiblePoolConfig(
                max_nodes=config.spot_max_nodes,
                grace_period_s=config.preemption_grace_s,
            ),
        ),
        seed=seed,
        faults=fault_profile,
    )
    with _Stack(stack_cfg, telemetry=TelemetryConfig(enabled=True)) as stack:
        failover: Optional[FailoverCoordinator] = None
        if config.shards > 1:
            # Mirror the runner's sharded policy: stamp the extra shards
            # from the same DispatchConfig, feed the shared monitor, and
            # put the Foreman where the rest of the harness expects the
            # master. A FailoverCoordinator rides along so shard_crash
            # strikes (permanent ones included) are survivable.
            shard_list = [stack.master]
            for i in range(1, config.shards):
                shard_list.append(
                    Master(
                        stack.engine,
                        stack.link,
                        config=stack.dispatch_config,
                        estimator=stack._make_estimator("monitor"),
                        monitor=stack.monitor,
                        name=f"{stack.master.name}-{i}",
                        tracer=stack.tracer,
                        metrics=stack.metrics,
                    )
                )
            foreman = Foreman(
                stack.engine,
                shard_list,
                partitioner=TaskPartitioner(config.shards, seed=seed),
            )
            foreman.max_retries = shard_list[0].max_retries
            stack.master = foreman
            stack.runtime.master_selector = foreman.master_for_pod
            failover = FailoverCoordinator(
                stack.engine,
                foreman,
                tracer=stack.tracer,
                metrics=stack.metrics,
            )
            stack.failover = failover
        probe = VersionProbe(stack.cluster.api)
        graph_tasks = uniform_bag(
            config.n_tasks,
            execute_s=config.execute_s,
            category="soak",
            rng=RngRegistry(seed + 4099),
            runtime_cv=config.runtime_cv,
        )
        migration: Optional[MigrationCoordinator] = None
        if config.migrate:
            for task in graph_tasks:
                task.checkpoint = CheckpointSpec()
            migration = MigrationCoordinator(
                stack.engine,
                stack.master,
                tracer=stack.tracer,
                metrics=stack.metrics,
            )
        provisioner = WorkerProvisioner(
            stack.engine,
            stack.cluster.api,
            stack.runtime,
            image=stack_cfg.image,
            worker_request=stack.worker_request,
            fault_config=stack_cfg.faults.provisioner,
            spot_policy=SpotPolicy(config.spot_fraction),
        )
        responder = PreemptionResponder(
            stack.engine,
            stack.cluster.api,
            stack.master,
            stack.runtime,
            provisioner,
            tracer=stack.tracer,
            migration=migration,
        )
        tracker = InitTimeTracker(
            stack.cluster.api,
            prior_s=160.0,
            selector_label="wq-worker",
            robust=True,
            window=5,
            resync_period_s=stack_cfg.faults.informer_resync_period_s,
        )
        operator = HtaOperator(
            stack.engine,
            stack.master,
            provisioner,
            tracker,
            HtaConfig(
                initial_workers=stack_cfg.cluster.min_nodes,
                max_workers=stack_cfg.cluster.max_nodes,
            ),
            tracer=stack.tracer,
            preemption=responder,
        )
        from repro.makeflow.dag import WorkflowGraph

        graph = WorkflowGraph(graph_tasks)
        manager = WorkflowManager(stack.engine, graph, operator)
        manager.done_signal.add_waiter(lambda _mgr: operator.notify_no_more_jobs())
        for event in events:
            stack.engine.call_at(event.at_s, _apply_event, stack, event, migration)

        manager.start()
        operator.start()
        engine = stack.engine
        master = stack.master

        def resolved() -> int:
            done = sum(1 for t in master.done if t.speculation_of is None)
            return done + len(master.abandoned)

        quiesced = False
        while engine.now < config.quiescence_timeout_s:
            if resolved() >= len(graph.tasks) and master.all_done:
                quiesced = True
                break
            if engine.peek() is None:
                break  # event queue drained without quiescing
            engine.run(until=min(config.quiescence_timeout_s, engine.now + 30.0))
        violations: List[Violation] = []
        if quiesced:
            # Abandonment keeps the manager's done signal from firing;
            # trigger clean-up explicitly, then give drains time to land.
            operator.notify_no_more_jobs()
            deadline = engine.now + config.drain_grace_s
            while engine.now < deadline and engine.peek() is not None:
                engine.run(until=deadline)
        else:
            violations.append(
                Violation(
                    "quiescence",
                    f"not quiescent by t={engine.now:.0f}s: "
                    f"{resolved()}/{len(graph.tasks)} tasks resolved, "
                    f"queue={len(master.queue)}, running={len(master.running)}, "
                    f"unclaimed={len(master._unclaimed)}",
                )
            )
            operator.stop()
            provisioner.stop()
        violations.extend(check_task_conservation(graph, master))
        if quiesced:
            violations.extend(
                check_no_worker_leaks(stack.runtime, provisioner, master)
            )
            violations.extend(check_journal_replay(master))
        violations.extend(check_migration_protocol(master))
        violations.extend(check_integrity_protocol(master))
        if config.shards > 1:
            violations.extend(check_failover_protocol(master))
        violations.extend(check_version_monotonic(probe))
        violations.extend(check_trace_consistency(master, stack.chaos, stack.tracer))
        probe.close()
        stats: Dict[str, float] = {
            "sim_time_s": engine.now,
            "tasks_done": float(sum(1 for t in master.done if t.speculation_of is None)),
            "tasks_abandoned": float(len(master.abandoned)),
            "tasks_requeued": float(master.tasks_requeued),
            "tasks_evacuated": float(master.tasks_evacuated),
            "partitions_detected": float(master.partitions_detected),
            "workers_declared_lost": float(master.workers_declared_lost),
            "master_crashes": float(master.crashes),
            "preemptions": float(stack.cluster.cloud.preemptions),
            "nodes_killed": float(stack.chaos.nodes_killed if stack.chaos else 0),
            "pods_killed": float(stack.chaos.pods_killed if stack.chaos else 0),
            "workers_evacuated": float(responder.workers_evacuated),
            "journal_records": float(len(master.journal)),
            "migrations_accepted": float(master.migrations_accepted),
            "migrations_stale": float(master.migrations_stale),
        }
        if migration is not None:
            stats["migrations_started"] = float(migration.migrations_started)
            stats["migrations_completed"] = float(migration.migrations_completed)
            stats["migration_fallbacks"] = float(migration.migration_fallbacks)
            stats["migrations_injected"] = float(
                stack.chaos.migrations_injected if stack.chaos else 0
            )
        if failover is not None:
            stats["shard_crashes"] = float(
                stack.chaos.shard_crashes if stack.chaos else 0
            )
            stats["shard_failovers"] = float(failover.failovers)
            stats["failovers_aborted"] = float(failover.failovers_aborted)
            stats["tasks_rehomed"] = float(failover.tasks_rehomed)
            stats["tasks_rebalanced"] = float(failover.tasks_rebalanced)
            stats["workers_reattached"] = float(failover.workers_reattached)
        if config.integrity:
            stats["verify_fails"] = float(master.verify_fails)
            stats["checkpoint_verify_fails"] = float(
                master.checkpoint_verify_fails
            )
            stats["corrupted_completes"] = float(master.corrupted_completes)
            stats["quarantines"] = float(master.quarantines)
            stats["unquarantines"] = float(master.unquarantines)
            stats["tasks_poisoned"] = float(master.tasks_poisoned)
            stats["quarantined_rejected"] = float(master.quarantined_rejected)
            stats["corruptions_injected"] = float(
                stack.chaos.corruptions_injected if stack.chaos else 0
            )
            stats["black_holes_injected"] = float(
                stack.chaos.black_holes_injected if stack.chaos else 0
            )
        journal_digest = master.journal.digest()
    return SoakReport(
        seed=seed,
        events=events,
        violations=violations,
        quiesced=quiesced,
        stats=stats,
        journal_digest=journal_digest,
    )


def run_soak_batch(
    seeds: List[int], config: SoakConfig = SoakConfig()
) -> List[SoakReport]:
    """Run several seeds; returns every report (callers stop on first
    failure if they want fail-fast semantics)."""
    return [run_soak(seed, config) for seed in seeds]


def first_violation(reports: List[SoakReport]) -> Optional[SoakReport]:
    for report in reports:
        if not report.ok:
            return report
    return None
