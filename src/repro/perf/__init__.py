"""Macro-benchmark subsystem: the simulator's performance trajectory.

``repro.perf`` answers one question the figure harnesses never ask:
*how fast is the simulator itself?* Every later direction on the
roadmap (million-task sharding, serving colocation, budget-constrained
planning) needs configurations orders of magnitude beyond today's
hundreds of tasks, so raw sim-seconds-per-wall-second is a tracked,
regression-gated quantity like any correctness metric:

- :mod:`repro.perf.scenarios` — the named scaling ladder
  (1k/10k/100k tasks x 100/1k/10k nodes, across the ``hta``/``hpa``/
  ``predictive`` policy registry entries).
- :mod:`repro.perf.bench` — the sweep driver: per-run result
  directories, measured sim-s/wall-s + events/sec + peak RSS, and the
  ``BENCH_PERF.json`` emitter.
- :mod:`repro.perf.gate` — the regression gate comparing a fresh
  ``BENCH_PERF.json`` against the committed baseline, failing on >20%
  slowdown or any deterministic drift in event counts.
- :mod:`repro.perf.fidelity` — the safety proof: fixed-seed
  chaos-enabled runs must reproduce the committed pre-optimization
  journal digests bit-for-bit, so every hot-path optimization is
  behavior-preserving by construction.
"""

from repro.perf.bench import BenchConfig, BenchReport, RunMeasurement, run_bench
from repro.perf.fidelity import check_fidelity, load_golden
from repro.perf.gate import GateResult, check_regression, load_report
from repro.perf.scenarios import (
    LADDER,
    SMOKE_SCENARIO,
    PerfScenario,
    ladder_scenarios,
    scenario_by_name,
)

__all__ = [
    "BenchConfig",
    "BenchReport",
    "RunMeasurement",
    "run_bench",
    "check_fidelity",
    "load_golden",
    "GateResult",
    "check_regression",
    "load_report",
    "LADDER",
    "SMOKE_SCENARIO",
    "PerfScenario",
    "ladder_scenarios",
    "scenario_by_name",
]
