"""Optimization-safety proof: fixed-seed journal bit-fidelity.

Every hot-path change in this subsystem's remit (Master indexing,
aggregate counters, lazy telemetry, ``__slots__``, resync coalescing)
must be *behavior-preserving*: at a fixed seed the simulation must make
exactly the same decisions at exactly the same times. The oracle is the
master's transaction journal — every submit/dispatch/retry/complete/
abandon/escalate with full timestamps and result fields — hashed by
:meth:`repro.wq.journal.TransactionJournal.digest` and compared against
digests captured *before* any optimization landed
(``tests/perf/data/fidelity_golden.json``). The runs are full
chaos-enabled soaks (preemption waves, API outages, pull stalls, ...),
so the comparison covers the hostile paths, not just the happy one.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

from repro.soak import SoakConfig, run_soak

#: Where the pre-optimization reference digests live.
GOLDEN_PATH = (
    Path(__file__).resolve().parents[3] / "tests" / "perf" / "data"
    / "fidelity_golden.json"
)


def load_golden(path: Path = GOLDEN_PATH) -> Dict[str, Dict]:
    with open(path) as f:
        return json.load(f)


def check_fidelity(
    golden: Dict[str, Dict], *, config: SoakConfig = None
) -> List[str]:
    """Re-run every golden seed; return mismatch descriptions (empty =
    bit-fidelity holds)."""
    cfg = config if config is not None else SoakConfig().smoke()
    problems: List[str] = []
    for seed_str, expected in sorted(golden.items()):
        report = run_soak(int(seed_str), cfg)
        if not report.ok:
            problems.append(
                f"seed {seed_str}: invariant violations appeared: "
                + "; ".join(str(v) for v in report.violations)
            )
            continue
        if report.journal_digest != expected["journal_digest"]:
            problems.append(
                f"seed {seed_str}: journal digest drifted "
                f"({expected['journal_digest'][:16]}... -> "
                f"{report.journal_digest[:16]}...) — an optimization "
                f"changed the master's transition history"
            )
        for key, want in expected["stats"].items():
            got = report.stats.get(key)
            if got != want:
                problems.append(
                    f"seed {seed_str}: final metric {key!r} drifted "
                    f"({want} -> {got})"
                )
        if bool(expected.get("quiesced", True)) != report.quiesced:
            problems.append(f"seed {seed_str}: quiescence outcome changed")
    return problems
