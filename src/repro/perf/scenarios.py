"""The named scaling ladder the macro-benchmark sweeps.

Each rung multiplies both sides of the paper's workload model — task
count and node count — by 10x, and every rung runs under each of the
three head-to-head policies from the figure harnesses (``hta``, the
paper's operator; ``hpa``, the Kubernetes baseline; ``predictive``, the
forecasting variant), resolved through the same
:data:`repro.experiments.runner.POLICIES` registry the experiment CLI
uses. A scenario is pure configuration: :meth:`PerfScenario.build_spec`
yields the :class:`~repro.experiments.runner.ExperimentSpec` the bench
driver executes, so anything runnable by ``run_experiment`` is
benchmarkable by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.cluster import ClusterConfig
from repro.experiments.runner import ExperimentSpec, FaultProfile, StackConfig
from repro.sim.rng import RngRegistry
from repro.workloads.synthetic import uniform_bag

#: (tag, n_tasks, max_nodes, execute_s) per ladder rung. Task runtimes
#: are sized so each rung's ideal makespan stays in the few-hundred
#: sim-second range — big enough to exercise steady state, small enough
#: that the sweep measures simulator speed rather than workload length.
RUNGS: Tuple[Tuple[str, int, int, float], ...] = (
    ("1k-100", 1_000, 100, 60.0),
    ("10k-1k", 10_000, 1_000, 120.0),
    ("100k-10k", 100_000, 10_000, 240.0),
)

#: The policy registry keys every rung runs under.
POLICY_KEYS: Tuple[str, ...] = ("hta", "hpa", "predictive")


@dataclass(frozen=True, slots=True)
class PerfScenario:
    """One named macro-benchmark configuration."""

    name: str
    n_tasks: int
    max_nodes: int
    policy: str
    execute_s: float
    runtime_cv: float = 0.25
    seed: int = 42
    #: Hard wall on simulated time (generous; the bench driver's wall
    #: budget is the binding limit for slow configurations).
    max_sim_time_s: float = 200_000.0
    #: Coarser accounting on the big rungs keeps the sampler itself off
    #: the profile (1 Hz x 10k-node gauges would dominate).
    accounting_period_s: float = 1.0
    options: Dict[str, object] = field(default_factory=dict)

    def build_spec(self) -> ExperimentSpec:
        """Materialize the workload and wrap it in an ExperimentSpec."""
        tasks = uniform_bag(
            self.n_tasks,
            execute_s=self.execute_s,
            category="perf",
            rng=RngRegistry(self.seed + 7919),
            runtime_cv=self.runtime_cv,
        )
        stack = StackConfig(
            cluster=ClusterConfig(max_nodes=self.max_nodes),
            seed=self.seed,
            max_sim_time_s=self.max_sim_time_s,
            accounting_period_s=self.accounting_period_s,
            faults=FaultProfile(),
        )
        return ExperimentSpec(
            workload=tasks,
            policy=self.policy,
            name=self.name,
            stack=stack,
            seed=self.seed,
            options=dict(self.options),
        )


def ladder_scenarios() -> List[PerfScenario]:
    """The full ladder: every rung under every policy."""
    scenarios: List[PerfScenario] = []
    for tag, n_tasks, max_nodes, execute_s in RUNGS:
        for policy in POLICY_KEYS:
            scenarios.append(
                PerfScenario(
                    name=f"ladder-{tag}-{policy}",
                    n_tasks=n_tasks,
                    max_nodes=max_nodes,
                    policy=policy,
                    execute_s=execute_s,
                    # The top rung samples accounting at 5 s: the gauges
                    # are O(1) after the Master indexing work, but the 1 Hz
                    # cadence still costs events linear in sim time.
                    accounting_period_s=5.0 if n_tasks >= 100_000 else 1.0,
                )
            )
    return scenarios


def sharded_scenarios() -> List[PerfScenario]:
    """The sharded-data-plane rung: the top ladder workload under the
    ``sharded`` policy at 4 shards. One rung (not a full sweep) keeps
    the ladder affordable; the ``shards`` experiment owns the 1-vs-4
    scaling contrast on the million-task workload."""
    tag, n_tasks, max_nodes, execute_s = RUNGS[-1]
    return [
        PerfScenario(
            name=f"ladder-{tag}-sharded4",
            n_tasks=n_tasks,
            max_nodes=max_nodes,
            policy="sharded",
            execute_s=execute_s,
            accounting_period_s=5.0,
            options={"shards": 4},
        )
    ]


#: Materialized once; ``scenario_by_name`` and the CLI index into this.
LADDER: List[PerfScenario] = ladder_scenarios() + sharded_scenarios()

#: The CI smoke rung: smallest workload, the paper's own policy.
SMOKE_SCENARIO: str = "ladder-1k-100-hta"


def scenario_by_name(name: str) -> PerfScenario:
    for scenario in LADDER:
        if scenario.name == name:
            return scenario
    known = ", ".join(s.name for s in LADDER)
    raise KeyError(f"unknown perf scenario {name!r}; known: {known}")


def largest_scenario(policy: str = "hta") -> PerfScenario:
    """The top rung for ``policy`` — the ISSUE's >=10x target config."""
    tag = RUNGS[-1][0]
    return scenario_by_name(f"ladder-{tag}-{policy}")
