"""The macro-benchmark sweep driver and ``BENCH_PERF.json`` emitter.

Modeled on the megaphone-style bench harness: a named scenario list, one
result directory per run, and a single machine-readable report at the
top. Unlike the figure harnesses this driver owns its drive loop so it
can *time-box* a run by wall clock: a configuration too slow to finish
(the whole point of benchmarking a pre-optimization simulator on the
100k-task rung) still yields a valid sim-seconds/wall-second sample
from the partial run — throughput is a rate, not a total.

Measured per run:

- ``wall_s`` / ``sim_s`` / ``sim_per_wall`` — the headline metric.
- ``events`` / ``events_per_sec`` — engine-level throughput, and the
  deterministic side of the regression gate: for a fixed seed the event
  count must not drift across behavior-preserving optimizations once a
  run completes.
- ``peak_rss_mb`` — ``ru_maxrss`` at run end. Process-wide high-water
  mark, so in a multi-scenario sweep later runs inherit earlier peaks;
  the CI smoke job runs a single scenario for a clean reading.
- ``tasks_completed`` / ``tasks_total`` / ``completed`` — whether the
  workload finished inside the wall budget.
"""

from __future__ import annotations

import json
import platform
import resource
import sys
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.experiments.runner import (
    POLICIES,
    WorkflowFailed,
    _make_accountant,
    _reject_unknown,
    _Stack,
    ensure_graph,
)
from repro.makeflow.manager import WorkflowManager
from repro.perf.scenarios import LADDER, PerfScenario
from repro.telemetry.session import TelemetryConfig

#: Report schema version (bump when the JSON shape changes).
SCHEMA = 1


def _peak_rss_mb() -> float:
    """Process peak RSS in MiB (``ru_maxrss`` is KiB on Linux)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover — bytes on macOS
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


@dataclass
class RunMeasurement:
    """One scenario's measured numbers."""

    scenario: str
    policy: str
    n_tasks: int
    max_nodes: int
    wall_s: float
    sim_s: float
    events: int
    tasks_total: int
    tasks_completed: int
    completed: bool
    peak_rss_mb: float

    @property
    def sim_per_wall(self) -> float:
        return self.sim_s / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    def row(self) -> Dict[str, object]:
        d = asdict(self)
        d["sim_per_wall"] = round(self.sim_per_wall, 2)
        d["events_per_sec"] = round(self.events_per_sec, 1)
        return d


@dataclass
class BenchConfig:
    """One sweep: which scenarios, where, and the per-run wall budget."""

    scenarios: List[PerfScenario] = field(default_factory=lambda: list(LADDER))
    out_dir: Path = Path("bench-results")
    #: Per-run wall-clock budget; None drives every run to completion.
    max_wall_s: Optional[float] = 120.0
    #: A prior report to compute speedups against (e.g. the committed
    #: pre-optimization capture); folded into the emitted report.
    reference_path: Optional[Path] = None


@dataclass
class BenchReport:
    """The sweep's collected measurements plus derived comparisons."""

    runs: List[RunMeasurement]
    #: scenario name -> sim_per_wall ratio vs the reference report.
    speedup_vs_reference: Dict[str, float] = field(default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "runs": {m.scenario: m.row() for m in self.runs},
            "speedup_vs_reference": {
                k: round(v, 2) for k, v in self.speedup_vs_reference.items()
            },
        }

    def table(self) -> str:
        header = (
            f"{'scenario':<26} {'tasks':>7} {'nodes':>6} {'wall_s':>8} "
            f"{'sim_s':>9} {'sim/wall':>9} {'events/s':>10} {'rss_mb':>8} done"
        )
        lines = [header, "-" * len(header)]
        for m in self.runs:
            lines.append(
                f"{m.scenario:<26} {m.n_tasks:>7} {m.max_nodes:>6} "
                f"{m.wall_s:>8.1f} {m.sim_s:>9.0f} {m.sim_per_wall:>9.1f} "
                f"{m.events_per_sec:>10.0f} {m.peak_rss_mb:>8.0f} "
                f"{'yes' if m.completed else 'NO'}"
            )
        for name, ratio in sorted(self.speedup_vs_reference.items()):
            lines.append(f"speedup vs reference  {name}: {ratio:.1f}x")
        return "\n".join(lines)


def run_scenario(
    scenario: PerfScenario, *, max_wall_s: Optional[float] = None
) -> RunMeasurement:
    """Execute one scenario under the bench's wall-boxed drive loop.

    Mirrors :func:`repro.experiments.runner.run_experiment`'s assembly —
    same registry, same stack, same accountant — but drives the engine
    in sim-time chunks with a wall-clock check between chunks, so a slow
    configuration yields a partial-but-valid throughput sample instead
    of hanging the sweep. Telemetry stays disabled: the benchmark
    measures the simulator's production fast path.
    """
    policy = POLICIES[scenario.policy]
    spec = scenario.build_spec()
    options: Dict = dict(spec.options)
    if policy.validate is not None:
        policy.validate(options)
    assert spec.stack is not None
    started = time.perf_counter()
    with _Stack(
        spec.stack,
        estimator_kind=policy.estimator_kind(options),
        telemetry=TelemetryConfig(enabled=False),
    ) as stack:
        graph = ensure_graph(spec.workload)
        harness = policy.build(stack, spec.stack, graph, options)
        _reject_unknown(scenario.policy, options)
        manager = WorkflowManager(
            stack.engine, graph, harness.submitter, recorder=stack.recorder
        )
        if harness.on_manager is not None:
            harness.on_manager(manager)
        accountant = _make_accountant(
            stack,
            shortage_extra=harness.shortage_extra,
            extra_gauges=harness.gauges or None,
        )
        if harness.start is not None:
            harness.start()
        engine = stack.engine
        limit = spec.stack.max_sim_time_s
        accountant.start()
        manager.start()
        while not manager.done:
            if manager.failed:
                raise WorkflowFailed(
                    f"{scenario.name}: task(s) permanently abandoned at "
                    f"t={engine.now:.0f}s"
                )
            if engine.now >= limit or engine.peek() is None:
                break
            if (
                max_wall_s is not None
                and time.perf_counter() - started > max_wall_s
            ):
                break
            # Event-bounded chunks keep the wall box tight even when
            # the simulation is inside a same-timestamp event burst
            # (where a sim-time chunk boundary could never trip). The
            # chunk boundary is the only place the wall clock is
            # checked; chunking does not affect the simulation's
            # behaviour, only where the box lands.
            engine.run(until=limit, max_events=4096)
        accountant.stop()
        if manager.done and harness.finish is not None:
            harness.finish()
        wall = time.perf_counter() - started
        return RunMeasurement(
            scenario=scenario.name,
            policy=scenario.policy,
            n_tasks=scenario.n_tasks,
            max_nodes=scenario.max_nodes,
            wall_s=wall,
            sim_s=engine.now,
            events=engine.events_fired,
            tasks_total=len(graph),
            tasks_completed=len(stack.master.done),
            completed=bool(manager.done),
            peak_rss_mb=_peak_rss_mb(),
        )


def run_bench(config: BenchConfig, *, echo=print) -> BenchReport:
    """Run the sweep; write per-run results and ``BENCH_PERF.json``."""
    out_dir = Path(config.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    reference: Dict[str, Dict] = {}
    if config.reference_path is not None and Path(config.reference_path).exists():
        with open(config.reference_path) as f:
            reference = json.load(f).get("runs", {})
    runs: List[RunMeasurement] = []
    for scenario in config.scenarios:
        echo(f"perf: running {scenario.name} "
             f"({scenario.n_tasks} tasks, {scenario.max_nodes} nodes)...")
        measurement = run_scenario(scenario, max_wall_s=config.max_wall_s)
        runs.append(measurement)
        run_dir = out_dir / scenario.name
        run_dir.mkdir(parents=True, exist_ok=True)
        with open(run_dir / "result.json", "w") as f:
            json.dump(measurement.row(), f, indent=2, sort_keys=True)
        echo(
            f"perf: {scenario.name}: {measurement.sim_per_wall:.1f} sim-s/wall-s, "
            f"{measurement.events_per_sec:.0f} events/s"
            + ("" if measurement.completed else " (wall budget hit)")
        )
    report = BenchReport(runs=runs)
    for m in runs:
        ref = reference.get(m.scenario)
        if ref and ref.get("sim_per_wall"):
            report.speedup_vs_reference[m.scenario] = (
                m.sim_per_wall / float(ref["sim_per_wall"])
            )
    with open(out_dir / "BENCH_PERF.json", "w") as f:
        json.dump(report.to_json(), f, indent=2, sort_keys=True)
    return report
