"""The perf regression gate.

Compares a freshly emitted ``BENCH_PERF.json`` against the committed
baseline (``benchmarks/baselines/BENCH_PERF_BASELINE.json``) and fails
on either of two signals:

- **Throughput**: a scenario's ``sim_per_wall`` dropped more than
  ``tolerance`` (default 20%) below baseline. Wall-clock numbers move
  with the host, so the tolerance is deliberately generous and the
  baseline should be refreshed when hardware changes.
- **Determinism**: for a scenario that ran to completion in both
  reports, the fixed-seed event count drifted. That is never a hardware
  effect — it means an "optimization" changed simulation behavior, the
  exact failure mode the journal-fidelity suite exists to catch.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List

#: Allowed fractional throughput drop before the gate fails.
DEFAULT_TOLERANCE = 0.20


def load_report(path: Path) -> Dict[str, Dict]:
    """The ``runs`` table of a ``BENCH_PERF.json``."""
    with open(path) as f:
        return json.load(f).get("runs", {})


@dataclass
class GateResult:
    """What the comparison found."""

    failures: List[str] = field(default_factory=list)
    compared: List[str] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        lines = [
            f"perf gate: {'OK' if self.ok else 'FAIL'} "
            f"({len(self.compared)} scenario(s) compared, "
            f"{len(self.skipped)} skipped)"
        ]
        lines += [f"  FAIL {f}" for f in self.failures]
        lines += [f"  skipped {s} (not in both reports)" for s in self.skipped]
        return "\n".join(lines)


def check_regression(
    current: Dict[str, Dict],
    baseline: Dict[str, Dict],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> GateResult:
    """Gate ``current`` against ``baseline``; see module docstring."""
    result = GateResult()
    for name in sorted(set(current) | set(baseline)):
        cur, base = current.get(name), baseline.get(name)
        if cur is None or base is None:
            result.skipped.append(name)
            continue
        result.compared.append(name)
        cur_tp = float(cur.get("sim_per_wall", 0.0))
        base_tp = float(base.get("sim_per_wall", 0.0))
        if base_tp > 0 and cur_tp < base_tp * (1.0 - tolerance):
            result.failures.append(
                f"{name}: sim_per_wall {cur_tp:.1f} is "
                f"{(1 - cur_tp / base_tp):.0%} below baseline {base_tp:.1f} "
                f"(tolerance {tolerance:.0%})"
            )
        if cur.get("completed") and base.get("completed"):
            if int(cur.get("events", -1)) != int(base.get("events", -2)):
                result.failures.append(
                    f"{name}: fixed-seed event count drifted "
                    f"({base.get('events')} -> {cur.get('events')}); "
                    f"a change altered simulation behavior"
                )
    return result
