"""Fig 11 — the I/O-bound synthetic workload.

200 parallel ``dd`` tasks whose CPU load "is rarely over 20 %". Under
HPA the CPU metric never crosses any target, so the cluster never grows
("the cluster size maintains at" its floor) and the queue starves for
hours; HTA plans from queue length + per-category resource estimates and
scales to the cap, cutting execution time ~3.66×.

Paper (fig 11c): runtimes 6670 / 7230 / 1823 s; accumulated waste
159 / 82 / 2028 core×s; accumulated shortage 337737 / 357640 / 31840
core×s.
"""

from __future__ import annotations

from typing import Dict

from repro.cluster.cluster import ClusterConfig
from repro.cluster.node import N1_STANDARD_4_RESERVED
from repro.experiments.report import ascii_chart, paper_vs_measured
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentSpec,
    StackConfig,
    run_experiment,
)
from repro.metrics.summary import comparison_factors, format_summary_table
from repro.workloads.iobound import iobound_parallel

PAPER = {
    "runtime_hpa20_s": 6670.0,
    "runtime_hpa50_s": 7230.0,
    "runtime_hta_s": 1823.0,
    "waste_hpa20": 159.0,
    "waste_hpa50": 82.0,
    "waste_hta": 2028.0,
    "shortage_hpa20": 337737.0,
    "shortage_hpa50": 357640.0,
    "shortage_hta": 31840.0,
    "speedup": 3.66,
}

N_TASKS = 200
EXECUTE_S = 250.0


def stack_config(seed: int = 0) -> StackConfig:
    return StackConfig(
        cluster=ClusterConfig(
            machine_type=N1_STANDARD_4_RESERVED,
            min_nodes=3,
            max_nodes=20,
            max_concurrent_reservations=10,
        ),
        seed=seed,
    )


def workload():
    return iobound_parallel(N_TASKS, execute_s=EXECUTE_S, declared=False)


def run_hpa(target: float, seed: int = 0) -> ExperimentResult:
    return run_experiment(
        ExperimentSpec(
            workload(),
            policy="hpa",
            name=f"HPA({int(target * 100)}% CPU)",
            stack=stack_config(seed),
            options={
                "target_cpu": target,
                "min_replicas": 3,
                "max_replicas": 20,
            },
        )
    )


def run_hta(seed: int = 0) -> ExperimentResult:
    return run_experiment(
        ExperimentSpec(workload(), policy="hta", name="HTA", stack=stack_config(seed))
    )


def run(seed: int = 0) -> Dict[str, ExperimentResult]:
    return {
        "HPA(20% CPU)": run_hpa(0.20, seed),
        "HPA(50% CPU)": run_hpa(0.50, seed),
        "HTA": run_hta(seed),
    }


def report(results: Dict[str, ExperimentResult]) -> str:
    sections = []
    for name, result in results.items():
        t0, t1 = result.accountant.window()
        sections.append(
            ascii_chart(
                {
                    "supply": result.series("supply"),
                    "demand": result.series("demand"),
                    "in-use": result.series("in_use"),
                },
                t0,
                t1,
                title=f"Fig 11b ({name}): resource supply and demand (cores)",
            )
        )
    sections.append(
        format_summary_table(
            {name: r.accounting for name, r in results.items()},
            title="Fig 11c: I/O-bound workflow performance summary",
        )
    )
    factors20 = comparison_factors(results["HTA"].accounting, results["HPA(20% CPU)"].accounting)
    rows = [
        ("HPA-20 runtime (s)", PAPER["runtime_hpa20_s"], results["HPA(20% CPU)"].makespan_s),
        ("HPA-50 runtime (s)", PAPER["runtime_hpa50_s"], results["HPA(50% CPU)"].makespan_s),
        ("HTA runtime (s)", PAPER["runtime_hta_s"], results["HTA"].makespan_s),
        ("HPA-20 shortage (core*s)", PAPER["shortage_hpa20"], results["HPA(20% CPU)"].accounting.accumulated_shortage_core_s),
        ("HPA-50 shortage (core*s)", PAPER["shortage_hpa50"], results["HPA(50% CPU)"].accounting.accumulated_shortage_core_s),
        ("HTA shortage (core*s)", PAPER["shortage_hta"], results["HTA"].accounting.accumulated_shortage_core_s),
        ("HTA speedup vs HPA-20 (x)", PAPER["speedup"], factors20["speedup"]),
    ]
    sections.append(paper_vs_measured(rows, title="Fig 11: paper vs measured"))
    return "\n\n".join(sections)


def main(seed: int = 0) -> str:
    out = report(run(seed))
    print(out)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
