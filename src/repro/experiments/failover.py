"""Failover — losing a dispatch shard for good must not strand its work.

Beyond the paper: the sharded data plane's robustness story. The
``shards`` experiment shows N masters behind a
:class:`~repro.wq.sharding.Foreman` scale dispatch throughput; this one
kills one of those masters **permanently** mid-flight and asks whether
the workload still finishes. Without intervention it cannot: the dead
shard's partition of the queue, its in-flight (unclaimed) set, and its
attached workers are all unreachable, so roughly 1/N of the remaining
work is stranded forever. The
:class:`~repro.wq.sharding.FailoverCoordinator` closes exactly that
hole — after a grace period separating a transient crash-with-restart
from permanent loss, it replays the dead shard's journal, re-homes the
queued and unclaimed work onto survivors (journaled as
FAILOVER_OUT/FAILOVER_IN so every shard's log replays to what it owes),
and re-attaches the stranded workers.

Three legs, all at seed 0 on a 4-shard plane with one permanent shard
loss mid-flight:

* **failover on** — every task completes, and the merged journal passes
  the failover-protocol invariant (no task resumed twice, OUT/IN
  balanced) plus the journal-replay check;
* **failover off** — the same run at the same sim-time horizon
  completes *strictly fewer* tasks (the stranded partition never
  drains), quantifying what the coordinator buys;
* **HTA fidelity** — the full cluster stack under ``sharded`` with a
  permanent mid-flight shard loss and failover on must make sizing
  decisions (pods created, peak nodes) within tolerance of the
  no-crash oracle: re-homed queue depth flows into the foreman's
  aggregate view, so the operator keeps sizing for the *real* backlog.

Usage::

    python -m repro.experiments failover            # full: 2000 tasks
    python -m repro.experiments failover --smoke    # CI: 600 tasks
    python -m repro.experiments failover --bench-out DIR

Writes ``BENCH_PERF.json`` to the output directory and exits non-zero
if any leg of the contract fails.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.cluster.resources import ResourceVector
from repro.experiments.runner import run_experiment
from repro.experiments.shards import HtaFidelity
from repro.perf.scenarios import PerfScenario
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.soak.invariants import check_failover_protocol, check_journal_replay
from repro.wq.dispatch import DispatchConfig
from repro.wq.estimator import DeclaredResourceEstimator
from repro.wq.link import Link
from repro.wq.master import Master
from repro.wq.sharding import (
    FailoverConfig,
    FailoverCoordinator,
    Foreman,
    TaskPartitioner,
)
from repro.wq.task import Task
from repro.wq.worker import Worker

#: Repository root (src/repro/experiments/failover.py -> three parents up).
_ROOT = Path(__file__).resolve().parents[3]
DEFAULT_OUT_DIR = _ROOT / "benchmarks" / "results" / "failover"

#: One task's true/declared resources; workers are sized in whole
#: multiples so the fleet stays saturated until the tail.
FOOT = ResourceVector(cores=1, memory_mb=512, disk_mb=128)
CORES_PER_WORKER = 16

#: The contrast's fixed shard count and the (permanent) victim.
N_SHARDS = 4
VICTIM = 1

#: Sim seconds before the victim dies, and the failover grace after it.
CRASH_AT_S = 120.0
GRACE_S = 60.0

#: Wall-clock safety box around each dispatch-plane drive.
MAX_WALL_S = 120.0


@dataclass
class FailoverMeasurement:
    """One dispatch-plane drive (failover on or off)."""

    name: str
    failover: bool
    n_tasks: int
    completed: int
    sim_s: float
    wall_s: float
    failovers: int
    tasks_rehomed: int
    tasks_rebalanced: int
    workers_reattached: int
    protocol_violations: int
    replay_violations: int

    @property
    def completed_fraction(self) -> float:
        return self.completed / self.n_tasks if self.n_tasks else 0.0

    def row(self) -> Dict[str, object]:
        return {
            "scenario": self.name,
            "failover": self.failover,
            "n_tasks": self.n_tasks,
            "completed": self.completed,
            "completed_fraction": round(self.completed_fraction, 4),
            "sim_s": round(self.sim_s, 1),
            "wall_s": round(self.wall_s, 2),
            "failovers": self.failovers,
            "tasks_rehomed": self.tasks_rehomed,
            "tasks_rebalanced": self.tasks_rebalanced,
            "workers_reattached": self.workers_reattached,
            "protocol_violations": self.protocol_violations,
            "replay_violations": self.replay_violations,
        }


def _bag(n_tasks: int, *, execute_s: float, seed: int) -> List[Task]:
    """Independent CPU tasks with lognormal runtime spread and no files
    (transfers would serialize on the shared link and blur the contrast
    this experiment wants to attribute to the dispatch plane)."""
    rng = RngRegistry(seed + 5557)
    return [
        Task(
            "failover",
            execute_s=rng.lognormal_around("failover.exec", execute_s, 0.25),
            footprint=FOOT,
            declared=FOOT,
        )
        for _ in range(n_tasks)
    ]


def run_shard_loss(
    *,
    failover: bool,
    n_tasks: int,
    n_workers: int = 8,
    execute_s: float = 30.0,
    seed: int = 0,
    horizon_s: float = 3000.0,
    max_wall_s: float = MAX_WALL_S,
) -> FailoverMeasurement:
    """Drive a 4-shard plane through one permanent shard loss.

    Builds the masters behind a foreman, attaches a directly-connected
    worker fleet round-robin, submits the bag, kills shard ``VICTIM``
    at :data:`CRASH_AT_S` with no restart, and runs to ``horizon_s``
    (or until every task completed). With ``failover`` a
    :class:`FailoverCoordinator` (grace :data:`GRACE_S`) re-homes the
    dead shard's work; without it the run shows what permanent loss
    costs a plane that only has the PR 3 restart-and-replay story."""
    engine = Engine()
    link = Link(engine, 10_000.0)
    config = DispatchConfig()
    shards = [
        Master(
            engine,
            link,
            config=config,
            estimator=DeclaredResourceEstimator(),
            name=f"shard-{i}",
        )
        for i in range(N_SHARDS)
    ]
    foreman = Foreman(
        engine,
        shards,
        partitioner=TaskPartitioner(N_SHARDS, seed=seed),
    )
    coordinator: Optional[FailoverCoordinator] = None
    if failover:
        coordinator = FailoverCoordinator(
            engine, foreman, FailoverConfig(grace_s=GRACE_S)
        )
    completed = 0

    def _done(_task: Task, _result) -> None:
        nonlocal completed
        completed += 1

    foreman.on_complete(_done)
    capacity = ResourceVector(
        cores=CORES_PER_WORKER,
        memory_mb=CORES_PER_WORKER * FOOT.memory_mb,
        disk_mb=CORES_PER_WORKER * FOOT.disk_mb,
    )
    for i in range(n_workers):
        Worker(
            engine,
            shards[i % N_SHARDS],
            f"w{i}",
            capacity,
            connect_latency=1.0,
        )
    foreman.submit_many(_bag(n_tasks, execute_s=execute_s, seed=seed))
    engine.call_at(CRASH_AT_S, foreman.crash_shard, VICTIM)
    started = time.perf_counter()
    while engine.peek() is not None and engine.now < horizon_s:
        if completed >= n_tasks:
            break
        if time.perf_counter() - started > max_wall_s:
            break
        engine.run(until=min(horizon_s, engine.now + 50.0))
    wall = time.perf_counter() - started
    protocol = check_failover_protocol(foreman)
    replay = check_journal_replay(foreman) if completed >= n_tasks else []
    measurement = FailoverMeasurement(
        name=f"shard-loss-{'failover' if failover else 'bare'}",
        failover=failover,
        n_tasks=n_tasks,
        completed=completed,
        sim_s=engine.now,
        wall_s=wall,
        failovers=coordinator.failovers if coordinator else 0,
        tasks_rehomed=coordinator.tasks_rehomed if coordinator else 0,
        tasks_rebalanced=coordinator.tasks_rebalanced if coordinator else 0,
        workers_reattached=coordinator.workers_reattached if coordinator else 0,
        protocol_violations=len(protocol),
        replay_violations=len(replay),
    )
    if coordinator is not None:
        coordinator.stop()
    foreman.close()
    return measurement


def check_hta_fidelity(
    seed: int, *, n_tasks: int = 1_000, max_nodes: int = 100
) -> HtaFidelity:
    """Full-stack leg: ``sharded`` with a permanent mid-flight shard
    loss (failover on) vs the no-crash oracle. The crash lands at half
    the oracle's makespan, so it is mid-flight by construction."""
    oracle_scenario = PerfScenario(
        name="failover-fidelity-oracle",
        n_tasks=n_tasks,
        max_nodes=max_nodes,
        policy="sharded",
        execute_s=60.0,
        seed=seed,
        options={"shards": N_SHARDS},
    )
    oracle = run_experiment(oracle_scenario.build_spec())
    crash_scenario = PerfScenario(
        name="failover-fidelity-crash",
        n_tasks=n_tasks,
        max_nodes=max_nodes,
        policy="sharded",
        execute_s=60.0,
        seed=seed,
        options={
            "shards": N_SHARDS,
            "failover": True,
            "failover_grace_s": GRACE_S,
            "shard_crash_at_s": round(oracle.makespan_s * 0.5, 1),
            "shard_crash_index": VICTIM,
            "shard_crash_restart_s": None,
        },
    )
    crashed = run_experiment(crash_scenario.build_spec())
    if crashed.extras.get("shard_failovers", 0.0) < 1.0:
        raise SystemExit(
            "failover: the fidelity leg's shard crash never failed over "
            "(crash landed after the workload drained?)"
        )
    return HtaFidelity(
        pods_created_oracle=oracle.extras.get("pods_created", 0.0),
        pods_created_sharded=crashed.extras.get("pods_created", 0.0),
        nodes_peak_oracle=oracle.nodes_peak,
        nodes_peak_sharded=crashed.nodes_peak,
    )


@dataclass
class FailoverReport:
    """The contrast's collected measurements, rendered and serialized."""

    runs: List[FailoverMeasurement]
    fidelity: HtaFidelity
    smoke: bool = False
    notes: List[str] = field(default_factory=list)

    @property
    def with_failover(self) -> FailoverMeasurement:
        return next(m for m in self.runs if m.failover)

    @property
    def without_failover(self) -> FailoverMeasurement:
        return next(m for m in self.runs if not m.failover)

    @property
    def ok(self) -> bool:
        on, off = self.with_failover, self.without_failover
        return (
            on.completed >= on.n_tasks
            and off.completed < on.completed
            and on.protocol_violations == 0
            and on.replay_violations == 0
            and off.protocol_violations == 0
            and self.fidelity.ok
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "schema": 1,
            "experiment": "failover",
            "smoke": self.smoke,
            "runs": {m.name: m.row() for m in self.runs},
            "hta_fidelity": self.fidelity.row(),
            "ok": self.ok,
            "notes": list(self.notes),
        }

    def table(self) -> str:
        header = (
            f"{'config':<22} {'failover':>8} {'done':>11} "
            f"{'rehomed':>8} {'rebal':>6} {'workers':>8} {'proto':>6}"
        )
        lines = [header, "-" * len(header)]
        for m in self.runs:
            lines.append(
                f"{m.name:<22} {'on' if m.failover else 'off':>8} "
                f"{m.completed:>6}/{m.n_tasks:<4} "
                f"{m.tasks_rehomed:>8} {m.tasks_rebalanced:>6} "
                f"{m.workers_reattached:>8} "
                f"{m.protocol_violations + m.replay_violations:>6}"
            )
        on, off = self.with_failover, self.without_failover
        lines.append("")
        lines.append(
            f"permanent loss of shard {VICTIM}/{N_SHARDS} at "
            f"t={CRASH_AT_S:.0f}s: failover completes "
            f"{on.completed}/{on.n_tasks}, bare plane strands "
            f"{on.completed - off.completed} task(s) "
            f"({off.completed}/{off.n_tasks} by the same horizon)"
        )
        f = self.fidelity
        lines.append(
            f"HTA fidelity vs no-crash oracle: pods_created "
            f"{f.pods_created_oracle:.0f} vs {f.pods_created_sharded:.0f}, "
            f"nodes_peak {f.nodes_peak_oracle} vs {f.nodes_peak_sharded} "
            f"(tolerance {f.tolerance:.0%}): {'OK' if f.ok else 'FAIL'}"
        )
        lines.extend(self.notes)
        return "\n".join(lines)


def main(
    seed: int = 0,
    *,
    smoke: bool = False,
    out_dir: Optional[str] = None,
    n_tasks: Optional[int] = None,
) -> str:
    """Run the shard-loss contrast; returns the rendered table.

    Full mode: a 2000-task bag and the 1000-task fidelity leg.
    Smoke mode: 600 tasks and a 300-task fidelity leg — the same
    contract, enforced either way.
    """
    if smoke:
        bag = n_tasks if n_tasks is not None else 600
        fidelity_tasks, fidelity_nodes = 300, 40
    else:
        bag = n_tasks if n_tasks is not None else 2_000
        fidelity_tasks, fidelity_nodes = 1_000, 100

    runs: List[FailoverMeasurement] = []
    for failover in (True, False):
        label = "on" if failover else "off"
        print(f"failover: driving the {bag}-task bag (failover {label})...")
        measurement = run_shard_loss(failover=failover, n_tasks=bag, seed=seed)
        runs.append(measurement)
        print(
            f"failover: {measurement.name}: "
            f"{measurement.completed}/{measurement.n_tasks} completed "
            f"by t={measurement.sim_s:.0f}s"
        )

    print("failover: checking HTA sizing fidelity vs the no-crash oracle...")
    fidelity = check_hta_fidelity(
        seed, n_tasks=fidelity_tasks, max_nodes=fidelity_nodes
    )

    report = FailoverReport(runs=runs, fidelity=fidelity, smoke=smoke)
    directory = Path(out_dir) if out_dir is not None else DEFAULT_OUT_DIR
    directory.mkdir(parents=True, exist_ok=True)
    with open(directory / "BENCH_PERF.json", "w") as f:
        json.dump(report.to_json(), f, indent=2, sort_keys=True)
    out = report.table()
    print(out)
    print(f"\n[BENCH_PERF.json -> {directory / 'BENCH_PERF.json'}]")
    on, off = report.with_failover, report.without_failover
    if on.completed < on.n_tasks:
        raise SystemExit(
            f"failover: {on.n_tasks - on.completed} task(s) stranded "
            f"despite failover; see report above"
        )
    if off.completed >= on.completed:
        raise SystemExit(
            "failover: the bare plane matched the failover arm — the "
            "crash did not strand anything, so the contrast is void"
        )
    if on.protocol_violations or on.replay_violations or off.protocol_violations:
        raise SystemExit(
            "failover: journal protocol violations; see report above"
        )
    if not fidelity.ok:
        raise SystemExit(
            "failover: HTA sizing under shard loss diverged from the "
            "no-crash oracle beyond tolerance; see report above"
        )
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
