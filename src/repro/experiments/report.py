"""Rendering helpers for experiment output: ASCII charts and tables.

The paper's figures are line charts of step series (cluster size, supply
vs demand); in a terminal we render them as compact ASCII charts plus
downsampled numeric tables so the series are both eyeballable and
machine-checkable.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.sim.tracing import StepSeries


def ascii_chart(
    series: Mapping[str, StepSeries],
    t0: float,
    t1: float,
    *,
    width: int = 72,
    height: int = 12,
    title: Optional[str] = None,
) -> str:
    """Plot one or more step series on a shared time axis.

    Each series gets a marker character; collisions show the later
    series' marker. Y axis is linear from 0 to the global maximum.
    """
    if t1 <= t0:
        raise ValueError("t1 must exceed t0")
    markers = "*o+x#@%&"
    names = list(series)
    if len(names) > len(markers):
        raise ValueError(f"too many series ({len(names)}) for one chart")

    dt = (t1 - t0) / width
    sampled: Dict[str, List[float]] = {}
    for name in names:
        sampled[name] = [series[name].value_at(t0 + (i + 0.5) * dt) for i in range(width)]
    ymax = max((max(vals) for vals in sampled.values()), default=0.0)
    if ymax <= 0:
        ymax = 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, name in enumerate(names):
        mark = markers[si]
        for x, v in enumerate(sampled[name]):
            y = int(round((v / ymax) * (height - 1)))
            y = min(height - 1, max(0, y))
            grid[height - 1 - y][x] = mark

    lines: List[str] = []
    if title:
        lines.append(title)
    legend = "  ".join(f"{markers[i]}={names[i]}" for i in range(len(names)))
    lines.append(f"  [{legend}]  y-max={ymax:.0f}")
    for row_idx, row in enumerate(grid):
        yval = ymax * (height - 1 - row_idx) / (height - 1)
        lines.append(f"{yval:>8.0f} |" + "".join(row))
    axis = f"{'':>8} +" + "-" * width
    lines.append(axis)
    lines.append(f"{'':>10}t={t0:.0f}s{'':>{max(1, width - 20)}}t={t1:.0f}s")
    return "\n".join(lines)


def kv_table(rows: Sequence[Tuple[str, str]], *, title: Optional[str] = None) -> str:
    """Two-column aligned table."""
    width = max((len(k) for k, _ in rows), default=0)
    lines = [title] if title else []
    lines.extend(f"  {k:<{width}}  {v}" for k, v in rows)
    return "\n".join(lines)


def paper_vs_measured(
    rows: Sequence[Tuple[str, float, float]],
    *,
    title: str = "Paper vs measured",
    unit: str = "",
) -> str:
    """Three-column comparison with the ratio, the core of EXPERIMENTS.md."""
    lines = [
        title,
        f"  {'metric':<38} {'paper':>12} {'measured':>12} {'ratio':>8}",
    ]
    for name, paper, measured in rows:
        ratio = measured / paper if paper else float("inf")
        lines.append(f"  {name:<38} {paper:>12.1f} {measured:>12.1f} {ratio:>8.2f}")
    if unit:
        lines.append(f"  (values in {unit})")
    return "\n".join(lines)
