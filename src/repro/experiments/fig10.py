"""Fig 10 — the multistage BLAST workflow (the paper's main evaluation).

Three stages of 200 / 34 / 164 tasks on a ≤20-node cluster ("20 nodes,
60 cores"); resource requirements are *not* declared, so both systems
rely on the Work Queue resource monitor. Compared policies:

* HPA-20 %, HPA-50 % — ramp up and then **stay pinned at the capacity
  limit** until the workflow ends (scale-down stabilization + steady CPU
  keep the recommendation high), wasting the stage-2 dip entirely;
* HTA — follows the stage structure: scales up for stage 1, shrinks
  during the narrow stage 2, bumps back up for stage 3, and drains at
  the tail. Warm-up probing costs ~one category-runtime per stage, the
  paper's "slight increase in execution time".

Paper (fig 10c): runtimes 2656 / 2480 / 3060 s; accumulated waste
51324 / 39353 / 9146 core×s; accumulated shortage 34813 / 66611 / 40680
core×s. Headline: HTA cuts waste 5.6× vs HPA-20 (4.3× vs HPA-50) for a
~12.5-16.6 % runtime increase.
"""

from __future__ import annotations

from typing import Dict

from repro.cluster.cluster import ClusterConfig
from repro.cluster.node import N1_STANDARD_4_RESERVED
from repro.experiments.report import ascii_chart, paper_vs_measured
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentSpec,
    StackConfig,
    run_experiment,
)
from repro.metrics.summary import comparison_factors, format_summary_table
from repro.workloads.blast import blast_multistage

PAPER = {
    "runtime_hpa20_s": 2656.0,
    "runtime_hpa50_s": 2480.0,
    "runtime_hta_s": 3060.0,
    "waste_hpa20": 51324.0,
    "waste_hpa50": 39353.0,
    "waste_hta": 9146.0,
    "shortage_hpa20": 34813.0,
    "shortage_hpa50": 66611.0,
    "shortage_hta": 40680.0,
    "waste_reduction_vs_hpa20": 5.6,
    "waste_reduction_vs_hpa50": 4.3,
}

STAGES = (200, 34, 164)
EXECUTE_S = 300.0


def stack_config(seed: int = 0) -> StackConfig:
    return StackConfig(
        cluster=ClusterConfig(
            machine_type=N1_STANDARD_4_RESERVED,  # 3 allocatable cores/node
            min_nodes=3,
            max_nodes=20,
            max_concurrent_reservations=10,
        ),
        seed=seed,
    )


def workload():
    return blast_multistage(STAGES, execute_s=EXECUTE_S, declared=False)


def run_hpa(target: float, seed: int = 0) -> ExperimentResult:
    return run_experiment(
        ExperimentSpec(
            workload(),
            policy="hpa",
            name=f"HPA({int(target * 100)}% CPU)",
            stack=stack_config(seed),
            options={
                "target_cpu": target,
                "min_replicas": 3,
                "max_replicas": 20,  # one node-sized worker pod per node
            },
        )
    )


def run_hta(seed: int = 0) -> ExperimentResult:
    return run_experiment(
        ExperimentSpec(workload(), policy="hta", name="HTA", stack=stack_config(seed))
    )


def run(seed: int = 0) -> Dict[str, ExperimentResult]:
    return {
        "HPA(20% CPU)": run_hpa(0.20, seed),
        "HPA(50% CPU)": run_hpa(0.50, seed),
        "HTA": run_hta(seed),
    }


def report(results: Dict[str, ExperimentResult]) -> str:
    sections = []
    # (a) stage structure
    counts = dict(zip(("align1", "reduce", "align2"), STAGES))
    sections.append(
        "Fig 10a: stage task counts  "
        + "  ".join(f"{k}={v}" for k, v in counts.items())
    )
    # (b) supply vs demand per policy
    for name, result in results.items():
        t0, t1 = result.accountant.window()
        sections.append(
            ascii_chart(
                {
                    "supply": result.series("supply"),
                    "demand": result.series("demand"),
                    "in-use": result.series("in_use"),
                },
                t0,
                t1,
                title=f"Fig 10b ({name}): resource supply and demand (cores)",
            )
        )
    # (c) summary table
    sections.append(
        format_summary_table(
            {name: r.accounting for name, r in results.items()},
            title="Fig 10c: Blast workflow performance summary",
        )
    )
    factors20 = comparison_factors(results["HTA"].accounting, results["HPA(20% CPU)"].accounting)
    factors50 = comparison_factors(results["HTA"].accounting, results["HPA(50% CPU)"].accounting)
    rows = [
        ("HPA-20 runtime (s)", PAPER["runtime_hpa20_s"], results["HPA(20% CPU)"].makespan_s),
        ("HPA-50 runtime (s)", PAPER["runtime_hpa50_s"], results["HPA(50% CPU)"].makespan_s),
        ("HTA runtime (s)", PAPER["runtime_hta_s"], results["HTA"].makespan_s),
        ("HPA-20 waste (core*s)", PAPER["waste_hpa20"], results["HPA(20% CPU)"].accounting.accumulated_waste_core_s),
        ("HPA-50 waste (core*s)", PAPER["waste_hpa50"], results["HPA(50% CPU)"].accounting.accumulated_waste_core_s),
        ("HTA waste (core*s)", PAPER["waste_hta"], results["HTA"].accounting.accumulated_waste_core_s),
        ("HPA-20 shortage (core*s)", PAPER["shortage_hpa20"], results["HPA(20% CPU)"].accounting.accumulated_shortage_core_s),
        ("HPA-50 shortage (core*s)", PAPER["shortage_hpa50"], results["HPA(50% CPU)"].accounting.accumulated_shortage_core_s),
        ("HTA shortage (core*s)", PAPER["shortage_hta"], results["HTA"].accounting.accumulated_shortage_core_s),
        ("waste reduction vs HPA-20 (x)", PAPER["waste_reduction_vs_hpa20"], factors20["waste_reduction"]),
        ("waste reduction vs HPA-50 (x)", PAPER["waste_reduction_vs_hpa50"], factors50["waste_reduction"]),
    ]
    sections.append(paper_vs_measured(rows, title="Fig 10: paper vs measured"))
    sections.append(
        f"HTA runtime increase: {factors20['runtime_increase']:+.1%} vs HPA-20, "
        f"{factors50['runtime_increase']:+.1%} vs HPA-50 "
        f"(paper: +12.5% / +16.6%)"
    )
    return "\n\n".join(sections)


def main(seed: int = 0) -> str:
    out = report(run(seed))
    print(out)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
