"""Soak — seeded chaos schedules with invariant checking at quiescence.

Beyond the paper: every other experiment injects one curated fault
profile. The soak throws a *generated* schedule — every chaos primitive
the simulator knows, in seeded random order — at a spot-aware HTA stack,
drives the workload to quiescence, and then audits the final state with
the :mod:`repro.soak.invariants` checkers: task conservation, no worker
leaks, monotonic API resource versions, metrics/trace consistency, and
the quiescence itself.

A clean run prints one ``OK`` line per seed. A violation prints the
failing seed, which is a complete reproduction recipe::

    python -m repro.experiments soak --seed 41 --smoke

``--runs N`` sweeps seeds ``seed .. seed+N-1``; the process exits
nonzero on the first violating seed (CI runs ``soak --smoke --runs 3``
with and without ``--migrate``). ``--migrate`` opts the schedule into
the checkpoint/restore ``migrate`` primitive and arms the migration
machinery on every other strike (preemptions drain via checkpoint).
``--integrity`` opts into value faults: the ``corrupt`` and
``black_hole`` primitives join the pool, seeded result/checkpoint
corruption arms, verification polices deliveries, and the health
ledger quarantines sick workers. ``--shard-crash`` runs the dispatch
plane as four masters behind a foreman with a failover coordinator,
and the ``shard_crash`` primitive (transient *or permanent* loss of
one shard) joins the pool — the failover-protocol invariant then
audits the merged journal for double-resumed or stranded work.
"""

from __future__ import annotations

from repro.soak.harness import SoakConfig, first_violation, run_soak_batch


def main(
    seed: int = 0,
    *,
    smoke: bool = False,
    runs: int = 1,
    migrate: bool = False,
    integrity: bool = False,
    shard_crash: bool = False,
) -> str:
    if runs < 1:
        raise ValueError("runs must be >= 1")
    config = SoakConfig(
        migrate=migrate,
        integrity=integrity,
        shards=4 if shard_crash else 1,
        shard_crash=shard_crash,
    )
    if smoke:
        config = config.smoke()
    seeds = list(range(seed, seed + runs))
    reports = run_soak_batch(seeds, config)
    out = "\n".join(report.describe() for report in reports)
    print(out)
    failing = first_violation(reports)
    if failing is not None:
        raise SystemExit(
            f"soak failed: seed {failing.seed} violated "
            f"{len(failing.violations)} invariant(s); reproduce with "
            f"`python -m repro.experiments soak --seed {failing.seed}"
            f"{' --smoke' if smoke else ''}"
            f"{' --shard-crash' if shard_crash else ''}`"
        )
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
