"""Single-entry experiment API: build a stack, run a policy, collect.

One front door — :func:`run_experiment` — takes an
:class:`ExperimentSpec` naming the autoscaling policy under study and
runs it on the shared substrate (cluster + network + Work Queue master),
so differences in the result are attributable to the policy alone. The
policies mirror the resource-provisioning modes the paper compares:

* ``"hta"`` — the full HTA pipeline (fig 8): workflow manager → HTA
  operator (warm-up gating) → Work Queue master; HTA creates/drains
  worker pods directly (pass ``options={"hta_config": HtaConfig(...,
  forecast_arrivals=True)}`` for the forecast-fed hybrid mode);
* ``"predictive"`` — the forecast-driven policy: a
  :class:`~repro.forecast.scaler.PredictiveScaler` sizes the pool for
  demand predicted one init cycle ahead, draining (never deleting) on
  the way down;
* ``"hpa"`` — the baseline: worker pods held by a replica controller
  scaled by the Horizontal Pod Autoscaler on CPU;
* ``"queue"`` — the KEDA-style queue-length baseline;
* ``"static"`` — a fixed worker pool (fig 4's sizing study and fig 2's
  "ideal" reference).

New policies plug in through :func:`register_policy`. The historical
``run_hta_experiment``-style entry points survive as deprecated thin
wrappers over :func:`run_experiment`.

Telemetry (the :mod:`repro.telemetry` tracer + metrics registry) is
wired through every layer when the spec carries an enabled
:class:`~repro.telemetry.session.TelemetryConfig`; disabled runs pay one
early-returning call per instrumented site.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field, replace
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

from repro.cluster.chaos import ChaosInjector
from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.hpa import HorizontalPodAutoscaler, HpaConfig
from repro.cluster.images import ContainerImage
from repro.cluster.pod import PodSpec
from repro.cluster.replicaset import WorkerReplicaSet
from repro.cluster.resources import ResourceVector
from repro.hta.estimator import EstimatorConfig
from repro.hta.inittime import FixedInitTime, InitTimeTracker
from repro.hta.operator import HtaConfig, HtaOperator
from repro.hta.preemption import PreemptionResponder
from repro.hta.provisioner import ProvisionerFaultConfig, WorkerProvisioner
from repro.makeflow.dag import WorkflowGraph
from repro.makeflow.manager import WorkflowManager
from repro.metrics.accounting import AccountingSummary, ResourceAccountant
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.tracing import MetricRecorder
from repro.telemetry.session import (
    TelemetryConfig,
    TelemetrySession,
    default_sink,
    default_telemetry,
)
from repro.wq.estimator import (
    AllocationEstimator,
    ConservativeEstimator,
    DeclaredResourceEstimator,
    MonitorEstimator,
)
from repro.wq.faults import (
    BlackHoleProfile,
    CategoryFaultProfile,
    RetryPolicy,
    SpeculationConfig,
    TaskFaultModel,
    ValueFaultModel,
    ValueFaultProfile,
)
from repro.wq.health import HealthConfig
from repro.wq.link import Link
from repro.wq.dispatch import DispatchConfig
from repro.wq.master import Master
from repro.wq.migration import MigrationConfig, MigrationCoordinator
from repro.wq.monitor import ResourceMonitor
from repro.wq.runtime import WorkerPodRuntime
from repro.wq.sharding import (
    FailoverConfig,
    FailoverCoordinator,
    Foreman,
    TaskPartitioner,
)
from repro.wq.task import Task
from repro.wq.worker import WorkerState

Workload = Union[WorkflowGraph, Sequence[Task]]

#: The worker container image (the paper pulls from a private registry).
DEFAULT_WORKER_IMAGE = ContainerImage("wq-worker", 500.0)


def ensure_graph(workload: Workload) -> WorkflowGraph:
    """Accept either a DAG or a bag of independent tasks."""
    if isinstance(workload, WorkflowGraph):
        return workload
    return WorkflowGraph(list(workload))


@dataclass(frozen=True, slots=True)
class FaultProfile:
    """Fault injection for one run — every layer at once, all seeded.

    Zero probabilities / None intervals disable the corresponding fault;
    the default instance injects nothing, so ``StackConfig(faults=None)``
    and ``StackConfig(faults=FaultProfile())`` behave identically except
    for the fault plumbing being armed.
    """

    # -- task-level faults (per execution attempt, per-category stream)
    task_failure_prob: float = 0.0
    task_exhaustion_prob: float = 0.0
    exhaustion_factor: float = 1.5
    retry_backoff_base_s: float = 2.0
    retry_backoff_max_s: float = 120.0
    max_retries: Optional[int] = None
    #: Straggler speculation (None disables it).
    speculation: Optional[SpeculationConfig] = field(
        default_factory=SpeculationConfig
    )
    # -- value faults (wrong data, not no data) and the integrity layer
    #: Probability a completed attempt delivers a corrupted payload.
    result_corruption_prob: float = 0.0
    #: Probability a shipped migration checkpoint arrives corrupted.
    checkpoint_corruption_prob: float = 0.0
    #: Content-digest verification at the master. On by default (and
    #: free when nothing corrupts); the attribution-off experiment arm
    #: turns it off to measure what corruption costs unchecked.
    verify: bool = True
    #: Arm the per-worker health ledger (EWMA scoring, black-hole
    #: quarantine, poison-task blame attribution); None leaves it off.
    health: Optional[HealthConfig] = None
    #: One-shot black-hole storm: at this simulated time, turn
    #: ``black_hole_count`` random workers into black holes.
    black_hole_at_s: Optional[float] = None
    black_hole_count: int = 1
    black_hole_mode: str = "fast-fail"
    black_hole_latency_s: float = 1.0
    # -- infrastructure chaos
    node_crash_interval_s: Optional[float] = None
    pod_eviction_interval_s: Optional[float] = None
    #: Pod-eviction selector (None = any non-terminal pod).
    pod_eviction_selector: Optional[dict] = None
    #: One-shot preemption wave: reclaim ``preemption_wave_size`` spot
    #: nodes at this simulated time (requires a preemptible pool).
    preemption_wave_at_s: Optional[float] = None
    preemption_wave_size: int = 1
    #: Recurring worker⇄master network partitions (None = never).
    partition_interval_s: Optional[float] = None
    partition_duration_s: float = 45.0
    #: Escape hatch for bespoke chaos (the soak harness): called with
    #: the built stack after the declarative faults are armed.
    chaos_script: Optional[Callable[["_Stack"], None]] = None
    # -- provisioning faults
    boot_failure_prob: float = 0.0
    boot_failure_duration_s: Optional[float] = None
    pull_stall_factor: float = 1.0
    pull_stall_duration_s: Optional[float] = None
    #: Defensive provisioning for the drain-based policies (HTA /
    #: predictive); None keeps the provisioner undefended.
    provisioner: Optional[ProvisionerFaultConfig] = field(
        default_factory=ProvisionerFaultConfig
    )
    #: Robust (median) init-time estimation window; 0 keeps the paper's
    #: latest-sample estimate.
    robust_init_window: int = 5
    # -- control-plane faults
    #: Kill the master at this simulated time (None = never).
    master_crash_at_s: Optional[float] = None
    #: How long the crashed master stays down before restarting.
    master_restart_delay_s: float = 60.0
    #: Replay the transaction journal on restart; False models a cold
    #: restart that forgets everything but the submitted task set.
    journal_replay: bool = True
    #: API-server outage window (None = never).
    api_outage_at_s: Optional[float] = None
    api_outage_duration_s: float = 300.0
    #: Watch-stream disconnect window — events silently dropped.
    watch_drop_at_s: Optional[float] = None
    watch_drop_duration_s: float = 300.0
    watch_drop_kind: str = "Pod"
    #: Informer relist-and-resync cadence (None disables resync; the
    #: informer then only heals via live watch events).
    informer_resync_period_s: Optional[float] = 60.0


@dataclass(frozen=True, slots=True)
class StackConfig:
    """The substrate shared by every policy."""

    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    link_capacity_mbps: float = 500.0
    per_stream_overhead: float = 0.0
    image: ContainerImage = DEFAULT_WORKER_IMAGE
    #: Worker pod resource request; None = the node's full allocatable.
    worker_request: Optional[ResourceVector] = None
    seed: int = 0
    #: Hard wall on simulated time (a run exceeding it raises).
    max_sim_time_s: float = 100_000.0
    #: Sampling period of the accountant (1 s = the paper's resolution).
    accounting_period_s: float = 1.0
    #: Fault injection; None runs the substrate fault-free.
    faults: Optional[FaultProfile] = None

    def resolved_worker_request(self) -> ResourceVector:
        if self.worker_request is not None:
            return self.worker_request
        return self.cluster.machine_type.allocatable


class _Stack:
    """Everything instantiated for one run. A context manager: ``close``
    releases the watch subscriptions and control loops so back-to-back
    runs in one process never leak handlers."""

    def __init__(
        self,
        config: StackConfig,
        estimator_kind: str = "monitor",
        *,
        telemetry: Optional[TelemetryConfig] = None,
    ):
        self.config = config
        self.engine = Engine()
        self.rng = RngRegistry(config.seed)
        self.recorder = MetricRecorder(self.engine)
        #: One tracer + metrics registry per run, bound to this engine's
        #: clock. Disabled (the default) hands out NULL_TRACER.
        self.telemetry = TelemetrySession(lambda: self.engine.now, telemetry)
        self.tracer = self.telemetry.tracer
        self.metrics = self.telemetry.metrics
        self.cluster = Cluster(
            self.engine,
            self.rng,
            config.cluster,
            self.recorder,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        self.link = Link(
            self.engine,
            config.link_capacity_mbps,
            per_stream_overhead=config.per_stream_overhead,
        )
        self.monitor = ResourceMonitor()
        faults = config.faults
        fault_model: Optional[TaskFaultModel] = None
        retry_policy: Optional[RetryPolicy] = None
        value_faults: Optional[ValueFaultModel] = None
        if faults is not None:
            fault_model = TaskFaultModel(
                self.rng,
                default=CategoryFaultProfile(
                    failure_prob=faults.task_failure_prob,
                    exhaustion_prob=faults.task_exhaustion_prob,
                    exhaustion_factor=faults.exhaustion_factor,
                ),
            )
            retry_policy = RetryPolicy(
                base_backoff_s=faults.retry_backoff_base_s,
                max_backoff_s=faults.retry_backoff_max_s,
            )
            if (
                faults.result_corruption_prob > 0
                or faults.checkpoint_corruption_prob > 0
            ):
                value_faults = ValueFaultModel(
                    self.rng,
                    default=ValueFaultProfile(
                        result_corruption_prob=faults.result_corruption_prob,
                        checkpoint_corruption_prob=(
                            faults.checkpoint_corruption_prob
                        ),
                    ),
                )
        self.dispatch_config = DispatchConfig(
            fault_model=fault_model,
            retry_policy=retry_policy,
            speculation=faults.speculation if faults is not None else None,
            replay_journal=faults.journal_replay if faults is not None else True,
            value_faults=value_faults,
            verify=faults.verify if faults is not None else True,
            health=faults.health if faults is not None else None,
        )
        self.master = Master(
            self.engine,
            self.link,
            config=self.dispatch_config,
            estimator=self._make_estimator(estimator_kind),
            monitor=self.monitor,
            tracer=self.tracer,
            # The wq histograms cost one observe per dispatch/completion;
            # only armed when the run actually records telemetry.
            metrics=self.metrics if self.telemetry.enabled else None,
        )
        if faults is not None and faults.max_retries is not None:
            self.master.max_retries = faults.max_retries
        self.runtime = WorkerPodRuntime(
            self.engine,
            self.cluster.api,
            self.cluster.kubelets,
            self.master,
            # Under control-plane faults the runtime must relist like any
            # informer: a pod whose Running event died in an API outage
            # would otherwise never get a worker (and leak forever).
            resync_period_s=(
                faults.informer_resync_period_s if faults is not None else None
            ),
        )
        self.worker_request = config.resolved_worker_request()
        self.chaos: Optional[ChaosInjector] = None
        #: Set by the sharded policy when ``failover=True`` — the shard
        #: failover coordinator, exposed for result collection.
        self.failover: Optional[FailoverCoordinator] = None
        if faults is not None:
            self.chaos = ChaosInjector(
                self.engine,
                self.cluster.api,
                self.rng,
                cloud=self.cluster.cloud,
                registry=self.cluster.registry,
                tracer=self.tracer,
                metrics=self.metrics,
            )
            if faults.node_crash_interval_s is not None:
                self.chaos.schedule_node_failures(faults.node_crash_interval_s)
            if faults.pod_eviction_interval_s is not None:
                self.chaos.schedule_pod_evictions(
                    faults.pod_eviction_interval_s,
                    selector=faults.pod_eviction_selector,
                )
            if faults.boot_failure_prob > 0:
                self.chaos.begin_boot_failures(
                    faults.boot_failure_prob,
                    duration_s=faults.boot_failure_duration_s,
                )
            if faults.pull_stall_factor > 1.0:
                self.chaos.begin_image_pull_stall(
                    faults.pull_stall_factor,
                    duration_s=faults.pull_stall_duration_s,
                )
            if faults.master_crash_at_s is not None:
                self.chaos.schedule_master_crash(
                    self.master,
                    at_s=faults.master_crash_at_s,
                    restart_delay_s=faults.master_restart_delay_s,
                )
            if faults.api_outage_at_s is not None:
                self.chaos.schedule_api_outage(
                    at_s=faults.api_outage_at_s,
                    duration_s=faults.api_outage_duration_s,
                )
            if faults.watch_drop_at_s is not None:
                self.chaos.schedule_watch_drop(
                    at_s=faults.watch_drop_at_s,
                    duration_s=faults.watch_drop_duration_s,
                    kind=faults.watch_drop_kind,
                )
            if faults.preemption_wave_at_s is not None:
                self.chaos.schedule_preemption_wave(
                    at_s=faults.preemption_wave_at_s,
                    count=faults.preemption_wave_size,
                )
            if faults.partition_interval_s is not None:
                self.chaos.schedule_partitions(
                    self.master,
                    faults.partition_interval_s,
                    duration_s=faults.partition_duration_s,
                )
            if faults.black_hole_at_s is not None:
                self.chaos.schedule_black_holes(
                    self.master,
                    at_s=faults.black_hole_at_s,
                    count=faults.black_hole_count,
                    profile=BlackHoleProfile(
                        mode=faults.black_hole_mode,
                        latency_s=faults.black_hole_latency_s,
                    ),
                )
            if faults.chaos_script is not None:
                faults.chaos_script(self)

    def _make_estimator(self, kind: str) -> AllocationEstimator:
        if kind == "monitor":
            return MonitorEstimator(self.monitor)
        if kind == "declared":
            return DeclaredResourceEstimator()
        if kind == "conservative":
            return ConservativeEstimator()
        raise ValueError(f"unknown estimator kind {kind!r}")

    # ----------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release everything holding a subscription or a periodic loop."""
        self.runtime.close()
        self.master.close()
        if self.chaos is not None:
            self.chaos.stop()
        self.cluster.stop()

    def __enter__(self) -> "_Stack":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


@dataclass
class ExperimentResult:
    """Everything an experiment harness needs to print its figure/table."""

    name: str
    makespan_s: float
    accounting: AccountingSummary
    accountant: ResourceAccountant
    recorder: MetricRecorder
    tasks_total: int
    tasks_completed: int
    tasks_requeued: int
    nodes_peak: int
    workers_started: int
    extras: Dict[str, float] = field(default_factory=dict)
    #: The run's tracer + metrics registry (None for results built by
    #: code paths predating telemetry).
    telemetry: Optional[TelemetrySession] = None

    def summary(self) -> str:
        a = self.accounting
        return (
            f"{self.name}: runtime {self.makespan_s:.0f}s, "
            f"waste {a.accumulated_waste_core_s:.0f} core*s, "
            f"shortage {a.accumulated_shortage_core_s:.0f} core*s, "
            f"utilization {a.utilization:.1%}, "
            f"tasks {self.tasks_completed}/{self.tasks_total}"
        )

    def series(self, name: str):
        return self.accountant.series(name)

    @property
    def trace_events(self):
        """The run's trace events ([] when tracing was disabled)."""
        if self.telemetry is None:
            return []
        return self.telemetry.tracer.events


class ExperimentTimeout(RuntimeError):
    """The workload did not finish within ``max_sim_time_s``."""


class WorkflowFailed(RuntimeError):
    """A task was permanently abandoned; the DAG can never complete."""


def _drive(stack: _Stack, manager: WorkflowManager, accountant: ResourceAccountant) -> None:
    """Advance the simulation until the workflow completes."""
    engine = stack.engine
    limit = stack.config.max_sim_time_s
    chunk = 60.0
    accountant.start()
    manager.start()
    while not manager.done:
        if manager.failed:
            raise WorkflowFailed(
                f"task(s) {sorted(manager.failed_task_ids)} permanently "
                f"abandoned at t={engine.now:.0f}s"
            )
        if engine.now >= limit:
            raise ExperimentTimeout(
                f"workflow incomplete at t={engine.now:.0f}s "
                f"({manager.progress():.0%} done)"
            )
        if engine.peek() is None:
            raise ExperimentTimeout(
                f"event queue drained at t={engine.now:.0f}s with workflow "
                f"{manager.progress():.0%} done — a control loop stopped early"
            )
        engine.run(until=min(limit, engine.now + chunk))
    accountant.stop()


def _collect(
    name: str,
    stack: _Stack,
    manager: WorkflowManager,
    accountant: ResourceAccountant,
    graph: WorkflowGraph,
    **extras: float,
) -> ExperimentResult:
    t0, t1 = accountant.window()
    master = stack.master
    fault_extras: Dict[str, float] = {
        "goodput_core_s": master.goodput_core_s(),
        "wasted_core_s": master.wasted_core_s,
        "tasks_failed": float(master.tasks_failed),
        "tasks_exhausted": float(master.tasks_exhausted),
        "escalations": float(master.escalations),
        "tasks_speculated": float(master.tasks_speculated),
        "speculation_wins": float(master.speculation_wins),
        "tasks_abandoned": float(len(master.abandoned)),
    }
    if stack.chaos is not None:
        fault_extras["chaos_nodes_killed"] = float(stack.chaos.nodes_killed)
        fault_extras["chaos_pods_killed"] = float(stack.chaos.pods_killed)
        fault_extras["boot_failures"] = float(stack.cluster.cloud.boot_failures)
        fault_extras["chaos_preemptions"] = float(stack.chaos.preemptions_total)
        fault_extras["chaos_partitions"] = float(stack.chaos.partition_windows)
        fault_extras["preemptions"] = float(stack.cluster.cloud.preemptions)
        fault_extras["spot_stockouts"] = float(stack.cluster.cloud.spot_stockouts)
        fault_extras["partitions_detected"] = float(master.partitions_detected)
        fault_extras["workers_declared_lost"] = float(
            master.workers_declared_lost
        )
        fault_extras["tasks_evacuated"] = float(master.tasks_evacuated)
    if master.crashes > 0 or stack.chaos is not None:
        fault_extras["master_crashes"] = float(master.crashes)
        fault_extras["tasks_rerun"] = float(master.tasks_rerun)
        fault_extras["duplicate_results"] = float(master.duplicate_results)
        fault_extras["journal_records"] = float(len(master.journal))
        fault_extras["api_outages"] = float(stack.cluster.api.api_outages)
        fault_extras["dropped_watch_events"] = float(
            stack.cluster.api.dropped_events
        )
        if master.last_crash_at is not None:
            recovered = (
                master.first_completion_after_recovery_at
                if master.first_completion_after_recovery_at is not None
                else master.last_recovered_at
            )
            if recovered is not None:
                fault_extras["recovery_latency_s"] = recovered - master.last_crash_at
    integrity_armed = (
        master.value_faults is not None
        or master.health is not None
        or not master.verify
        or (stack.chaos is not None and stack.chaos.black_holes_injected > 0)
    )
    if integrity_armed:
        fault_extras["verify_fails"] = float(master.verify_fails)
        fault_extras["checkpoint_verify_fails"] = float(
            master.checkpoint_verify_fails
        )
        fault_extras["corrupted_completes"] = float(master.corrupted_completes)
        fault_extras["clean_goodput_core_s"] = master.clean_goodput_core_s()
        fault_extras["quarantines"] = float(master.quarantines)
        fault_extras["unquarantines"] = float(master.unquarantines)
        fault_extras["tasks_poisoned"] = float(master.tasks_poisoned)
        fault_extras["quarantined_rejected"] = float(master.quarantined_rejected)
        if stack.chaos is not None:
            fault_extras["corruptions_injected"] = float(
                stack.chaos.corruptions_injected
            )
            fault_extras["black_holes_injected"] = float(
                stack.chaos.black_holes_injected
            )
    fault_extras.update(extras)
    return ExperimentResult(
        name=name,
        makespan_s=manager.makespan or 0.0,
        accounting=accountant.summarize(),
        accountant=accountant,
        recorder=stack.recorder,
        tasks_total=len(graph),
        tasks_completed=len(stack.master.done),
        tasks_requeued=stack.master.tasks_requeued,
        nodes_peak=int(accountant.series("nodes").maximum(t0, t1)),
        workers_started=stack.runtime.workers_started,
        extras=fault_extras,
        telemetry=stack.telemetry,
    )


def _make_accountant(
    stack: _Stack, *, shortage_extra=None, extra_gauges=None
) -> ResourceAccountant:
    master = stack.master

    def shortage() -> float:
        value = master.cores_waiting()
        if shortage_extra is not None:
            value += shortage_extra()
        return value

    acc = ResourceAccountant(
        stack.engine,
        supply=master.supplied_cores,
        in_use=master.cores_in_use,
        shortage=shortage,
        nodes=lambda: float(stack.cluster.node_count()),
        period=stack.config.accounting_period_s,
    )
    acc.sampler.add_gauge(
        "workers_connected", lambda: float(master.stats().workers_connected)
    )
    acc.sampler.add_gauge("workers_idle", lambda: float(master.stats().workers_idle))
    # Preemptible subset of the node count — CostModel.cost_of_mixed
    # bills it at the spot rate (flat zero without a spot pool).
    acc.sampler.add_gauge(
        "nodes_spot", lambda: float(stack.cluster.spot_node_count())
    )
    if extra_gauges:
        for gname, fn in extra_gauges.items():
            acc.sampler.add_gauge(gname, fn)
    return acc


# =================================================== the experiment API
@dataclass(frozen=True, slots=True)
class ExperimentSpec:
    """One experiment run, fully described.

    ``policy`` names an entry in the policy registry (``hta``,
    ``predictive``, ``hpa``, ``queue``, ``static``, or anything added
    via :func:`register_policy`); ``options`` carries the policy's own
    knobs (e.g. ``{"target_cpu": 0.8}`` for HPA, ``{"n_workers": 10}``
    for static). ``telemetry=None`` defers to the process-wide default
    installed by the CLI's ``--trace-out`` (and to "disabled" when
    there is none).
    """

    workload: Workload
    policy: str = "hta"
    name: Optional[str] = None
    stack: Optional[StackConfig] = None
    seed: Optional[int] = None
    telemetry: Optional[TelemetryConfig] = None
    options: Mapping[str, object] = field(default_factory=dict)


@dataclass
class _PolicyHarness:
    """What a policy builder hands back to :func:`run_experiment`.

    The runner owns the generic sequence (stack → manager → accountant →
    drive → collect); the harness injects the policy-specific pieces at
    the same points the historical per-policy functions did, so a fixed
    seed reproduces their runs exactly.
    """

    #: Default result name (used when the spec does not set one).
    name: str
    #: What the WorkflowManager submits ready jobs to (operator/master).
    submitter: object
    #: Called with the freshly built manager (e.g. done-signal wiring).
    on_manager: Optional[Callable[[WorkflowManager], None]] = None
    #: Extra cores counted as shortage (HTA's warm-up-held tasks).
    shortage_extra: Optional[Callable[[], float]] = None
    #: Extra accountant gauges.
    gauges: Dict[str, Callable[[], float]] = field(default_factory=dict)
    #: Called right before the drive loop (e.g. ``operator.start``).
    start: Optional[Callable[[], None]] = None
    #: Called right after the workflow completes (scaler shutdowns).
    finish: Optional[Callable[[], None]] = None
    #: Policy-specific extras for the result (receives the accountant).
    extras: Optional[Callable[[ResourceAccountant], Dict[str, float]]] = None


@dataclass(frozen=True, slots=True)
class PolicyDefinition:
    """A registry entry: how to validate, size, and build one policy."""

    key: str
    build: Callable[["_Stack", StackConfig, WorkflowGraph, Dict], _PolicyHarness]
    #: Dispatch-estimator kind the master should use (resolved from the
    #: options *before* the stack is built).
    estimator_kind: Callable[[Dict], str] = lambda options: "monitor"
    #: Early option validation (raises before anything is constructed).
    validate: Optional[Callable[[Dict], None]] = None


POLICIES: Dict[str, PolicyDefinition] = {}


def register_policy(definition: PolicyDefinition) -> PolicyDefinition:
    """Add (or replace) a policy in the registry; returns it unchanged."""
    POLICIES[definition.key] = definition
    return definition


def _take(options: Dict, key: str, default=None):
    value = options.pop(key, None)
    return default if value is None else value


def _reject_unknown(policy: str, options: Dict) -> None:
    if options:
        raise ValueError(
            f"unknown option(s) for policy {policy!r}: {sorted(options)}"
        )


def run_experiment(spec: ExperimentSpec) -> ExperimentResult:
    """Run one experiment described by ``spec``; the single entry point
    behind every figure harness, example, and deprecated wrapper."""
    try:
        policy = POLICIES[spec.policy]
    except KeyError:
        raise ValueError(
            f"unknown policy {spec.policy!r}; known: {sorted(POLICIES)}"
        ) from None
    options: Dict = dict(spec.options)
    if policy.validate is not None:
        policy.validate(options)
    cfg = spec.stack if spec.stack is not None else StackConfig()
    if spec.seed is not None:
        cfg = replace(cfg, seed=spec.seed)
    telemetry = (
        spec.telemetry if spec.telemetry is not None else default_telemetry()
    )
    with _Stack(
        cfg, estimator_kind=policy.estimator_kind(options), telemetry=telemetry
    ) as stack:
        graph = ensure_graph(spec.workload)
        harness = policy.build(stack, cfg, graph, options)
        _reject_unknown(spec.policy, options)
        name = spec.name if spec.name is not None else harness.name
        manager = WorkflowManager(
            stack.engine, graph, harness.submitter, recorder=stack.recorder
        )
        if harness.on_manager is not None:
            harness.on_manager(manager)
        accountant = _make_accountant(
            stack,
            shortage_extra=harness.shortage_extra,
            extra_gauges=harness.gauges or None,
        )
        if harness.start is not None:
            harness.start()
        _drive(stack, manager, accountant)
        if harness.finish is not None:
            harness.finish()
        extras = harness.extras(accountant) if harness.extras is not None else {}
        result = _collect(name, stack, manager, accountant, graph, **extras)
    stack.telemetry.export(result.name)
    sink = default_sink()
    if sink is not None and stack.telemetry.enabled:
        sink.record(result.name, stack.telemetry.tracer.events)
    return result


# --------------------------------------------------------------------- HTA
def _hta_tracker(stack: _Stack, cfg: StackConfig, fixed_init_time_s, *, resync: bool):
    """The init-time source HTA-style policies plan with."""
    if fixed_init_time_s is not None:
        return FixedInitTime(fixed_init_time_s)
    robust_window = cfg.faults.robust_init_window if cfg.faults is not None else 0
    resync_period = (
        cfg.faults.informer_resync_period_s
        if resync and cfg.faults is not None
        else None
    )
    return InitTimeTracker(
        stack.cluster.api,
        prior_s=160.0,
        selector_label="wq-worker",
        robust=robust_window > 0,
        window=max(robust_window, 1),
        resync_period_s=resync_period,
    )


def _build_hta(
    stack: _Stack, cfg: StackConfig, graph: WorkflowGraph, options: Dict
) -> _PolicyHarness:
    hta_config = _take(options, "hta_config")
    fixed_init_time_s = _take(options, "fixed_init_time_s")
    #: Optional spot split for the worker pool; ``spot_aware`` adds the
    #: preemption responder + survival-discounted planning on top (off =
    #: "vanilla" HTA that buys spot but ignores reclamation).
    spot_policy = _take(options, "spot_policy")
    spot_aware = bool(_take(options, "spot_aware", False))
    #: Optional checkpoint/restore migration: a MigrationConfig (or a
    #: bare policy string like "batched-fluid") builds a coordinator the
    #: preemption responder drains doomed spot workers through instead
    #: of requeueing them from scratch. Requires ``spot_aware``.
    migration_opt = _take(options, "migration")
    if hta_config is None:
        hta_config = HtaConfig(
            initial_workers=cfg.cluster.min_nodes,
            max_workers=cfg.cluster.max_nodes,
        )
    provisioner = WorkerProvisioner(
        stack.engine,
        stack.cluster.api,
        stack.runtime,
        image=cfg.image,
        worker_request=stack.worker_request,
        fault_config=cfg.faults.provisioner if cfg.faults is not None else None,
        spot_policy=spot_policy,
    )
    migration = None
    if migration_opt is not None:
        if not spot_aware:
            raise ValueError("migration= requires spot_aware=True")
        mig_config = (
            MigrationConfig(policy=migration_opt)
            if isinstance(migration_opt, str)
            else migration_opt
        )
        migration = MigrationCoordinator(
            stack.engine,
            stack.master,
            mig_config,
            tracer=stack.tracer,
            metrics=stack.metrics,
        )
    responder = None
    if spot_aware:
        responder = PreemptionResponder(
            stack.engine,
            stack.cluster.api,
            stack.master,
            stack.runtime,
            provisioner,
            tracer=stack.tracer,
            migration=migration,
        )
    tracker = _hta_tracker(stack, cfg, fixed_init_time_s, resync=True)
    operator = HtaOperator(
        stack.engine,
        stack.master,
        provisioner,
        tracker,
        hta_config,
        stack.recorder,
        tracer=stack.tracer,
        preemption=responder,
    )

    def hta_extras(_acc) -> Dict[str, float]:
        extras = dict(
            init_time_samples=float(tracker.sample_count),
            plans=float(len(operator.plans)),
            pods_created=float(provisioner.pods_created),
            drains=float(provisioner.drains_requested),
            degraded_cycles=float(operator.degraded_cycles),
            scale_downs_frozen=float(operator.scale_downs_frozen),
            informer_resyncs=float(
                getattr(getattr(tracker, "informer", None), "resyncs", 0)
            ),
            creations_deferred=float(provisioner.creations_deferred),
        )
        if spot_policy is not None:
            extras["spot_pods_created"] = float(provisioner.spot_pods_created)
        if responder is not None:
            extras["workers_evacuated"] = float(responder.workers_evacuated)
            extras["evac_runs_requeued"] = float(responder.runs_requeued)
            extras["spot_survival_rate"] = responder.tracker.survival_rate()
        if migration is not None:
            extras["migrations_requested"] = float(responder.migrations_requested)
            extras["migrations_started"] = float(migration.migrations_started)
            extras["migrations_completed"] = float(migration.migrations_completed)
            extras["migrations_accepted"] = float(stack.master.migrations_accepted)
            extras["migrations_stale"] = float(stack.master.migrations_stale)
            extras["migration_fallbacks"] = float(migration.migration_fallbacks)
        return extras

    return _PolicyHarness(
        name="HTA",
        submitter=operator,
        on_manager=lambda manager: manager.done_signal.add_waiter(
            lambda _mgr: operator.notify_no_more_jobs()
        ),
        shortage_extra=operator.held_cores,
        gauges={
            "hta_pending_pods": lambda: float(len(provisioner.pending_pods())),
        },
        start=operator.start,
        extras=hta_extras,
    )


register_policy(PolicyDefinition(key="hta", build=_build_hta))


# ------------------------------------------------------------------ sharded
def _validate_sharded(options: Dict) -> None:
    shards = options.get("shards", 4)
    if isinstance(shards, bool) or not isinstance(shards, int) or shards < 1:
        raise ValueError("shards must be a positive integer")
    mode = options.get("partition_mode", "hash")
    if mode not in ("hash", "range"):
        raise ValueError(f"unknown partition mode {mode!r}")
    crash_at = options.get("shard_crash_at_s")
    if crash_at is not None:
        if not isinstance(crash_at, (int, float)) or crash_at < 0:
            raise ValueError("shard_crash_at_s must be a non-negative number")
        if shards < 2:
            raise ValueError("shard_crash_at_s needs shards >= 2")
    index = options.get("shard_crash_index", 0)
    if isinstance(index, bool) or not isinstance(index, int) or index < 0:
        raise ValueError("shard_crash_index must be a non-negative integer")
    if isinstance(shards, int) and index >= shards:
        raise ValueError("shard_crash_index out of range")


def _build_sharded(
    stack: _Stack, cfg: StackConfig, graph: WorkflowGraph, options: Dict
) -> _PolicyHarness:
    """HTA over the sharded data plane: N dispatch masters behind a
    Foreman, partitioned by seeded hash, with HTA consuming the
    foreman's aggregate view exactly as it would one master."""
    n_shards = int(_take(options, "shards", 4))
    partition_mode = str(_take(options, "partition_mode", "hash"))
    failover = bool(_take(options, "failover", False))
    failover_grace_s = _take(options, "failover_grace_s")
    shard_crash_at_s = _take(options, "shard_crash_at_s")
    shard_crash_index = int(_take(options, "shard_crash_index", 0))
    shard_crash_restart_s = _take(options, "shard_crash_restart_s")
    shards = [stack.master]
    for i in range(1, n_shards):
        # Every shard is stamped from the same DispatchConfig and feeds
        # the same (global) monitor, so category statistics and
        # allocation estimates see the full sample stream regardless of
        # which shard completed a task.
        shard = Master(
            stack.engine,
            stack.link,
            config=stack.dispatch_config,
            estimator=stack._make_estimator("monitor"),
            monitor=stack.monitor,
            name=f"{stack.master.name}-{i}",
            tracer=stack.tracer,
            metrics=stack.metrics if stack.telemetry.enabled else None,
        )
        shards.append(shard)
    foreman = Foreman(
        stack.engine,
        shards,
        partitioner=TaskPartitioner(
            n_shards, seed=cfg.seed, mode=partition_mode
        ),
    )
    # A faults.max_retries override landed on shard 0 post-construction;
    # replicate it everywhere through the foreman's broadcast setter.
    foreman.max_retries = shards[0].max_retries
    # From here on the whole runner flow — HTA, the accountant, result
    # collection, stack teardown — sees the foreman as *the* master.
    stack.master = foreman
    stack.runtime.master_selector = foreman.master_for_pod
    coordinator: Optional[FailoverCoordinator] = None
    if failover:
        fo_cfg = (
            FailoverConfig()
            if failover_grace_s is None
            else FailoverConfig(grace_s=float(failover_grace_s))
        )
        coordinator = FailoverCoordinator(
            stack.engine,
            foreman,
            fo_cfg,
            tracer=stack.tracer,
            metrics=stack.metrics if stack.telemetry.enabled else None,
        )
        stack.failover = coordinator
    if shard_crash_at_s is not None:
        restart = (
            None if shard_crash_restart_s is None else float(shard_crash_restart_s)
        )

        def _strike() -> None:
            if stack.chaos is not None:
                stack.chaos.crash_shard(
                    foreman, shard_crash_index, restart_delay_s=restart
                )
            else:
                foreman.crash_shard(shard_crash_index, restart_delay_s=restart)

        stack.engine.call_at(float(shard_crash_at_s), _strike)
    harness = _build_hta(stack, cfg, graph, options)
    harness.name = f"HTA-sharded{n_shards}"
    if coordinator is not None:
        base_extras = harness.extras

        def sharded_extras(acc) -> Dict[str, float]:
            extras = base_extras(acc) if base_extras is not None else {}
            extras["shard_failovers"] = float(coordinator.failovers)
            extras["tasks_rehomed"] = float(coordinator.tasks_rehomed)
            extras["workers_reattached"] = float(coordinator.workers_reattached)
            return extras

        harness.extras = sharded_extras
    return harness


register_policy(
    PolicyDefinition(
        key="sharded", build=_build_sharded, validate=_validate_sharded
    )
)


# --------------------------------------------------------------- predictive
def _build_predictive(
    stack: _Stack, cfg: StackConfig, graph: WorkflowGraph, options: Dict
) -> _PolicyHarness:
    from repro.forecast.scaler import PredictiveScaler, PredictiveScalerConfig

    scaler_config = _take(options, "scaler_config")
    fixed_init_time_s = _take(options, "fixed_init_time_s")
    if scaler_config is None:
        scaler_config = PredictiveScalerConfig(
            min_workers=cfg.cluster.min_nodes,
            max_workers=cfg.cluster.max_nodes,
        )
    provisioner = WorkerProvisioner(
        stack.engine,
        stack.cluster.api,
        stack.runtime,
        image=cfg.image,
        worker_request=stack.worker_request,
        name_prefix="pred-worker",
        fault_config=cfg.faults.provisioner if cfg.faults is not None else None,
    )
    # Note: no informer resync here — the predictive scaler predates the
    # resync plumbing and its runs are calibrated without it.
    tracker = _hta_tracker(stack, cfg, fixed_init_time_s, resync=False)
    scaler = PredictiveScaler(
        stack.engine, stack.master, provisioner, tracker, scaler_config, stack.recorder
    )

    def finish() -> None:
        scaler.stop()
        provisioner.stop()

    return _PolicyHarness(
        name="Predictive",
        submitter=stack.master,
        gauges={
            "forecast_pool": lambda: float(scaler.pool_size()),
            "forecast_desired": lambda: float(scaler.last_desired),
        },
        finish=finish,
        extras=lambda _acc: dict(
            scale_events=float(scaler.scale_events),
            decisions=float(scaler.decisions),
            pods_created=float(provisioner.pods_created),
            drains=float(provisioner.drains_requested),
        ),
    )


register_policy(PolicyDefinition(key="predictive", build=_build_predictive))


# --------------------------------------------------------------------- HPA
def _worker_pod_spec(cfg: StackConfig, request: ResourceVector):
    def pod_spec(pod_name: str) -> PodSpec:
        return PodSpec(cfg.image, request, labels={"app": "wq-worker"})

    return pod_spec


def _build_hpa(
    stack: _Stack, cfg: StackConfig, graph: WorkflowGraph, options: Dict
) -> _PolicyHarness:
    target_cpu = float(_take(options, "target_cpu", 0.5))
    hpa_config = _take(options, "hpa_config")
    min_replicas = _take(options, "min_replicas")
    max_replicas = _take(options, "max_replicas")
    request = stack.worker_request
    replicaset = WorkerReplicaSet(
        stack.engine, stack.cluster.api, "wq-workers", _worker_pod_spec(cfg, request)
    )
    if hpa_config is None:
        per_node = max(1, request.copies_fitting_in(cfg.cluster.machine_type.allocatable))
        hpa_config = HpaConfig(
            target_cpu_utilization=target_cpu,
            min_replicas=(
                min_replicas if min_replicas is not None else cfg.cluster.min_nodes
            ),
            max_replicas=(
                max_replicas
                if max_replicas is not None
                else cfg.cluster.max_nodes * per_node
            ),
        )
    hpa = HorizontalPodAutoscaler(
        stack.engine, stack.cluster.metrics, replicaset, hpa_config, stack.recorder
    )

    def ideal_workers() -> float:
        """Workers needed to run every remaining task at once (fig 2)."""
        backlog = stack.master.cores_waiting() + stack.master.cores_in_use()
        per_worker = max(request.cores, 1e-9)
        return float(min(hpa_config.max_replicas, math.ceil(backlog / per_worker)))

    return _PolicyHarness(
        name=f"HPA-{int(target_cpu * 100)}%",
        submitter=stack.master,
        gauges={
            "hpa_desired": lambda: float(hpa.last_desired or 0),
            "ideal_workers": ideal_workers,
        },
        finish=hpa.stop,
        extras=lambda _acc: dict(
            scale_events=float(hpa.scale_events),
            pods_deleted=float(replicaset.pods_deleted),
        ),
    )


register_policy(PolicyDefinition(key="hpa", build=_build_hpa))


# --------------------------------------------------------------- queue scaler
def _build_queue(
    stack: _Stack, cfg: StackConfig, graph: WorkflowGraph, options: Dict
) -> _PolicyHarness:
    from repro.baselines.queue_scaler import QueueLengthAutoscaler, QueueScalerConfig

    scaler_config = _take(options, "scaler_config")
    tasks_per_replica = float(_take(options, "tasks_per_replica", 3.0))
    min_replicas = _take(options, "min_replicas")
    max_replicas = _take(options, "max_replicas")
    request = stack.worker_request
    replicaset = WorkerReplicaSet(
        stack.engine, stack.cluster.api, "wq-workers", _worker_pod_spec(cfg, request)
    )
    if scaler_config is None:
        scaler_config = QueueScalerConfig(
            tasks_per_replica=tasks_per_replica,
            min_replicas=(
                min_replicas if min_replicas is not None else cfg.cluster.min_nodes
            ),
            max_replicas=(
                max_replicas if max_replicas is not None else cfg.cluster.max_nodes
            ),
        )
    scaler = QueueLengthAutoscaler(
        stack.engine, stack.master, replicaset, scaler_config, stack.recorder
    )
    return _PolicyHarness(
        name="KEDA-queue",
        submitter=stack.master,
        gauges={"keda_replicas": lambda: float(replicaset.current_count())},
        finish=scaler.stop,
        extras=lambda _acc: dict(
            scale_events=float(scaler.scale_events),
            pods_deleted=float(replicaset.pods_deleted),
        ),
    )


register_policy(PolicyDefinition(key="queue", build=_build_queue))


# ------------------------------------------------------------------- static
def _validate_static(options: Dict) -> None:
    n_workers = options.get("n_workers")
    if not isinstance(n_workers, int) or n_workers <= 0:
        raise ValueError("n_workers must be positive")


def _build_static(
    stack: _Stack, cfg: StackConfig, graph: WorkflowGraph, options: Dict
) -> _PolicyHarness:
    n_workers = int(_take(options, "n_workers"))
    options.pop("estimator", None)  # consumed pre-stack via estimator_kind
    request = stack.worker_request
    replicaset = WorkerReplicaSet(
        stack.engine,
        stack.cluster.api,
        "wq-workers",
        _worker_pod_spec(cfg, request),
        replicas=n_workers,
    )

    def extras(accountant: ResourceAccountant) -> Dict[str, float]:
        t0, t1 = accountant.window()
        return dict(
            mean_bandwidth_mbps=stack.link.mean_active_throughput(t0, t1),
            bytes_moved_mb=stack.link.bytes_moved_mb,
        )

    # The replicaset holds the pool for the whole run (it stays alive
    # through its API-server watch registration); nothing to stop.
    return _PolicyHarness(
        name=f"static-{n_workers}",
        submitter=stack.master,
        extras=extras,
    )


register_policy(
    PolicyDefinition(
        key="static",
        build=_build_static,
        estimator_kind=lambda options: str(options.get("estimator") or "monitor"),
        validate=_validate_static,
    )
)


# ------------------------------------------------- deprecated entry points
def _deprecated(old: str, policy: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use "
        f"run_experiment(ExperimentSpec(workload, policy={policy!r}, ...))",
        DeprecationWarning,
        stacklevel=3,
    )


def run_hta_experiment(
    workload: Workload,
    *,
    stack_config: Optional[StackConfig] = None,
    hta_config: Optional[HtaConfig] = None,
    seed: Optional[int] = None,
    name: str = "HTA",
    fixed_init_time_s: Optional[float] = None,
) -> ExperimentResult:
    """Deprecated: ``run_experiment(ExperimentSpec(..., policy="hta"))``."""
    _deprecated("run_hta_experiment", "hta")
    return run_experiment(
        ExperimentSpec(
            workload=workload,
            policy="hta",
            name=name,
            stack=stack_config,
            seed=seed,
            options={
                "hta_config": hta_config,
                "fixed_init_time_s": fixed_init_time_s,
            },
        )
    )


def run_predictive_experiment(
    workload: Workload,
    *,
    stack_config: Optional[StackConfig] = None,
    scaler_config=None,
    seed: Optional[int] = None,
    name: str = "Predictive",
    fixed_init_time_s: Optional[float] = None,
) -> ExperimentResult:
    """Deprecated: ``run_experiment(ExperimentSpec(..., policy="predictive"))``."""
    _deprecated("run_predictive_experiment", "predictive")
    return run_experiment(
        ExperimentSpec(
            workload=workload,
            policy="predictive",
            name=name,
            stack=stack_config,
            seed=seed,
            options={
                "scaler_config": scaler_config,
                "fixed_init_time_s": fixed_init_time_s,
            },
        )
    )


def run_hpa_experiment(
    workload: Workload,
    *,
    target_cpu: float = 0.5,
    stack_config: Optional[StackConfig] = None,
    hpa_config: Optional[HpaConfig] = None,
    min_replicas: Optional[int] = None,
    max_replicas: Optional[int] = None,
    seed: Optional[int] = None,
    name: Optional[str] = None,
) -> ExperimentResult:
    """Deprecated: ``run_experiment(ExperimentSpec(..., policy="hpa"))``."""
    _deprecated("run_hpa_experiment", "hpa")
    return run_experiment(
        ExperimentSpec(
            workload=workload,
            policy="hpa",
            name=name,
            stack=stack_config,
            seed=seed,
            options={
                "target_cpu": target_cpu,
                "hpa_config": hpa_config,
                "min_replicas": min_replicas,
                "max_replicas": max_replicas,
            },
        )
    )


def run_queue_scaler_experiment(
    workload: Workload,
    *,
    stack_config: Optional[StackConfig] = None,
    scaler_config=None,
    tasks_per_replica: float = 3.0,
    min_replicas: Optional[int] = None,
    max_replicas: Optional[int] = None,
    seed: Optional[int] = None,
    name: str = "KEDA-queue",
) -> ExperimentResult:
    """Deprecated: ``run_experiment(ExperimentSpec(..., policy="queue"))``."""
    _deprecated("run_queue_scaler_experiment", "queue")
    return run_experiment(
        ExperimentSpec(
            workload=workload,
            policy="queue",
            name=name,
            stack=stack_config,
            seed=seed,
            options={
                "scaler_config": scaler_config,
                "tasks_per_replica": tasks_per_replica,
                "min_replicas": min_replicas,
                "max_replicas": max_replicas,
            },
        )
    )


def run_static_experiment(
    workload: Workload,
    *,
    n_workers: int,
    stack_config: Optional[StackConfig] = None,
    estimator: str = "monitor",
    seed: Optional[int] = None,
    name: Optional[str] = None,
) -> ExperimentResult:
    """Deprecated: ``run_experiment(ExperimentSpec(..., policy="static"))``."""
    _deprecated("run_static_experiment", "static")
    return run_experiment(
        ExperimentSpec(
            workload=workload,
            policy="static",
            name=name,
            stack=stack_config,
            seed=seed,
            options={"n_workers": n_workers, "estimator": estimator},
        )
    )
