"""Shared experiment machinery: build a stack, run a policy, collect.

The entry points mirror the resource-provisioning modes under study:

* :func:`run_hta_experiment` — the full HTA pipeline (fig 8): workflow
  manager → HTA operator (warm-up gating) → Work Queue master; HTA
  creates/drains worker pods directly (pass an ``HtaConfig`` with
  ``forecast_arrivals=True`` for the forecast-fed hybrid mode);
* :func:`run_predictive_experiment` — the forecast-driven policy: a
  :class:`~repro.forecast.scaler.PredictiveScaler` sizes the pool for
  demand predicted one init cycle ahead, draining (never deleting) on
  the way down;
* :func:`run_hpa_experiment` — the baseline: worker pods held by a
  replica controller scaled by the Horizontal Pod Autoscaler on CPU;
* :func:`run_queue_scaler_experiment` — the KEDA-style queue-length
  baseline;
* :func:`run_static_experiment` — a fixed worker pool (fig 4's sizing
  study and fig 2's "ideal" reference).

All share identical cluster, network, and workload substrates, so
differences in the result are attributable to the autoscaling policy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Union

from repro.cluster.chaos import ChaosInjector
from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.hpa import HorizontalPodAutoscaler, HpaConfig
from repro.cluster.images import ContainerImage
from repro.cluster.pod import PodSpec
from repro.cluster.replicaset import WorkerReplicaSet
from repro.cluster.resources import ResourceVector
from repro.hta.estimator import EstimatorConfig
from repro.hta.inittime import FixedInitTime, InitTimeTracker
from repro.hta.operator import HtaConfig, HtaOperator
from repro.hta.provisioner import ProvisionerFaultConfig, WorkerProvisioner
from repro.makeflow.dag import WorkflowGraph
from repro.makeflow.manager import WorkflowManager
from repro.metrics.accounting import AccountingSummary, ResourceAccountant
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.tracing import MetricRecorder
from repro.wq.estimator import (
    AllocationEstimator,
    ConservativeEstimator,
    DeclaredResourceEstimator,
    MonitorEstimator,
)
from repro.wq.faults import (
    CategoryFaultProfile,
    RetryPolicy,
    SpeculationConfig,
    TaskFaultModel,
)
from repro.wq.link import Link
from repro.wq.master import Master
from repro.wq.monitor import ResourceMonitor
from repro.wq.runtime import WorkerPodRuntime
from repro.wq.task import Task
from repro.wq.worker import WorkerState

Workload = Union[WorkflowGraph, Sequence[Task]]

#: The worker container image (the paper pulls from a private registry).
DEFAULT_WORKER_IMAGE = ContainerImage("wq-worker", 500.0)


def ensure_graph(workload: Workload) -> WorkflowGraph:
    """Accept either a DAG or a bag of independent tasks."""
    if isinstance(workload, WorkflowGraph):
        return workload
    return WorkflowGraph(list(workload))


@dataclass(frozen=True, slots=True)
class FaultProfile:
    """Fault injection for one run — every layer at once, all seeded.

    Zero probabilities / None intervals disable the corresponding fault;
    the default instance injects nothing, so ``StackConfig(faults=None)``
    and ``StackConfig(faults=FaultProfile())`` behave identically except
    for the fault plumbing being armed.
    """

    # -- task-level faults (per execution attempt, per-category stream)
    task_failure_prob: float = 0.0
    task_exhaustion_prob: float = 0.0
    exhaustion_factor: float = 1.5
    retry_backoff_base_s: float = 2.0
    retry_backoff_max_s: float = 120.0
    max_retries: Optional[int] = None
    #: Straggler speculation (None disables it).
    speculation: Optional[SpeculationConfig] = field(
        default_factory=SpeculationConfig
    )
    # -- infrastructure chaos
    node_crash_interval_s: Optional[float] = None
    pod_eviction_interval_s: Optional[float] = None
    #: Pod-eviction selector (None = any non-terminal pod).
    pod_eviction_selector: Optional[dict] = None
    # -- provisioning faults
    boot_failure_prob: float = 0.0
    boot_failure_duration_s: Optional[float] = None
    pull_stall_factor: float = 1.0
    pull_stall_duration_s: Optional[float] = None
    #: Defensive provisioning for the drain-based policies (HTA /
    #: predictive); None keeps the provisioner undefended.
    provisioner: Optional[ProvisionerFaultConfig] = field(
        default_factory=ProvisionerFaultConfig
    )
    #: Robust (median) init-time estimation window; 0 keeps the paper's
    #: latest-sample estimate.
    robust_init_window: int = 5
    # -- control-plane faults
    #: Kill the master at this simulated time (None = never).
    master_crash_at_s: Optional[float] = None
    #: How long the crashed master stays down before restarting.
    master_restart_delay_s: float = 60.0
    #: Replay the transaction journal on restart; False models a cold
    #: restart that forgets everything but the submitted task set.
    journal_replay: bool = True
    #: API-server outage window (None = never).
    api_outage_at_s: Optional[float] = None
    api_outage_duration_s: float = 300.0
    #: Watch-stream disconnect window — events silently dropped.
    watch_drop_at_s: Optional[float] = None
    watch_drop_duration_s: float = 300.0
    watch_drop_kind: str = "Pod"
    #: Informer relist-and-resync cadence (None disables resync; the
    #: informer then only heals via live watch events).
    informer_resync_period_s: Optional[float] = 60.0


@dataclass(frozen=True, slots=True)
class StackConfig:
    """The substrate shared by every policy."""

    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    link_capacity_mbps: float = 500.0
    per_stream_overhead: float = 0.0
    image: ContainerImage = DEFAULT_WORKER_IMAGE
    #: Worker pod resource request; None = the node's full allocatable.
    worker_request: Optional[ResourceVector] = None
    seed: int = 0
    #: Hard wall on simulated time (a run exceeding it raises).
    max_sim_time_s: float = 100_000.0
    #: Sampling period of the accountant (1 s = the paper's resolution).
    accounting_period_s: float = 1.0
    #: Fault injection; None runs the substrate fault-free.
    faults: Optional[FaultProfile] = None

    def resolved_worker_request(self) -> ResourceVector:
        if self.worker_request is not None:
            return self.worker_request
        return self.cluster.machine_type.allocatable


class _Stack:
    """Everything instantiated for one run."""

    def __init__(self, config: StackConfig, estimator_kind: str = "monitor"):
        self.config = config
        self.engine = Engine()
        self.rng = RngRegistry(config.seed)
        self.recorder = MetricRecorder(self.engine)
        self.cluster = Cluster(self.engine, self.rng, config.cluster, self.recorder)
        self.link = Link(
            self.engine,
            config.link_capacity_mbps,
            per_stream_overhead=config.per_stream_overhead,
        )
        self.monitor = ResourceMonitor()
        faults = config.faults
        fault_model: Optional[TaskFaultModel] = None
        retry_policy: Optional[RetryPolicy] = None
        if faults is not None:
            fault_model = TaskFaultModel(
                self.rng,
                default=CategoryFaultProfile(
                    failure_prob=faults.task_failure_prob,
                    exhaustion_prob=faults.task_exhaustion_prob,
                    exhaustion_factor=faults.exhaustion_factor,
                ),
            )
            retry_policy = RetryPolicy(
                base_backoff_s=faults.retry_backoff_base_s,
                max_backoff_s=faults.retry_backoff_max_s,
            )
        self.master = Master(
            self.engine,
            self.link,
            estimator=self._make_estimator(estimator_kind),
            monitor=self.monitor,
            fault_model=fault_model,
            retry_policy=retry_policy,
            speculation=faults.speculation if faults is not None else None,
            replay_journal=faults.journal_replay if faults is not None else True,
        )
        if faults is not None and faults.max_retries is not None:
            self.master.max_retries = faults.max_retries
        self.runtime = WorkerPodRuntime(
            self.engine, self.cluster.api, self.cluster.kubelets, self.master
        )
        self.worker_request = config.resolved_worker_request()
        self.chaos: Optional[ChaosInjector] = None
        if faults is not None:
            self.chaos = ChaosInjector(
                self.engine,
                self.cluster.api,
                self.rng,
                cloud=self.cluster.cloud,
                registry=self.cluster.registry,
            )
            if faults.node_crash_interval_s is not None:
                self.chaos.schedule_node_failures(faults.node_crash_interval_s)
            if faults.pod_eviction_interval_s is not None:
                self.chaos.schedule_pod_evictions(
                    faults.pod_eviction_interval_s,
                    selector=faults.pod_eviction_selector,
                )
            if faults.boot_failure_prob > 0:
                self.chaos.begin_boot_failures(
                    faults.boot_failure_prob,
                    duration_s=faults.boot_failure_duration_s,
                )
            if faults.pull_stall_factor > 1.0:
                self.chaos.begin_image_pull_stall(
                    faults.pull_stall_factor,
                    duration_s=faults.pull_stall_duration_s,
                )
            if faults.master_crash_at_s is not None:
                self.chaos.schedule_master_crash(
                    self.master,
                    at_s=faults.master_crash_at_s,
                    restart_delay_s=faults.master_restart_delay_s,
                )
            if faults.api_outage_at_s is not None:
                self.chaos.schedule_api_outage(
                    at_s=faults.api_outage_at_s,
                    duration_s=faults.api_outage_duration_s,
                )
            if faults.watch_drop_at_s is not None:
                self.chaos.schedule_watch_drop(
                    at_s=faults.watch_drop_at_s,
                    duration_s=faults.watch_drop_duration_s,
                    kind=faults.watch_drop_kind,
                )

    def _make_estimator(self, kind: str) -> AllocationEstimator:
        if kind == "monitor":
            return MonitorEstimator(self.monitor)
        if kind == "declared":
            return DeclaredResourceEstimator()
        if kind == "conservative":
            return ConservativeEstimator()
        raise ValueError(f"unknown estimator kind {kind!r}")


@dataclass
class ExperimentResult:
    """Everything an experiment harness needs to print its figure/table."""

    name: str
    makespan_s: float
    accounting: AccountingSummary
    accountant: ResourceAccountant
    recorder: MetricRecorder
    tasks_total: int
    tasks_completed: int
    tasks_requeued: int
    nodes_peak: int
    workers_started: int
    extras: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        a = self.accounting
        return (
            f"{self.name}: runtime {self.makespan_s:.0f}s, "
            f"waste {a.accumulated_waste_core_s:.0f} core*s, "
            f"shortage {a.accumulated_shortage_core_s:.0f} core*s, "
            f"utilization {a.utilization:.1%}, "
            f"tasks {self.tasks_completed}/{self.tasks_total}"
        )

    def series(self, name: str):
        return self.accountant.series(name)


class ExperimentTimeout(RuntimeError):
    """The workload did not finish within ``max_sim_time_s``."""


class WorkflowFailed(RuntimeError):
    """A task was permanently abandoned; the DAG can never complete."""


def _drive(stack: _Stack, manager: WorkflowManager, accountant: ResourceAccountant) -> None:
    """Advance the simulation until the workflow completes."""
    engine = stack.engine
    limit = stack.config.max_sim_time_s
    chunk = 60.0
    accountant.start()
    manager.start()
    while not manager.done:
        if manager.failed:
            raise WorkflowFailed(
                f"task(s) {sorted(manager.failed_task_ids)} permanently "
                f"abandoned at t={engine.now:.0f}s"
            )
        if engine.now >= limit:
            raise ExperimentTimeout(
                f"workflow incomplete at t={engine.now:.0f}s "
                f"({manager.progress():.0%} done)"
            )
        if engine.peek() is None:
            raise ExperimentTimeout(
                f"event queue drained at t={engine.now:.0f}s with workflow "
                f"{manager.progress():.0%} done — a control loop stopped early"
            )
        engine.run(until=min(limit, engine.now + chunk))
    accountant.stop()


def _collect(
    name: str,
    stack: _Stack,
    manager: WorkflowManager,
    accountant: ResourceAccountant,
    graph: WorkflowGraph,
    **extras: float,
) -> ExperimentResult:
    t0, t1 = accountant.window()
    master = stack.master
    fault_extras: Dict[str, float] = {
        "goodput_core_s": master.goodput_core_s(),
        "wasted_core_s": master.wasted_core_s,
        "tasks_failed": float(master.tasks_failed),
        "tasks_exhausted": float(master.tasks_exhausted),
        "escalations": float(master.escalations),
        "tasks_speculated": float(master.tasks_speculated),
        "speculation_wins": float(master.speculation_wins),
        "tasks_abandoned": float(len(master.abandoned)),
    }
    if stack.chaos is not None:
        fault_extras["chaos_nodes_killed"] = float(stack.chaos.nodes_killed)
        fault_extras["chaos_pods_killed"] = float(stack.chaos.pods_killed)
        fault_extras["boot_failures"] = float(stack.cluster.cloud.boot_failures)
    if master.crashes > 0 or stack.chaos is not None:
        fault_extras["master_crashes"] = float(master.crashes)
        fault_extras["tasks_rerun"] = float(master.tasks_rerun)
        fault_extras["duplicate_results"] = float(master.duplicate_results)
        fault_extras["journal_records"] = float(len(master.journal))
        fault_extras["api_outages"] = float(stack.cluster.api.api_outages)
        fault_extras["dropped_watch_events"] = float(
            stack.cluster.api.dropped_events
        )
        if master.last_crash_at is not None:
            recovered = (
                master.first_completion_after_recovery_at
                if master.first_completion_after_recovery_at is not None
                else master.last_recovered_at
            )
            if recovered is not None:
                fault_extras["recovery_latency_s"] = recovered - master.last_crash_at
    fault_extras.update(extras)
    return ExperimentResult(
        name=name,
        makespan_s=manager.makespan or 0.0,
        accounting=accountant.summarize(),
        accountant=accountant,
        recorder=stack.recorder,
        tasks_total=len(graph),
        tasks_completed=len(stack.master.done),
        tasks_requeued=stack.master.tasks_requeued,
        nodes_peak=int(accountant.series("nodes").maximum(t0, t1)),
        workers_started=stack.runtime.workers_started,
        extras=fault_extras,
    )


def _make_accountant(
    stack: _Stack, *, shortage_extra=None, extra_gauges=None
) -> ResourceAccountant:
    master = stack.master

    def shortage() -> float:
        value = master.cores_waiting()
        if shortage_extra is not None:
            value += shortage_extra()
        return value

    acc = ResourceAccountant(
        stack.engine,
        supply=master.supplied_cores,
        in_use=master.cores_in_use,
        shortage=shortage,
        nodes=lambda: float(stack.cluster.node_count()),
        period=stack.config.accounting_period_s,
    )
    acc.sampler.add_gauge(
        "workers_connected", lambda: float(master.stats().workers_connected)
    )
    acc.sampler.add_gauge("workers_idle", lambda: float(master.stats().workers_idle))
    if extra_gauges:
        for gname, fn in extra_gauges.items():
            acc.sampler.add_gauge(gname, fn)
    return acc


# --------------------------------------------------------------------- HTA
def run_hta_experiment(
    workload: Workload,
    *,
    stack_config: Optional[StackConfig] = None,
    hta_config: Optional[HtaConfig] = None,
    seed: Optional[int] = None,
    name: str = "HTA",
    fixed_init_time_s: Optional[float] = None,
) -> ExperimentResult:
    """Run a workload under the High-Throughput Autoscaler.

    ``fixed_init_time_s`` replaces the live informer-fed initialization
    estimate with a constant (the init-time-feedback ablation).
    """
    cfg = stack_config if stack_config is not None else StackConfig()
    if seed is not None:
        cfg = replace(cfg, seed=seed)
    stack = _Stack(cfg, estimator_kind="monitor")
    graph = ensure_graph(workload)

    if hta_config is None:
        hta_config = HtaConfig(
            initial_workers=cfg.cluster.min_nodes,
            max_workers=cfg.cluster.max_nodes,
        )
    provisioner = WorkerProvisioner(
        stack.engine,
        stack.cluster.api,
        stack.runtime,
        image=cfg.image,
        worker_request=stack.worker_request,
        fault_config=cfg.faults.provisioner if cfg.faults is not None else None,
    )
    if fixed_init_time_s is not None:
        tracker = FixedInitTime(fixed_init_time_s)
    else:
        robust_window = (
            cfg.faults.robust_init_window if cfg.faults is not None else 0
        )
        tracker = InitTimeTracker(
            stack.cluster.api,
            prior_s=160.0,
            selector_label="wq-worker",
            robust=robust_window > 0,
            window=max(robust_window, 1),
            resync_period_s=(
                cfg.faults.informer_resync_period_s
                if cfg.faults is not None
                else None
            ),
        )
    operator = HtaOperator(
        stack.engine, stack.master, provisioner, tracker, hta_config, stack.recorder
    )
    manager = WorkflowManager(stack.engine, graph, operator, recorder=stack.recorder)
    manager.done_signal.add_waiter(lambda _mgr: operator.notify_no_more_jobs())

    accountant = _make_accountant(
        stack,
        shortage_extra=operator.held_cores,
        extra_gauges={
            "hta_pending_pods": lambda: float(len(provisioner.pending_pods())),
        },
    )
    operator.start()
    _drive(stack, manager, accountant)
    return _collect(
        name,
        stack,
        manager,
        accountant,
        graph,
        init_time_samples=float(tracker.sample_count),
        plans=float(len(operator.plans)),
        pods_created=float(provisioner.pods_created),
        drains=float(provisioner.drains_requested),
        degraded_cycles=float(operator.degraded_cycles),
        scale_downs_frozen=float(operator.scale_downs_frozen),
        informer_resyncs=float(
            getattr(getattr(tracker, "informer", None), "resyncs", 0)
        ),
        creations_deferred=float(provisioner.creations_deferred),
    )


# --------------------------------------------------------------- predictive
def run_predictive_experiment(
    workload: Workload,
    *,
    stack_config: Optional[StackConfig] = None,
    scaler_config: Optional["PredictiveScalerConfig"] = None,
    seed: Optional[int] = None,
    name: str = "Predictive",
    fixed_init_time_s: Optional[float] = None,
) -> ExperimentResult:
    """Run a workload under the forecast-driven :class:`PredictiveScaler`.

    The scaler pre-provisions for demand forecast one resource-
    initialization cycle ahead (horizon from the live init-time tracker,
    or a constant when ``fixed_init_time_s`` is given) and shrinks by
    draining workers, never deleting pods.
    """
    from repro.forecast.scaler import PredictiveScaler, PredictiveScalerConfig

    cfg = stack_config if stack_config is not None else StackConfig()
    if seed is not None:
        cfg = replace(cfg, seed=seed)
    stack = _Stack(cfg, estimator_kind="monitor")
    graph = ensure_graph(workload)

    if scaler_config is None:
        scaler_config = PredictiveScalerConfig(
            min_workers=cfg.cluster.min_nodes,
            max_workers=cfg.cluster.max_nodes,
        )
    provisioner = WorkerProvisioner(
        stack.engine,
        stack.cluster.api,
        stack.runtime,
        image=cfg.image,
        worker_request=stack.worker_request,
        name_prefix="pred-worker",
        fault_config=cfg.faults.provisioner if cfg.faults is not None else None,
    )
    if fixed_init_time_s is not None:
        tracker = FixedInitTime(fixed_init_time_s)
    else:
        robust_window = (
            cfg.faults.robust_init_window if cfg.faults is not None else 0
        )
        tracker = InitTimeTracker(
            stack.cluster.api,
            prior_s=160.0,
            selector_label="wq-worker",
            robust=robust_window > 0,
            window=max(robust_window, 1),
        )
    scaler = PredictiveScaler(
        stack.engine, stack.master, provisioner, tracker, scaler_config, stack.recorder
    )
    manager = WorkflowManager(stack.engine, graph, stack.master, recorder=stack.recorder)
    accountant = _make_accountant(
        stack,
        extra_gauges={
            "forecast_pool": lambda: float(scaler.pool_size()),
            "forecast_desired": lambda: float(scaler.last_desired),
        },
    )
    _drive(stack, manager, accountant)
    scaler.stop()
    provisioner.stop()
    return _collect(
        name,
        stack,
        manager,
        accountant,
        graph,
        scale_events=float(scaler.scale_events),
        decisions=float(scaler.decisions),
        pods_created=float(provisioner.pods_created),
        drains=float(provisioner.drains_requested),
    )


# --------------------------------------------------------------------- HPA
def run_hpa_experiment(
    workload: Workload,
    *,
    target_cpu: float = 0.5,
    stack_config: Optional[StackConfig] = None,
    hpa_config: Optional[HpaConfig] = None,
    min_replicas: Optional[int] = None,
    max_replicas: Optional[int] = None,
    seed: Optional[int] = None,
    name: Optional[str] = None,
) -> ExperimentResult:
    """Run a workload under the Horizontal Pod Autoscaler baseline."""
    cfg = stack_config if stack_config is not None else StackConfig()
    if seed is not None:
        cfg = replace(cfg, seed=seed)
    stack = _Stack(cfg, estimator_kind="monitor")
    graph = ensure_graph(workload)
    request = stack.worker_request

    def pod_spec(pod_name: str) -> PodSpec:
        return PodSpec(cfg.image, request, labels={"app": "wq-worker"})

    replicaset = WorkerReplicaSet(
        stack.engine, stack.cluster.api, "wq-workers", pod_spec
    )
    if hpa_config is None:
        per_node = max(1, request.copies_fitting_in(cfg.cluster.machine_type.allocatable))
        hpa_config = HpaConfig(
            target_cpu_utilization=target_cpu,
            min_replicas=(
                min_replicas if min_replicas is not None else cfg.cluster.min_nodes
            ),
            max_replicas=(
                max_replicas
                if max_replicas is not None
                else cfg.cluster.max_nodes * per_node
            ),
        )
    hpa = HorizontalPodAutoscaler(
        stack.engine, stack.cluster.metrics, replicaset, hpa_config, stack.recorder
    )
    manager = WorkflowManager(stack.engine, graph, stack.master, recorder=stack.recorder)

    def ideal_workers() -> float:
        """Workers needed to run every remaining task at once (fig 2)."""
        backlog = stack.master.cores_waiting() + stack.master.cores_in_use()
        per_worker = max(request.cores, 1e-9)
        return float(min(hpa_config.max_replicas, math.ceil(backlog / per_worker)))

    accountant = _make_accountant(
        stack,
        extra_gauges={
            "hpa_desired": lambda: float(hpa.last_desired or 0),
            "ideal_workers": ideal_workers,
        },
    )
    _drive(stack, manager, accountant)
    hpa.stop()
    return _collect(
        name if name is not None else f"HPA-{int(target_cpu * 100)}%",
        stack,
        manager,
        accountant,
        graph,
        scale_events=float(hpa.scale_events),
        pods_deleted=float(replicaset.pods_deleted),
    )


# --------------------------------------------------------------- queue scaler
def run_queue_scaler_experiment(
    workload: Workload,
    *,
    stack_config: Optional[StackConfig] = None,
    scaler_config: Optional["QueueScalerConfig"] = None,
    tasks_per_replica: float = 3.0,
    min_replicas: Optional[int] = None,
    max_replicas: Optional[int] = None,
    seed: Optional[int] = None,
    name: str = "KEDA-queue",
) -> ExperimentResult:
    """Run a workload under the KEDA-style queue-length baseline."""
    from repro.baselines.queue_scaler import QueueLengthAutoscaler, QueueScalerConfig

    cfg = stack_config if stack_config is not None else StackConfig()
    if seed is not None:
        cfg = replace(cfg, seed=seed)
    stack = _Stack(cfg, estimator_kind="monitor")
    graph = ensure_graph(workload)
    request = stack.worker_request

    def pod_spec(pod_name: str) -> PodSpec:
        return PodSpec(cfg.image, request, labels={"app": "wq-worker"})

    replicaset = WorkerReplicaSet(
        stack.engine, stack.cluster.api, "wq-workers", pod_spec
    )
    if scaler_config is None:
        scaler_config = QueueScalerConfig(
            tasks_per_replica=tasks_per_replica,
            min_replicas=(
                min_replicas if min_replicas is not None else cfg.cluster.min_nodes
            ),
            max_replicas=(
                max_replicas if max_replicas is not None else cfg.cluster.max_nodes
            ),
        )
    scaler = QueueLengthAutoscaler(
        stack.engine, stack.master, replicaset, scaler_config, stack.recorder
    )
    manager = WorkflowManager(stack.engine, graph, stack.master, recorder=stack.recorder)
    accountant = _make_accountant(
        stack,
        extra_gauges={"keda_replicas": lambda: float(replicaset.current_count())},
    )
    _drive(stack, manager, accountant)
    scaler.stop()
    return _collect(
        name,
        stack,
        manager,
        accountant,
        graph,
        scale_events=float(scaler.scale_events),
        pods_deleted=float(replicaset.pods_deleted),
    )


# ------------------------------------------------------------------- static
def run_static_experiment(
    workload: Workload,
    *,
    n_workers: int,
    stack_config: Optional[StackConfig] = None,
    estimator: str = "monitor",
    seed: Optional[int] = None,
    name: Optional[str] = None,
) -> ExperimentResult:
    """Run a workload on a fixed pool of ``n_workers`` worker pods.

    ``estimator`` selects the dispatch policy: ``"declared"`` (trust
    declarations), ``"conservative"`` (one task per worker — fig 4(b)),
    or ``"monitor"`` (category feedback).
    """
    if n_workers <= 0:
        raise ValueError("n_workers must be positive")
    cfg = stack_config if stack_config is not None else StackConfig()
    if seed is not None:
        cfg = replace(cfg, seed=seed)
    stack = _Stack(cfg, estimator_kind=estimator)
    graph = ensure_graph(workload)
    request = stack.worker_request

    def pod_spec(pod_name: str) -> PodSpec:
        return PodSpec(cfg.image, request, labels={"app": "wq-worker"})

    replicaset = WorkerReplicaSet(
        stack.engine, stack.cluster.api, "wq-workers", pod_spec, replicas=n_workers
    )
    manager = WorkflowManager(stack.engine, graph, stack.master, recorder=stack.recorder)
    accountant = _make_accountant(stack)
    _drive(stack, manager, accountant)
    t0, t1 = accountant.window()
    return _collect(
        name if name is not None else f"static-{n_workers}",
        stack,
        manager,
        accountant,
        graph,
        mean_bandwidth_mbps=stack.link.mean_active_throughput(t0, t1),
        bytes_moved_mb=stack.link.bytes_moved_mb,
    )
