"""Recovery — HTA under a master crash and an API-server outage.

Beyond the paper: the paper's control plane never fails. This experiment
kills the Work Queue master mid-makespan and takes the API server down
for a window earlier in the run, then compares two restart strategies
against the same-seed fault-free twin:

* **journal** — the restarted master replays its transaction journal:
  completed tasks are never re-executed, category statistics and retry
  budgets are reconstructed, and surviving workers reconnect and have
  their in-flight runs adopted;
* **cold** — the restart forgets everything but the submitted task set
  and re-runs the workload from scratch (what a master without a
  persistent volume would do).

During the API outage the informer goes stale and the HTA operator drops
into degraded mode: scale-down frozen, conservative queue-length sizing,
last-known-good init-time estimate. When the server returns, the
informer's relist-and-resync synthesizes the missed watch events.

Crash/outage timings default to fractions of the fault-free makespan so
both land mid-run at any scale; CLI flags override them.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.cluster.cluster import ClusterConfig
from repro.cluster.node import N1_STANDARD_4_RESERVED
from repro.cluster.resources import ResourceVector
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentSpec,
    FaultProfile,
    StackConfig,
    run_experiment,
)
from repro.metrics.recovery import RecoverySummary, format_recovery_table
from repro.sim.rng import RngRegistry
from repro.workloads.synthetic import uniform_bag

#: (category, count, mean execute_s, runtime cv, footprint). Two
#: categories so journal replay has non-trivial category statistics to
#: reconstruct; no runtime jitter in "reduce" keeps the twins easy to
#: eyeball in traces.
SPEC = (
    ("sim", 48, 90.0, 0.5, ResourceVector(1, 1024, 1024)),
    ("reduce", 16, 180.0, 0.0, ResourceVector(2, 2048, 1024)),
)
SMOKE_SPEC = (
    ("sim", 12, 90.0, 0.5, ResourceVector(1, 1024, 1024)),
    ("reduce", 4, 180.0, 0.0, ResourceVector(2, 2048, 1024)),
)

MIN_NODES = 2
MAX_NODES = 10

#: Where the faults land, as fractions of the fault-free makespan. A
#: watch-stream drop is deliberately NOT part of the default profile:
#: the scheduler and pod runtime watch Pods without a resync path, so a
#: drop during boot stalls provisioning until the pending-pod timeout
#: fires and swamps the crash-recovery signal this experiment isolates.
#: The drop injector is exercised at unit level instead
#: (tests/cluster/test_api_outage.py::TestWatchDrop).
OUTAGE_AT_FRAC = 0.20
OUTAGE_DURATION_FRAC = 0.15
CRASH_AT_FRAC = 0.55

STRATEGIES = ("journal", "cold")


def stack_config(
    seed: int = 0, *, faults: Optional[FaultProfile] = None, smoke: bool = False
) -> StackConfig:
    return StackConfig(
        cluster=ClusterConfig(
            machine_type=N1_STANDARD_4_RESERVED,  # 3 allocatable cores/node
            min_nodes=MIN_NODES,
            max_nodes=MAX_NODES if not smoke else 6,
        ),
        seed=seed,
        faults=faults,
    )


def workload(smoke: bool = False, seed: int = 0):
    """The same task bag for every strategy and the fault-free twin."""
    rng = RngRegistry(seed + 104729)
    tasks = []
    for category, count, execute_s, cv, footprint in (
        SMOKE_SPEC if smoke else SPEC
    ):
        tasks.extend(
            uniform_bag(
                count,
                execute_s=execute_s,
                footprint=footprint,
                declared=False,
                category=category,
                rng=rng if cv > 0 else None,
                runtime_cv=cv,
            )
        )
    return tasks


def fault_profile(
    baseline_makespan_s: float,
    *,
    journal: bool,
    crash_at_s: Optional[float] = None,
    outage_at_s: Optional[float] = None,
    outage_duration_s: Optional[float] = None,
    restart_delay_s: float = 60.0,
) -> FaultProfile:
    """Control-plane-only faults, timed off the fault-free makespan.

    Speculation is disabled so every re-executed task is attributable to
    the crash, not to straggler chasing.
    """
    m = baseline_makespan_s
    return FaultProfile(
        speculation=None,
        master_crash_at_s=crash_at_s if crash_at_s is not None else CRASH_AT_FRAC * m,
        master_restart_delay_s=restart_delay_s,
        journal_replay=journal,
        api_outage_at_s=(
            outage_at_s if outage_at_s is not None else OUTAGE_AT_FRAC * m
        ),
        api_outage_duration_s=(
            outage_duration_s
            if outage_duration_s is not None
            else OUTAGE_DURATION_FRAC * m
        ),
        informer_resync_period_s=60.0,
    )


def _summarize(
    strategy: str, faulty: ExperimentResult, baseline: ExperimentResult
) -> RecoverySummary:
    ex = faulty.extras
    return RecoverySummary(
        strategy=strategy,
        makespan_s=faulty.makespan_s,
        baseline_makespan_s=baseline.makespan_s,
        tasks_rerun=int(ex.get("tasks_rerun", 0.0)),
        duplicate_results=int(ex.get("duplicate_results", 0.0)),
        recovery_latency_s=ex.get("recovery_latency_s", 0.0),
        master_crashes=int(ex.get("master_crashes", 0.0)),
        api_outages=int(ex.get("api_outages", 0.0)),
        dropped_watch_events=int(ex.get("dropped_watch_events", 0.0)),
        degraded_cycles=int(ex.get("degraded_cycles", 0.0)),
        scale_downs_frozen=int(ex.get("scale_downs_frozen", 0.0)),
        informer_resyncs=int(ex.get("informer_resyncs", 0.0)),
        tasks_completed=faulty.tasks_completed,
        tasks_total=faulty.tasks_total,
        wasted_core_s=ex.get("wasted_core_s", 0.0),
    )


def run(
    seed: int = 0,
    *,
    smoke: bool = False,
    crash_at_s: Optional[float] = None,
    outage_at_s: Optional[float] = None,
    outage_duration_s: Optional[float] = None,
    restart_delay_s: float = 60.0,
) -> Dict[str, Tuple[ExperimentResult, ExperimentResult, RecoverySummary]]:
    """Per strategy: (faulty result, fault-free twin, summary)."""
    baseline = run_experiment(
        ExperimentSpec(
            workload(smoke, seed),
            policy="hta",
            name="HTA-baseline",
            stack=stack_config(seed, faults=None, smoke=smoke),
        )
    )
    out: Dict[str, Tuple[ExperimentResult, ExperimentResult, RecoverySummary]] = {}
    for strategy in STRATEGIES:
        profile = fault_profile(
            baseline.makespan_s,
            journal=strategy == "journal",
            crash_at_s=crash_at_s,
            outage_at_s=outage_at_s,
            outage_duration_s=outage_duration_s,
            restart_delay_s=restart_delay_s,
        )
        faulty = run_experiment(
            ExperimentSpec(
                workload(smoke, seed),
                policy="hta",
                name=f"HTA-{strategy}",
                stack=stack_config(seed, faults=profile, smoke=smoke),
            )
        )
        out[strategy] = (faulty, baseline, _summarize(strategy, faulty, baseline))
    return out


def report(
    results: Dict[str, Tuple[ExperimentResult, ExperimentResult, RecoverySummary]],
    *,
    smoke: bool = False,
) -> str:
    spec = SMOKE_SPEC if smoke else SPEC
    total = sum(count for _, count, _, _, _ in spec)
    _, baseline, first = next(iter(results.values()))
    sections = [
        f"Workload: {total} tasks in {len(spec)} categories, "
        f"{MIN_NODES}..{6 if smoke else MAX_NODES} nodes; fault-free HTA "
        f"makespan {baseline.makespan_s:.0f}s. API outage at "
        f"~{OUTAGE_AT_FRAC:.0%} of makespan for ~{OUTAGE_DURATION_FRAC:.0%}, "
        f"master crash at ~{CRASH_AT_FRAC:.0%}."
    ]
    sections.append(format_recovery_table([s for _, _, s in results.values()]))
    lines = ["Recovery detail:"]
    for strategy, (faulty, _baseline, s) in results.items():
        lines.append(
            f"  {strategy:<8} re-ran {s.tasks_rerun} completed tasks, "
            f"suppressed {s.duplicate_results} duplicate results, first "
            f"completion {s.recovery_latency_s:.0f}s after the crash; "
            f"{s.degraded_cycles} degraded operator cycles "
            f"({s.scale_downs_frozen} scale-downs frozen), "
            f"{s.dropped_watch_events} watch events dropped, "
            f"{s.informer_resyncs} informer resyncs, "
            f"requeued {faulty.tasks_requeued}"
        )
    sections.append("\n".join(lines))
    journal = results.get("journal")
    cold = results.get("cold")
    if journal is not None and cold is not None:
        js, cs = journal[2], cold[2]
        sections.append(
            "Journal replay re-ran "
            f"{js.tasks_rerun} tasks vs {cs.tasks_rerun} under a cold "
            f"restart; makespan degradation {js.makespan_degradation:.1%} "
            f"vs {cs.makespan_degradation:.1%}."
        )
    return "\n\n".join(sections)


def main(
    seed: int = 0,
    *,
    smoke: bool = False,
    crash_at_s: Optional[float] = None,
    outage_at_s: Optional[float] = None,
    outage_duration_s: Optional[float] = None,
    restart_delay_s: float = 60.0,
) -> str:
    out = report(
        run(
            seed,
            smoke=smoke,
            crash_at_s=crash_at_s,
            outage_at_s=outage_at_s,
            outage_duration_s=outage_duration_s,
            restart_delay_s=restart_delay_s,
        ),
        smoke=smoke,
    )
    print(out)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
