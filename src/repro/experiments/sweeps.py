"""Parameter sweeps: sensitivity studies around the paper's experiments.

Each sweep runs one policy across a parameter range on a fixed workload
and seed, returning ``{parameter: ExperimentResult}`` — the raw material
for sensitivity tables beyond the paper's single operating points:

* :func:`sweep_hpa_targets` — generalizes fig 2's three-point target-CPU
  comparison to any grid;
* :func:`sweep_fixed_init_time` — HTA's sensitivity to a mis-estimated
  resource-initialization time (what the live informer feedback buys);
* :func:`sweep_worker_sizes` — generalizes fig 4's two-point sizing
  study to a worker-granularity curve;
* :func:`sweep_max_workers` — HTA under different resource quotas (the
  user-budget cap of §IV-B).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, Optional, Sequence

from repro.cluster.resources import ResourceVector
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentSpec,
    StackConfig,
    Workload,
    run_experiment,
)
from repro.hta.operator import HtaConfig

WorkloadFactory = Callable[[], Workload]


def sweep_hpa_targets(
    workload_factory: WorkloadFactory,
    targets: Sequence[float],
    *,
    stack_config: StackConfig,
    min_replicas: int = 3,
    max_replicas: Optional[int] = None,
) -> Dict[float, ExperimentResult]:
    """Run HPA across a grid of target CPU utilizations."""
    out: Dict[float, ExperimentResult] = {}
    for target in targets:
        out[target] = run_experiment(
            ExperimentSpec(
                workload_factory(),
                policy="hpa",
                stack=stack_config,
                options={
                    "target_cpu": target,
                    "min_replicas": min_replicas,
                    "max_replicas": max_replicas,
                },
            )
        )
    return out


def sweep_fixed_init_time(
    workload_factory: WorkloadFactory,
    init_times_s: Sequence[float],
    *,
    stack_config: StackConfig,
    include_live: bool = True,
) -> Dict[object, ExperimentResult]:
    """HTA with the init-time estimate pinned to each value; the key
    ``"live"`` (when ``include_live``) is the informer-fed reference."""
    out: Dict[object, ExperimentResult] = {}
    if include_live:
        out["live"] = run_experiment(
            ExperimentSpec(
                workload_factory(), policy="hta", name="HTA-live", stack=stack_config
            )
        )
    for value in init_times_s:
        out[value] = run_experiment(
            ExperimentSpec(
                workload_factory(),
                policy="hta",
                name=f"HTA-fixed-{value:g}s",
                stack=stack_config,
                options={"fixed_init_time_s": value},
            )
        )
    return out


def sweep_worker_sizes(
    workload_factory: WorkloadFactory,
    worker_cores: Sequence[float],
    *,
    stack_config: StackConfig,
    total_cores: float,
    memory_per_core_mb: float = 4096.0,
    disk_mb: float = 30 * 1024,
    estimator: str = "declared",
) -> Dict[float, ExperimentResult]:
    """Static pools holding ``total_cores`` constant while varying the
    per-worker granularity (fig 4's fine↔coarse axis, as a curve)."""
    out: Dict[float, ExperimentResult] = {}
    for cores in worker_cores:
        if cores <= 0:
            raise ValueError("worker core sizes must be positive")
        n_workers = max(1, int(round(total_cores / cores)))
        request = ResourceVector(
            cores=cores, memory_mb=memory_per_core_mb * cores, disk_mb=disk_mb
        )
        cfg = replace(stack_config, worker_request=request)
        out[cores] = run_experiment(
            ExperimentSpec(
                workload_factory(),
                policy="static",
                name=f"workers-{cores:g}core",
                stack=cfg,
                options={"n_workers": n_workers, "estimator": estimator},
            )
        )
    return out


def sweep_max_workers(
    workload_factory: WorkloadFactory,
    quotas: Sequence[int],
    *,
    stack_config: StackConfig,
    initial_workers: int = 3,
) -> Dict[int, ExperimentResult]:
    """HTA under different worker quotas (user budgets)."""
    out: Dict[int, ExperimentResult] = {}
    for quota in quotas:
        if quota < initial_workers:
            raise ValueError(
                f"quota {quota} below initial pool {initial_workers}"
            )
        out[quota] = run_experiment(
            ExperimentSpec(
                workload_factory(),
                policy="hta",
                name=f"HTA-quota-{quota}",
                stack=stack_config,
                options={
                    "hta_config": HtaConfig(
                        initial_workers=initial_workers,
                        max_workers=quota,
                        min_workers=min(3, initial_workers),
                    )
                },
            )
        )
    return out


def sweep_table(results: Dict[object, ExperimentResult], *, title: str = "") -> str:
    """Render any sweep as an aligned text table."""
    header = (
        f"{'param':>12} {'runtime (s)':>12} {'waste (core*s)':>15} "
        f"{'shortage':>12} {'util':>7}"
    )
    lines = ([title] if title else []) + [header, "-" * len(header)]
    for key, r in results.items():
        a = r.accounting
        lines.append(
            f"{str(key):>12} {r.makespan_s:>12.0f} "
            f"{a.accumulated_waste_core_s:>15.0f} "
            f"{a.accumulated_shortage_core_s:>12.0f} {a.utilization:>6.1%}"
        )
    return "\n".join(lines)
