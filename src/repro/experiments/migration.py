"""Migration — checkpoint/restore drains vs kill-and-requeue under a storm.

Beyond the paper: the paper's evacuation path (and the ``preemption``
experiment) requeues a doomed run *from scratch* — every core-second the
run had accumulated is forfeit. This experiment gives tasks a seeded
checkpoint model (progress banked every ``interval_s``, a snapshot
costing ``cost_s`` + a ship of ``size_mb``) and compares four spot-aware
HTA variants on the same seed under a heavy spot reclamation storm:

* **kill-and-requeue** — the existing grace-window evacuation: doomed
  runs requeue with zero progress (the baseline);
* **sudden** — every doomed run on a draining worker checkpoints at
  once (Megaphone's all-at-once migration: shortest drain, biggest
  ship burst on the shared link);
* **fluid** — one run at a time per worker (smallest link footprint,
  longest drain — risky inside a short grace window);
* **batched-fluid** — ``batch_size`` runs at a time (the middle ground
  Megaphone lands on).

Each migrated run resumes elsewhere from its last banked checkpoint, so
only the unbanked tail is re-executed; the coordinator falls back to
plain requeue whenever the checkpoint would not fit the remaining grace.
The report asserts the contract the subsystem is sold on: at the
validated seed, batched-fluid achieves **strictly higher goodput** and
**strictly fewer wasted core-seconds** than kill-and-requeue.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.cluster.cloud import PreemptiblePoolConfig
from repro.cluster.cluster import ClusterConfig
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentSpec,
    FaultProfile,
    StackConfig,
    run_experiment,
)
from repro.hta.provisioner import SpotPolicy
from repro.sim.rng import RngRegistry
from repro.workloads.synthetic import uniform_bag
from repro.wq.migration import CheckpointSpec, MigrationConfig

#: The validated configuration: long tasks on a half-spot fleet, with a
#: storm that reclaims most of the spot pool mid-run — enough in-flight
#: progress at stake that losing it visibly hurts the baseline.
N_TASKS = 240
EXECUTE_S = 150.0
RUNTIME_CV = 0.3
MAX_NODES = 24
SPOT_MAX_NODES = 12
GRACE_S = 30.0
STORM_AT_S = 450.0
STORM_SIZE = 10
STACK_SEED = 7
WORKLOAD_SEED = 9001

#: Checkpoint model every task carries: progress banked every 20 s, a
#: 2 s snapshot cut, a 50 MB image shipped over the master link.
CHECKPOINT = CheckpointSpec(interval_s=20.0, cost_s=2.0, size_mb=50.0)

#: Variant name -> migration policy (None = the requeue baseline).
VARIANTS: Dict[str, object] = {
    "kill-and-requeue": None,
    "sudden": MigrationConfig(policy="sudden"),
    "fluid": MigrationConfig(policy="fluid"),
    "batched-fluid": MigrationConfig(policy="batched-fluid", batch_size=2),
}

SMOKE_SCALE = 0.5  # halve the workload and the storm for CI


def _config(seed: int, *, smoke: bool) -> Tuple[StackConfig, int, float, int]:
    scale = SMOKE_SCALE if smoke else 1.0
    n_tasks = int(N_TASKS * scale)
    storm_at = STORM_AT_S * scale
    storm_size = max(3, int(STORM_SIZE * scale))
    stack = StackConfig(
        cluster=ClusterConfig(
            max_nodes=MAX_NODES,
            preemptible=PreemptiblePoolConfig(
                max_nodes=SPOT_MAX_NODES, grace_period_s=GRACE_S
            ),
        ),
        seed=STACK_SEED + seed,
        faults=FaultProfile(
            preemption_wave_at_s=storm_at,
            preemption_wave_size=storm_size,
            max_retries=10,
        ),
    )
    return stack, n_tasks, storm_at, storm_size


def run(seed: int = 0, *, smoke: bool = False) -> Dict[str, ExperimentResult]:
    """Every variant on the same seed; returns name -> result."""
    stack, n_tasks, _, _ = _config(seed, smoke=smoke)
    results: Dict[str, ExperimentResult] = {}
    for name, migration in VARIANTS.items():
        workload = uniform_bag(
            n_tasks,
            execute_s=EXECUTE_S,
            rng=RngRegistry(WORKLOAD_SEED + seed),
            runtime_cv=RUNTIME_CV,
        )
        # Every variant's tasks can checkpoint; only the migration
        # variants have a coordinator that exercises it.
        for task in workload:
            task.checkpoint = CHECKPOINT
        options = {"spot_policy": SpotPolicy(0.5), "spot_aware": True}
        if migration is not None:
            options["migration"] = migration
        results[name] = run_experiment(
            ExperimentSpec(
                workload=workload,
                policy="hta",
                name=f"migration-{name}",
                stack=stack,
                options=options,
            )
        )
    return results


def goodput_rate(result: ExperimentResult) -> float:
    """Goodput core×seconds per second of makespan."""
    return result.extras["goodput_core_s"] / result.makespan_s


def report(results: Dict[str, ExperimentResult], *, seed: int, smoke: bool) -> str:
    _, _, storm_at, storm_size = _config(seed, smoke=smoke)
    lines = [
        f"Preemption storm: {storm_size} spot nodes reclaimed at "
        f"t={storm_at:.0f}s ({GRACE_S:.0f}s grace; checkpoints bank "
        f"{CHECKPOINT.interval_s:.0f}s of progress, cut {CHECKPOINT.cost_s:.0f}s, "
        f"ship {CHECKPOINT.size_mb:.0f} MB)",
        "",
        f"{'variant':<18} {'makespan':>9} {'goodput/s':>10} {'wasted':>8} "
        f"{'migrated':>8} {'requeued':>8}",
    ]
    rows = {}
    for name, result in results.items():
        rate = goodput_rate(result)
        wasted = result.extras["wasted_core_s"]
        migrated = int(result.extras.get("migrations_completed", 0))
        rows[name] = (rate, wasted)
        lines.append(
            f"{name:<18} {result.makespan_s:>8.0f}s {rate:>10.2f} "
            f"{wasted:>8.0f} {migrated:>8d} {result.tasks_requeued:>8d}"
        )
    best_rate, best_wasted = rows["batched-fluid"]
    base_rate, base_wasted = rows["kill-and-requeue"]
    lines.append("")
    lines.append(
        f"batched-fluid vs kill-and-requeue: goodput {best_rate:.2f} vs "
        f"{base_rate:.2f} ({(best_rate / base_rate - 1) * 100:+.1f}%), "
        f"wasted {best_wasted:.0f} vs {base_wasted:.0f} core-s "
        f"({(best_wasted / base_wasted - 1) * 100 if base_wasted else 0.0:+.1f}%)"
    )
    if seed == 0 and not smoke:
        # The contract the acceptance gate checks, at the validated seed.
        assert best_rate > base_rate, (
            f"batched-fluid goodput {best_rate} not above "
            f"kill-and-requeue {base_rate}"
        )
        assert best_wasted < base_wasted, (
            f"batched-fluid wasted {best_wasted} not below "
            f"kill-and-requeue {base_wasted}"
        )
        lines.append(
            "contract holds: batched-fluid goodput strictly higher, "
            "wasted core-seconds strictly lower"
        )
    return "\n".join(lines)


def main(seed: int = 0, *, smoke: bool = False) -> str:
    out = report(run(seed, smoke=smoke), seed=seed, smoke=smoke)
    print(out)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
