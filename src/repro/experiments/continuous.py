"""Continuous-operation experiments: a stream of workflows on one stack.

One master / one autoscaler, many workflow instances arriving over time
(the paper's "long period of time" facility scenario). The autoscaler
never sees a clean start or end — demand is a superposition of
overlapping DAGs — which stresses exactly the feedback structure HTA
builds: category statistics persist across workflow instances, so later
arrivals skip the probing cost entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover — policy configs are imported lazily
    from repro.baselines.queue_scaler import QueueScalerConfig
    from repro.forecast.scaler import PredictiveScalerConfig
    from repro.forecast.selector import OnlineModelSelector

from repro.cluster.hpa import HorizontalPodAutoscaler, HpaConfig
from repro.cluster.pod import PodSpec
from repro.cluster.replicaset import WorkerReplicaSet
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentTimeout,
    StackConfig,
    _collect,
    _make_accountant,
    _Stack,
)
from repro.hta.inittime import InitTimeTracker
from repro.hta.operator import HtaConfig, HtaOperator
from repro.hta.provisioner import WorkerProvisioner
from repro.makeflow.manager import WorkflowManager
from repro.workloads.arrivals import WorkflowArrival, total_tasks


@dataclass
class ContinuousResult:
    """An :class:`ExperimentResult` plus stream-level statistics."""

    result: ExperimentResult
    workflows: int
    workflow_makespans: List[float]
    last_finish_s: float

    @property
    def mean_workflow_makespan_s(self) -> float:
        if not self.workflow_makespans:
            return 0.0
        return sum(self.workflow_makespans) / len(self.workflow_makespans)

    @property
    def throughput_tasks_per_hour(self) -> float:
        if self.last_finish_s <= 0:
            return 0.0
        return self.result.tasks_completed / (self.last_finish_s / 3600.0)

    def summary(self) -> str:
        return (
            f"{self.result.summary()} | {self.workflows} workflows, "
            f"mean makespan {self.mean_workflow_makespan_s:.0f}s, "
            f"{self.throughput_tasks_per_hour:.0f} tasks/h"
        )


class _StreamDriver:
    """Starts each workflow at its arrival time; tracks completion."""

    def __init__(self, stack: _Stack, submitter, arrivals: Sequence[WorkflowArrival]):
        if not arrivals:
            raise ValueError("need at least one arrival")
        self.stack = stack
        self.submitter = submitter
        self.managers: List[WorkflowManager] = []
        self.remaining = len(arrivals)
        self.on_all_done = None
        for arrival in sorted(arrivals, key=lambda a: a.time_s):
            manager = WorkflowManager(
                stack.engine, arrival.graph, submitter, recorder=stack.recorder
            )
            manager.done_signal.add_waiter(self._one_done)
            self.managers.append(manager)
            stack.engine.call_at(arrival.time_s, manager.start)

    def _one_done(self, _manager) -> None:
        self.remaining -= 1
        if self.remaining == 0 and self.on_all_done is not None:
            self.on_all_done()

    @property
    def all_done(self) -> bool:
        return self.remaining == 0

    @property
    def any_failed(self) -> bool:
        return any(m.failed for m in self.managers)

    def drive(self, accountant, limit: float) -> None:
        engine = self.stack.engine
        accountant.start()
        while not self.all_done:
            if self.any_failed:
                raise ExperimentTimeout("a workflow in the stream failed")
            if engine.now >= limit:
                raise ExperimentTimeout(
                    f"stream incomplete at t={engine.now:.0f}s "
                    f"({self.remaining} workflows outstanding)"
                )
            if engine.peek() is None:
                raise ExperimentTimeout("event queue drained mid-stream")
            engine.run(until=min(limit, engine.now + 60.0))
        accountant.stop()

    def stream_stats(self) -> Dict[str, float]:
        makespans = [m.makespan for m in self.managers if m.makespan is not None]
        finishes = [m.finish_time for m in self.managers if m.finish_time is not None]
        return {
            "makespans": makespans,  # type: ignore[dict-item]
            "last_finish": max(finishes) if finishes else 0.0,
        }


def run_continuous_hta(
    arrivals: Sequence[WorkflowArrival],
    *,
    stack_config: Optional[StackConfig] = None,
    hta_config: Optional[HtaConfig] = None,
    seed: Optional[int] = None,
    name: str = "HTA-stream",
) -> ContinuousResult:
    """Run an arrival stream under HTA (shared monitor across workflows)."""
    cfg = stack_config if stack_config is not None else StackConfig()
    if seed is not None:
        cfg = replace(cfg, seed=seed)
    stack = _Stack(cfg, estimator_kind="monitor")
    if hta_config is None:
        hta_config = HtaConfig(
            initial_workers=cfg.cluster.min_nodes, max_workers=cfg.cluster.max_nodes
        )
    provisioner = WorkerProvisioner(
        stack.engine,
        stack.cluster.api,
        stack.runtime,
        image=cfg.image,
        worker_request=stack.worker_request,
    )
    tracker = InitTimeTracker(stack.cluster.api, prior_s=160.0, selector_label="wq-worker")
    operator = HtaOperator(
        stack.engine, stack.master, provisioner, tracker, hta_config, stack.recorder
    )
    driver = _StreamDriver(stack, operator, arrivals)
    driver.on_all_done = operator.notify_no_more_jobs
    accountant = _make_accountant(stack, shortage_extra=operator.held_cores)
    operator.start()
    driver.drive(accountant, cfg.max_sim_time_s)
    stats = driver.stream_stats()
    graph_total = total_tasks(arrivals)
    result = _collect(
        name,
        stack,
        driver.managers[0],
        accountant,
        arrivals[0].graph,
        plans=float(len(operator.plans)),
    )
    result.tasks_total = graph_total
    result.makespan_s = stats["last_finish"]
    return ContinuousResult(
        result=result,
        workflows=len(arrivals),
        workflow_makespans=stats["makespans"],
        last_finish_s=stats["last_finish"],
    )


def run_continuous_queue_scaler(
    arrivals: Sequence[WorkflowArrival],
    *,
    stack_config: Optional[StackConfig] = None,
    scaler_config: Optional["QueueScalerConfig"] = None,
    tasks_per_replica: float = 3.0,
    min_replicas: Optional[int] = None,
    max_replicas: Optional[int] = None,
    seed: Optional[int] = None,
    name: str = "KEDA-stream",
) -> ContinuousResult:
    """Run an arrival stream under the KEDA-style queue-length baseline."""
    from repro.baselines.queue_scaler import QueueLengthAutoscaler, QueueScalerConfig

    cfg = stack_config if stack_config is not None else StackConfig()
    if seed is not None:
        cfg = replace(cfg, seed=seed)
    stack = _Stack(cfg, estimator_kind="monitor")
    request = stack.worker_request

    def pod_spec(pod_name: str) -> PodSpec:
        return PodSpec(cfg.image, request, labels={"app": "wq-worker"})

    replicaset = WorkerReplicaSet(stack.engine, stack.cluster.api, "wq-workers", pod_spec)
    if scaler_config is None:
        scaler_config = QueueScalerConfig(
            tasks_per_replica=tasks_per_replica,
            min_replicas=min_replicas if min_replicas is not None else cfg.cluster.min_nodes,
            max_replicas=max_replicas if max_replicas is not None else cfg.cluster.max_nodes,
        )
    scaler = QueueLengthAutoscaler(
        stack.engine, stack.master, replicaset, scaler_config, stack.recorder
    )
    driver = _StreamDriver(stack, stack.master, arrivals)
    accountant = _make_accountant(stack)
    driver.drive(accountant, cfg.max_sim_time_s)
    scaler.stop()
    stats = driver.stream_stats()
    result = _collect(
        name,
        stack,
        driver.managers[0],
        accountant,
        arrivals[0].graph,
        scale_events=float(scaler.scale_events),
        pods_deleted=float(replicaset.pods_deleted),
    )
    result.tasks_total = total_tasks(arrivals)
    result.makespan_s = stats["last_finish"]
    return ContinuousResult(
        result=result,
        workflows=len(arrivals),
        workflow_makespans=stats["makespans"],
        last_finish_s=stats["last_finish"],
    )


def run_continuous_predictive(
    arrivals: Sequence[WorkflowArrival],
    *,
    stack_config: Optional[StackConfig] = None,
    scaler_config: Optional["PredictiveScalerConfig"] = None,
    selector: Optional["OnlineModelSelector"] = None,
    seed: Optional[int] = None,
    name: str = "Predictive-stream",
) -> ContinuousResult:
    """Run an arrival stream under the forecast-driven predictive scaler.

    The stream setting is where prediction earns its keep: recurring
    arrivals give the model pool a pattern to learn, so the pool is
    already growing when the next burst lands instead of reacting one
    full initialization cycle after it. Pass a custom ``selector`` to
    shape the model pool (e.g. an AR order spanning the arrival period).
    """
    from repro.forecast.scaler import PredictiveScaler, PredictiveScalerConfig

    cfg = stack_config if stack_config is not None else StackConfig()
    if seed is not None:
        cfg = replace(cfg, seed=seed)
    stack = _Stack(cfg, estimator_kind="monitor")
    if scaler_config is None:
        scaler_config = PredictiveScalerConfig(
            min_workers=cfg.cluster.min_nodes, max_workers=cfg.cluster.max_nodes
        )
    provisioner = WorkerProvisioner(
        stack.engine,
        stack.cluster.api,
        stack.runtime,
        image=cfg.image,
        worker_request=stack.worker_request,
        name_prefix="pred-worker",
    )
    tracker = InitTimeTracker(stack.cluster.api, prior_s=160.0, selector_label="wq-worker")
    scaler = PredictiveScaler(
        stack.engine,
        stack.master,
        provisioner,
        tracker,
        scaler_config,
        stack.recorder,
        selector=selector,
    )
    driver = _StreamDriver(stack, stack.master, arrivals)
    accountant = _make_accountant(stack)
    driver.drive(accountant, cfg.max_sim_time_s)
    scaler.stop()
    stats = driver.stream_stats()
    result = _collect(
        name,
        stack,
        driver.managers[0],
        accountant,
        arrivals[0].graph,
        scale_events=float(scaler.scale_events),
        decisions=float(scaler.decisions),
        drains=float(provisioner.drains_requested),
    )
    result.tasks_total = total_tasks(arrivals)
    result.makespan_s = stats["last_finish"]
    return ContinuousResult(
        result=result,
        workflows=len(arrivals),
        workflow_makespans=stats["makespans"],
        last_finish_s=stats["last_finish"],
    )


def run_continuous_hpa(
    arrivals: Sequence[WorkflowArrival],
    *,
    target_cpu: float = 0.2,
    stack_config: Optional[StackConfig] = None,
    min_replicas: Optional[int] = None,
    max_replicas: Optional[int] = None,
    seed: Optional[int] = None,
    name: Optional[str] = None,
) -> ContinuousResult:
    """Run an arrival stream under the HPA baseline."""
    cfg = stack_config if stack_config is not None else StackConfig()
    if seed is not None:
        cfg = replace(cfg, seed=seed)
    stack = _Stack(cfg, estimator_kind="monitor")
    request = stack.worker_request

    def pod_spec(pod_name: str) -> PodSpec:
        return PodSpec(cfg.image, request, labels={"app": "wq-worker"})

    replicaset = WorkerReplicaSet(stack.engine, stack.cluster.api, "wq-workers", pod_spec)
    hpa = HorizontalPodAutoscaler(
        stack.engine,
        stack.cluster.metrics,
        replicaset,
        HpaConfig(
            target_cpu_utilization=target_cpu,
            min_replicas=min_replicas if min_replicas is not None else cfg.cluster.min_nodes,
            max_replicas=max_replicas if max_replicas is not None else cfg.cluster.max_nodes,
        ),
        stack.recorder,
    )
    driver = _StreamDriver(stack, stack.master, arrivals)
    accountant = _make_accountant(stack)
    driver.drive(accountant, cfg.max_sim_time_s)
    hpa.stop()
    stats = driver.stream_stats()
    result = _collect(
        name if name is not None else f"HPA-{int(target_cpu * 100)}%-stream",
        stack,
        driver.managers[0],
        accountant,
        arrivals[0].graph,
        scale_events=float(hpa.scale_events),
    )
    result.tasks_total = total_tasks(arrivals)
    result.makespan_s = stats["last_finish"]
    return ContinuousResult(
        result=result,
        workflows=len(arrivals),
        workflow_makespans=stats["makespans"],
        last_finish_s=stats["last_finish"],
    )
