"""CLI: regenerate any of the paper's figures/tables.

Usage::

    python -m repro.experiments fig2          # one figure
    python -m repro.experiments fig2 fig10    # several in one go
    python -m repro.experiments all           # everything
    python -m repro.experiments list          # registry with descriptions
    python -m repro.experiments fig10 --seed 7
    python -m repro.experiments recovery --smoke --trace-out trace.json
    python -m repro.experiments recovery --smoke --explain
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from repro.experiments import (
    failover,
    fig2,
    fig4,
    fig5,
    fig6,
    fig9,
    fig10,
    fig11,
    forecast_cmp,
    integrity,
    migration,
    perf,
    preemption,
    recovery,
    resilience,
    shards,
    soak,
)

_MODULES = {
    "failover": failover,
    "fig2": fig2,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "forecast": forecast_cmp,
    "integrity": integrity,
    "migration": migration,
    "perf": perf,
    "preemption": preemption,
    "recovery": recovery,
    "resilience": resilience,
    "shards": shards,
    "soak": soak,
}

#: Experiments whose ``main`` accepts a ``smoke=`` reduced-scale mode.
_SMOKE_CAPABLE = {
    "failover",
    "perf",
    "recovery",
    "resilience",
    "preemption",
    "migration",
    "integrity",
    "shards",
    "soak",
}

FIGURES: Dict[str, Callable[[int], str]] = {
    name: module.main for name, module in _MODULES.items()
}

#: One-line description per experiment, taken from the module docstring.
DESCRIPTIONS: Dict[str, str] = {
    name: (module.__doc__ or "").strip().splitlines()[0].rstrip(".")
    for name, module in _MODULES.items()
}


def _run_profiled(name: str, out_dir: str, run: Callable[[], object]) -> None:
    """Run one experiment under cProfile; dump binary stats plus a
    cumulative-sorted text report next to them."""
    import cProfile
    import io
    import pstats
    from pathlib import Path

    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        run()
    finally:
        profiler.disable()
        binary = directory / f"{name}.prof"
        profiler.dump_stats(binary)
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.strip_dirs().sort_stats("cumulative").print_stats(60)
        text = directory / f"{name}.prof.txt"
        text.write_text(buffer.getvalue())
        print(f"\n[profile: {binary} (+ {text.name}, top 60 by cumulative)]")


def _print_registry() -> None:
    width = max(len(name) for name in FIGURES)
    print("Available experiments:\n")
    for name in sorted(FIGURES):
        print(f"  {name:<{width}}  {DESCRIPTIONS[name]}")
    print(f"  {'all':<{width}}  every experiment above, in order")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the evaluation figures/tables of 'Autoscaling "
            "High-Throughput Workloads on Container Orchestrators' "
            "(CLUSTER 2020) on the simulated substrate."
        ),
    )
    parser.add_argument(
        "figures",
        nargs="+",
        choices=sorted(FIGURES) + ["all", "list"],
        metavar="figure",
        help=(
            "experiments to regenerate (one or more of: "
            + ", ".join(sorted(FIGURES))
            + "), 'all' for everything, or 'list' to show the registry"
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="master RNG seed")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "reduced-scale run for CI smoke checks (supported by: "
            + ", ".join(sorted(_SMOKE_CAPABLE))
            + "; ignored elsewhere)"
        ),
    )
    parser.add_argument(
        "--crash-at",
        type=float,
        default=None,
        metavar="SECONDS",
        help="recovery only: master crash time (default: 55%% of makespan)",
    )
    parser.add_argument(
        "--outage-at",
        type=float,
        default=None,
        metavar="SECONDS",
        help="recovery only: API outage start (default: 20%% of makespan)",
    )
    parser.add_argument(
        "--outage-duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="recovery only: API outage length (default: 15%% of makespan)",
    )
    parser.add_argument(
        "--runs",
        type=int,
        default=1,
        metavar="N",
        help="soak only: run N consecutive seeds starting at --seed",
    )
    parser.add_argument(
        "--migrate",
        action="store_true",
        help=(
            "soak only: enable checkpoint/restore migration (the "
            "'migrate' chaos primitive joins the schedule pool and "
            "preemption drains migrate instead of requeueing)"
        ),
    )
    parser.add_argument(
        "--integrity",
        action="store_true",
        help=(
            "soak only: enable value faults (the 'corrupt' and "
            "'black_hole' chaos primitives join the schedule pool, "
            "seeded result/checkpoint corruption arms, and the health "
            "ledger polices the workers)"
        ),
    )
    parser.add_argument(
        "--shard-crash",
        action="store_true",
        help=(
            "soak only: run the dispatch plane as 4 shards behind a "
            "foreman with a failover coordinator, and let the "
            "'shard_crash' chaos primitive (transient or permanent "
            "loss of one shard) join the schedule pool"
        ),
    )
    parser.add_argument(
        "--restart-delay",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="recovery only: crash-to-restart delay of the master",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help=(
            "record a telemetry trace of every run to PATH "
            "(.jsonl for JSON-lines, anything else for Chrome trace "
            "format, loadable in chrome://tracing / Perfetto)"
        ),
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="print the autoscaler's per-cycle decision audit after each run",
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help="perf only: enforce the regression gate against the committed baseline",
    )
    parser.add_argument(
        "--bench-out",
        metavar="DIR",
        default=None,
        help=(
            "perf/shards/failover only: result directory "
            "(default: benchmarks/results[/<name>])"
        ),
    )
    parser.add_argument(
        "--profile",
        metavar="DIR",
        nargs="?",
        const=".",
        default=None,
        help=(
            "wrap each experiment run in cProfile and dump sorted "
            "cumulative stats (<name>.prof + <name>.prof.txt) to DIR "
            "(default: current directory)"
        ),
    )
    args = parser.parse_args(argv)

    if "list" in args.figures:
        _print_registry()
        return 0

    sink = None
    if args.trace_out is not None or args.explain:
        from repro.telemetry.session import (
            TelemetryConfig,
            TraceSink,
            set_default_telemetry,
        )

        # The sink collects every run's events; it is only flushed to
        # disk when --trace-out named a path.
        sink = TraceSink(args.trace_out if args.trace_out is not None else "")
        set_default_telemetry(TelemetryConfig(enabled=True), sink)

    targets: list[str] = []
    for name in args.figures:
        expanded = sorted(FIGURES) if name == "all" else [name]
        targets.extend(n for n in expanded if n not in targets)
    for name in targets:
        started = time.time()
        print(f"\n=== {name} (seed={args.seed}) ===\n")
        kwargs = {}
        if args.smoke and name in _SMOKE_CAPABLE:
            kwargs["smoke"] = True
        if name == "soak" and args.runs != 1:
            kwargs["runs"] = args.runs
        if name == "soak" and args.migrate:
            kwargs["migrate"] = True
        if name == "soak" and args.integrity:
            kwargs["integrity"] = True
        if name == "soak" and args.shard_crash:
            kwargs["shard_crash"] = True
        if name == "recovery":
            kwargs.update(
                crash_at_s=args.crash_at,
                outage_at_s=args.outage_at,
                outage_duration_s=args.outage_duration,
                restart_delay_s=args.restart_delay,
            )
        if name == "perf":
            kwargs["gate"] = args.gate
            if args.bench_out is not None:
                kwargs["out_dir"] = args.bench_out
        if name in ("shards", "failover") and args.bench_out is not None:
            kwargs["out_dir"] = args.bench_out
        if args.profile is not None:
            _run_profiled(name, args.profile, lambda: FIGURES[name](args.seed, **kwargs))
        else:
            FIGURES[name](args.seed, **kwargs)
        print(f"\n[{name} regenerated in {time.time() - started:.1f}s wall time]")

    if sink is not None:
        if args.explain:
            from repro.telemetry.explain import decision_events, explain_decisions

            for run_name, events in sink.runs:
                if not decision_events(events):
                    continue
                print(f"\n=== decision audit: {run_name} ===\n")
                print(explain_decisions(events))
        if args.trace_out is not None:
            path = sink.flush()
            print(
                f"\n[trace: {sink.event_count} events from "
                f"{len(sink.runs)} runs -> {path}]"
            )
        from repro.telemetry.session import set_default_telemetry

        set_default_telemetry(None, None)
    return 0


if __name__ == "__main__":
    sys.exit(main())
