"""CLI: regenerate any of the paper's figures/tables.

Usage::

    python -m repro.experiments fig2        # one figure
    python -m repro.experiments all         # everything
    python -m repro.experiments fig10 --seed 7
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from repro.experiments import fig2, fig4, fig5, fig6, fig9, fig10, fig11

FIGURES: Dict[str, Callable[[int], str]] = {
    "fig2": fig2.main,
    "fig4": fig4.main,
    "fig5": fig5.main,
    "fig6": fig6.main,
    "fig9": fig9.main,
    "fig10": fig10.main,
    "fig11": fig11.main,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the evaluation figures/tables of 'Autoscaling "
            "High-Throughput Workloads on Container Orchestrators' "
            "(CLUSTER 2020) on the simulated substrate."
        ),
    )
    parser.add_argument(
        "figure",
        choices=sorted(FIGURES) + ["all"],
        help="which figure/table to regenerate",
    )
    parser.add_argument("--seed", type=int, default=0, help="master RNG seed")
    args = parser.parse_args(argv)

    targets = sorted(FIGURES) if args.figure == "all" else [args.figure]
    for name in targets:
        started = time.time()
        print(f"\n=== {name} (seed={args.seed}) ===\n")
        FIGURES[name](args.seed)
        print(f"\n[{name} regenerated in {time.time() - started:.1f}s wall time]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
