"""Fig 4 — worker-pod sizing study (§IV-A).

100 BLAST jobs (1.4 GB cacheable shared input, 600 KB outputs) on a
5-node GKE cluster (3 vCPU / 12 GB each), three configurations:

* **(a) fine-grained** — 15 worker-pods × 1 vCPU / 4 GB: high parallelism
  but 15 caches × 1.4 GB over the shared master link;
* **(b) coarse-grained, unknown resources** — 5 node-sized worker-pods,
  requirements unknown → Work Queue conservatively runs **one job per
  worker** (§III-A): great bandwidth, terrible CPU utilization;
* **(c) coarse-grained, known resources** — same pods, requirements
  declared → 3 jobs per worker: best of both.

Paper: runtimes 411 / 632 / 330 s; average bandwidth 278 / 452 / 466
MB/s; CPU usage 87.2 / 32.4 / 85.7 %.
"""

from __future__ import annotations

from typing import Dict

from repro.cluster.cluster import ClusterConfig
from repro.cluster.node import MachineType
from repro.cluster.resources import ResourceVector
from repro.experiments.report import paper_vs_measured
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentSpec,
    StackConfig,
    run_experiment,
)
from repro.workloads.blast import blast_sizing_study

PAPER = {
    "runtime_fine_s": 411.0,
    "runtime_coarse_unknown_s": 632.0,
    "runtime_coarse_known_s": 330.0,
    "bandwidth_fine_mbps": 278.4,
    "bandwidth_coarse_unknown_mbps": 452.1,
    "bandwidth_coarse_known_mbps": 466.2,
    "cpu_fine": 0.8721,
    "cpu_coarse_unknown": 0.3243,
    "cpu_coarse_known": 0.8573,
}

N_TASKS = 100
EXECUTE_S = 40.0
N_NODES = 5

#: The fig-4 node shape, with a NIC that caps one stream below the link.
FIG4_MACHINE = MachineType(
    name="gke-3cpu-12gb",
    capacity=ResourceVector(cores=3, memory_mb=12 * 1024, disk_mb=100 * 1024),
    nic_bandwidth_mbps=125.0,
)

FINE_WORKER = ResourceVector(cores=1, memory_mb=4 * 1024, disk_mb=30 * 1024)
COARSE_WORKER = FIG4_MACHINE.capacity


def stack_config(seed: int = 0, *, worker: ResourceVector) -> StackConfig:
    return StackConfig(
        cluster=ClusterConfig(
            machine_type=FIG4_MACHINE,
            min_nodes=N_NODES,
            max_nodes=N_NODES,  # fixed cluster: this is a sizing study
        ),
        link_capacity_mbps=500.0,
        # Many concurrent streams pay protocol overhead (§III-A's "extra
        # network overheads" of the fine-grained configuration).
        per_stream_overhead=0.05,
        worker_request=worker,
        seed=seed,
    )


def run_fine(seed: int = 0) -> ExperimentResult:
    """(a) 15 × 1-vCPU workers, resources declared."""
    return run_experiment(
        ExperimentSpec(
            blast_sizing_study(N_TASKS, execute_s=EXECUTE_S, declared=True),
            policy="static",
            name="fine-grained",
            stack=stack_config(seed, worker=FINE_WORKER),
            options={"n_workers": 15, "estimator": "declared"},
        )
    )


def run_coarse_unknown(seed: int = 0) -> ExperimentResult:
    """(b) 5 node-sized workers, requirements unknown → 1 job/worker."""
    return run_experiment(
        ExperimentSpec(
            blast_sizing_study(N_TASKS, execute_s=EXECUTE_S, declared=False),
            policy="static",
            name="coarse-unknown",
            stack=stack_config(seed, worker=COARSE_WORKER),
            options={"n_workers": N_NODES, "estimator": "conservative"},
        )
    )


def run_coarse_known(seed: int = 0) -> ExperimentResult:
    """(c) 5 node-sized workers, requirements known → 3 jobs/worker."""
    return run_experiment(
        ExperimentSpec(
            blast_sizing_study(N_TASKS, execute_s=EXECUTE_S, declared=True),
            policy="static",
            name="coarse-known",
            stack=stack_config(seed, worker=COARSE_WORKER),
            options={"n_workers": N_NODES, "estimator": "declared"},
        )
    )


def run(seed: int = 0) -> Dict[str, ExperimentResult]:
    return {
        "fine-grained": run_fine(seed),
        "coarse-unknown": run_coarse_unknown(seed),
        "coarse-known": run_coarse_known(seed),
    }


def report(results: Dict[str, ExperimentResult]) -> str:
    sections = []
    header = (
        f"{'configuration':<16} {'runtime (s)':>12} {'bandwidth (MB/s)':>18} "
        f"{'CPU usage':>10}"
    )
    lines = ["Fig 4: runtime statistics by worker-pod configuration", header, "-" * len(header)]
    for name, r in results.items():
        lines.append(
            f"{name:<16} {r.makespan_s:>12.0f} "
            f"{r.extras['mean_bandwidth_mbps']:>18.1f} "
            f"{r.accounting.utilization:>9.1%}"
        )
    sections.append("\n".join(lines))
    rows = [
        ("fine runtime (s)", PAPER["runtime_fine_s"], results["fine-grained"].makespan_s),
        ("coarse-unknown runtime (s)", PAPER["runtime_coarse_unknown_s"], results["coarse-unknown"].makespan_s),
        ("coarse-known runtime (s)", PAPER["runtime_coarse_known_s"], results["coarse-known"].makespan_s),
        ("fine bandwidth (MB/s)", PAPER["bandwidth_fine_mbps"], results["fine-grained"].extras["mean_bandwidth_mbps"]),
        ("coarse-unknown bandwidth (MB/s)", PAPER["bandwidth_coarse_unknown_mbps"], results["coarse-unknown"].extras["mean_bandwidth_mbps"]),
        ("coarse-known bandwidth (MB/s)", PAPER["bandwidth_coarse_known_mbps"], results["coarse-known"].extras["mean_bandwidth_mbps"]),
        ("fine CPU util", PAPER["cpu_fine"], results["fine-grained"].accounting.utilization),
        ("coarse-unknown CPU util", PAPER["cpu_coarse_unknown"], results["coarse-unknown"].accounting.utilization),
        ("coarse-known CPU util", PAPER["cpu_coarse_known"], results["coarse-known"].accounting.utilization),
    ]
    sections.append(paper_vs_measured(rows, title="Fig 4: paper vs measured"))
    return "\n\n".join(sections)


def main(seed: int = 0) -> str:
    out = report(run(seed))
    print(out)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
