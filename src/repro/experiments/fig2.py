"""Fig 2 — workload runtime statistics under different HPA target CPU loads.

§III-B runs the 200-job BLAST workload on a ≤15-node GKE cluster under
HPA with target CPU 10 %, 50 %, and 99 % ("Config-10/50/99") and tracks
four series per configuration: connected worker-pods, idle worker-pods,
the HPA-desired count, and the ideal count. Paper findings:

* Config-10 and Config-50 finish in ~1294 s / ~1304 s with ~68 % / ~65 %
  CPU usage, both reaching the 15-node cap;
* Config-99 **never scales up** (utilization/target ≈ 1 is inside HPA's
  tolerance band) and takes 4682 s;
* the ideal schedule would finish in 240 s.

Worker pods are 1-core here ("the resource requirements of individual
jobs are known in advance"), so HPA has 60 pod slots over 15 nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.cluster.cluster import ClusterConfig
from repro.cluster.node import N1_STANDARD_4
from repro.cluster.resources import ResourceVector
from repro.experiments.report import ascii_chart, paper_vs_measured
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentSpec,
    StackConfig,
    run_experiment,
)
from repro.wq.task import FileSpec, Task
from repro.workloads.blast import ALIGN_FOOTPRINT

#: Paper-reported values (seconds / percent).
PAPER = {
    "runtime_config10_s": 1294.0,
    "runtime_config50_s": 1304.0,
    "runtime_config99_s": 4682.0,
    "runtime_ideal_s": 240.0,
    "cpu_config10": 0.683,
    "cpu_config50": 0.652,
}

N_TASKS = 200
EXECUTE_S = 60.0
WORKER_REQUEST = ResourceVector(cores=1, memory_mb=3 * 1024, disk_mb=20 * 1024)
MAX_NODES = 15
PODS_PER_NODE = 4
MAX_PODS = MAX_NODES * PODS_PER_NODE


def stack_config(seed: int = 0, *, min_nodes: int = 3) -> StackConfig:
    return StackConfig(
        cluster=ClusterConfig(
            machine_type=N1_STANDARD_4,
            min_nodes=min_nodes,
            max_nodes=MAX_NODES,
            # GKE provisions in visible batches (§IV-B); a modest cap
            # reproduces the staged ramp of the paper's traces.
            max_concurrent_reservations=2,
        ),
        worker_request=WORKER_REQUEST,
        seed=seed,
    )


def make_workload() -> list:
    """200 parallel BLAST jobs "with each of them having the same size of
    input data" — a 100 MB cacheable index plus a small query chunk (the
    1.4 GB shareable-database variant belongs to fig 4)."""
    index = FileSpec("blast-index", 100.0, cacheable=True)
    return [
        Task(
            "align",
            execute_s=EXECUTE_S,
            footprint=ALIGN_FOOTPRINT,
            declared=ALIGN_FOOTPRINT,
            inputs=(index, FileSpec(f"query.{i:04d}", 7.0)),
            outputs=(FileSpec(f"hits.{i:04d}", 0.6),),
        )
        for i in range(N_TASKS)
    ]


def run_config(target_cpu: float, seed: int = 0) -> ExperimentResult:
    """One HPA configuration over the 200-job BLAST workload."""
    return run_experiment(
        ExperimentSpec(
            make_workload(),
            policy="hpa",
            name=f"Config-{int(target_cpu * 100)}",
            stack=stack_config(seed),
            options={
                "target_cpu": target_cpu,
                "min_replicas": 3,
                "max_replicas": MAX_PODS,
            },
        )
    )


def run_ideal(seed: int = 0) -> ExperimentResult:
    """The ideal reference: all 60 worker slots pre-provisioned."""
    return run_experiment(
        ExperimentSpec(
            make_workload(),
            policy="static",
            name="ideal",
            stack=stack_config(seed, min_nodes=MAX_NODES),
            options={"n_workers": MAX_PODS, "estimator": "declared"},
        )
    )


def run(seed: int = 0) -> Dict[str, ExperimentResult]:
    return {
        "Config-10": run_config(0.10, seed),
        "Config-50": run_config(0.50, seed),
        "Config-99": run_config(0.99, seed),
        "ideal": run_ideal(seed),
    }


def report(results: Dict[str, ExperimentResult]) -> str:
    sections = []
    for name, result in results.items():
        if name == "ideal":
            continue
        t0, t1 = result.accountant.window()
        series = {
            "connected": result.series("workers_connected"),
            "idle": result.series("workers_idle"),
            "hpa-desired": result.series("hpa_desired"),
            "ideal": result.series("ideal_workers"),
        }
        sections.append(
            ascii_chart(series, t0, t1, title=f"Fig 2 ({name}): worker-pod counts")
        )
        sections.append(result.summary())
    rows = [
        ("Config-10 runtime (s)", PAPER["runtime_config10_s"], results["Config-10"].makespan_s),
        ("Config-50 runtime (s)", PAPER["runtime_config50_s"], results["Config-50"].makespan_s),
        ("Config-99 runtime (s)", PAPER["runtime_config99_s"], results["Config-99"].makespan_s),
        ("ideal runtime (s)", PAPER["runtime_ideal_s"], results["ideal"].makespan_s),
        ("Config-10 CPU util", PAPER["cpu_config10"], results["Config-10"].accounting.utilization),
        ("Config-50 CPU util", PAPER["cpu_config50"], results["Config-50"].accounting.utilization),
    ]
    sections.append(paper_vs_measured(rows, title="Fig 2: paper vs measured"))
    return "\n\n".join(sections)


def main(seed: int = 0) -> str:
    out = report(run(seed))
    print(out)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
