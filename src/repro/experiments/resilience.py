"""Resilience — three policies under task, node, and provisioning faults.

Beyond the paper: the substrate the paper measured was healthy. This
experiment runs the same two-category workload under HTA, HPA, and the
predictive scaler twice each — once fault-free, once under a fixed
:class:`~repro.experiments.runner.FaultProfile` — and reports what the
faults cost: **goodput** vs **wasted** core×seconds, and the **makespan
degradation** of the faulty run against its same-seed fault-free twin.

The default profile layers every fault class at once:

* per-attempt task failures and resource-exhaustion kills (the latter
  escalate the category's allocation, which HTA then plans with);
* random node crashes throughout the run (workers die mid-task);
* a boot-failure window (a fraction of VM reservations never join) and
  an image-pull stall window (degraded registry) early in the run,
  which the drain-based policies absorb through pending-pod timeouts,
  backoff retries, and the provisioner's circuit breaker.

Everything draws from named seeded streams, so a given seed replays
bit-for-bit — the resilience benchmark asserts exactly that.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.cluster.cluster import ClusterConfig
from repro.cluster.node import N1_STANDARD_4_RESERVED
from repro.cluster.resources import ResourceVector
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentSpec,
    FaultProfile,
    StackConfig,
    run_experiment,
)
from repro.metrics.resilience import ResilienceSummary, format_resilience_table
from repro.sim.rng import RngRegistry
from repro.workloads.synthetic import uniform_bag

#: (category, count, mean execute_s, runtime cv, footprint) — undeclared,
#: so the monitor learns both categories and exhaustion escalation is
#: observable. The "sim" category's lognormal runtimes produce genuine
#: stragglers for the speculation layer to chase.
SPEC = (
    ("sim", 48, 90.0, 0.6, ResourceVector(1, 1024, 1024)),
    ("reduce", 16, 180.0, 0.0, ResourceVector(2, 2048, 1024)),
)
SMOKE_SPEC = (
    ("sim", 12, 90.0, 0.6, ResourceVector(1, 1024, 1024)),
    ("reduce", 4, 180.0, 0.0, ResourceVector(2, 2048, 1024)),
)

MIN_NODES = 2
MAX_NODES = 10

#: The default fault profile of the resilience evaluation. ``max_retries``
#: is raised above the Work Queue default because HPA's scale-down kills
#: count against the same retry budget as injected faults.
DEFAULT_PROFILE = FaultProfile(
    task_failure_prob=0.08,
    task_exhaustion_prob=0.05,
    exhaustion_factor=1.6,
    max_retries=10,
    node_crash_interval_s=1500.0,
    boot_failure_prob=0.3,
    boot_failure_duration_s=900.0,
    pull_stall_factor=3.0,
    pull_stall_duration_s=600.0,
)

#: Gentler and shorter — the CI smoke check.
SMOKE_PROFILE = FaultProfile(
    task_failure_prob=0.08,
    task_exhaustion_prob=0.05,
    exhaustion_factor=1.6,
    max_retries=10,
    boot_failure_prob=0.3,
    boot_failure_duration_s=400.0,
    pull_stall_factor=3.0,
    pull_stall_duration_s=300.0,
)

POLICIES = ("HTA", "HPA", "Predictive")


def stack_config(
    seed: int = 0, *, faults: FaultProfile | None = None, smoke: bool = False
) -> StackConfig:
    return StackConfig(
        cluster=ClusterConfig(
            machine_type=N1_STANDARD_4_RESERVED,  # 3 allocatable cores/node
            min_nodes=MIN_NODES,
            max_nodes=MAX_NODES if not smoke else 6,
        ),
        seed=seed,
        faults=faults,
    )


def workload(smoke: bool = False, seed: int = 0):
    """The same task bag for every policy and its fault-free twin.

    Runtimes come from a workload-local registry keyed only on ``seed``,
    so the faulty run and its baseline race identical tasks.
    """
    rng = RngRegistry(seed + 7919)
    tasks = []
    for category, count, execute_s, cv, footprint in (
        SMOKE_SPEC if smoke else SPEC
    ):
        tasks.extend(
            uniform_bag(
                count,
                execute_s=execute_s,
                footprint=footprint,
                declared=False,
                category=category,
                rng=rng if cv > 0 else None,
                runtime_cv=cv,
            )
        )
    return tasks


def _run_policy(
    policy: str, cfg: StackConfig, smoke: bool
) -> ExperimentResult:
    tasks = workload(smoke, cfg.seed)
    if policy == "HTA":
        return run_experiment(
            ExperimentSpec(tasks, policy="hta", name="HTA", stack=cfg)
        )
    if policy == "HPA":
        return run_experiment(
            ExperimentSpec(
                tasks,
                policy="hpa",
                name="HPA",
                stack=cfg,
                options={"target_cpu": 0.5},
            )
        )
    if policy == "Predictive":
        return run_experiment(
            ExperimentSpec(tasks, policy="predictive", name="Predictive", stack=cfg)
        )
    raise ValueError(f"unknown policy {policy!r}")


def _summarize(
    policy: str, faulty: ExperimentResult, baseline: ExperimentResult
) -> ResilienceSummary:
    ex = faulty.extras
    return ResilienceSummary(
        policy=policy,
        makespan_s=faulty.makespan_s,
        baseline_makespan_s=baseline.makespan_s,
        goodput_core_s=ex["goodput_core_s"],
        wasted_core_s=ex["wasted_core_s"],
        tasks_completed=faulty.tasks_completed,
        tasks_total=faulty.tasks_total,
        tasks_failed=int(ex["tasks_failed"]),
        tasks_exhausted=int(ex["tasks_exhausted"]),
        escalations=int(ex["escalations"]),
        tasks_speculated=int(ex["tasks_speculated"]),
        speculation_wins=int(ex["speculation_wins"]),
        tasks_abandoned=int(ex["tasks_abandoned"]),
        nodes_killed=int(ex.get("chaos_nodes_killed", 0.0)),
        boot_failures=int(ex.get("boot_failures", 0.0)),
    )


def run(
    seed: int = 0, *, smoke: bool = False
) -> Dict[str, Tuple[ExperimentResult, ExperimentResult, ResilienceSummary]]:
    """Per policy: (faulty result, fault-free twin, summary)."""
    profile = SMOKE_PROFILE if smoke else DEFAULT_PROFILE
    out: Dict[str, Tuple[ExperimentResult, ExperimentResult, ResilienceSummary]] = {}
    for policy in POLICIES:
        baseline = _run_policy(
            policy, stack_config(seed, faults=None, smoke=smoke), smoke
        )
        faulty = _run_policy(
            policy, stack_config(seed, faults=profile, smoke=smoke), smoke
        )
        out[policy] = (faulty, baseline, _summarize(policy, faulty, baseline))
    return out


def report(
    results: Dict[str, Tuple[ExperimentResult, ExperimentResult, ResilienceSummary]],
    *,
    smoke: bool = False,
) -> str:
    profile = SMOKE_PROFILE if smoke else DEFAULT_PROFILE
    spec = SMOKE_SPEC if smoke else SPEC
    sections = []
    total = sum(count for _, count, _, _, _ in spec)
    sections.append(
        f"Workload: {total} tasks in {len(spec)} categories, "
        f"{MIN_NODES}..{6 if smoke else MAX_NODES} nodes. Fault profile: "
        f"p(fail)={profile.task_failure_prob:.0%}, "
        f"p(exhaust)={profile.task_exhaustion_prob:.0%}, "
        f"node crash ~{profile.node_crash_interval_s or 0:.0f}s, "
        f"boot-failure window p={profile.boot_failure_prob:.0%}/"
        f"{profile.boot_failure_duration_s or 0:.0f}s, "
        f"pull stall x{profile.pull_stall_factor:.0f}/"
        f"{profile.pull_stall_duration_s or 0:.0f}s"
    )
    sections.append(
        format_resilience_table([s for _, _, s in results.values()])
    )
    lines = ["Fault handling detail:"]
    for policy, (faulty, _baseline, s) in results.items():
        lines.append(
            f"  {policy:<11} {s.tasks_failed} attempt failures "
            f"({s.tasks_exhausted} exhaustion kills, {s.escalations} escalations), "
            f"{s.tasks_speculated} speculative copies ({s.speculation_wins} wins), "
            f"{s.nodes_killed} nodes crashed, {s.boot_failures} boot failures, "
            f"requeued {faulty.tasks_requeued}"
        )
    sections.append("\n".join(lines))
    abandoned = {p: s.tasks_abandoned for p, (_, _, s) in results.items()}
    if any(abandoned.values()):
        sections.append(
            "WARNING: permanently abandoned tasks: "
            + ", ".join(f"{p}={n}" for p, n in abandoned.items() if n)
        )
    else:
        sections.append(
            "All policies completed every task despite the faults "
            "(zero permanently abandoned)."
        )
    return "\n\n".join(sections)


def main(seed: int = 0, *, smoke: bool = False) -> str:
    out = report(run(seed, smoke=smoke), smoke=smoke)
    print(out)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
