"""Fig 9 — the lifecycle of a worker-pod, observed live.

Fig 9 is a state diagram: **No Available Node → No Container Image →
Worker-Pod Running → Worker-Pod Stopped**. This harness regenerates it
as an event trace from an actual cold start on the simulated cluster: a
worker pod is created with no node free, the cloud controller reserves a
machine, the kubelet pulls the image, the worker runs one task, is
drained, and the pod completes — every fig-9 state crossed, with the
timestamps HTA's init-time tracker extracts from the same events.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.images import ContainerImage
from repro.cluster.node import N1_STANDARD_4_RESERVED
from repro.cluster.pod import (
    Pod,
    REASON_FAILED_SCHEDULING,
    REASON_PULLING,
    REASON_SCHEDULED,
    REASON_STARTED,
)
from repro.cluster.resources import ResourceVector
from repro.hta.inittime import InitTimeTracker
from repro.hta.provisioner import WorkerProvisioner
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.wq.estimator import DeclaredResourceEstimator
from repro.wq.link import Link
from repro.wq.master import Master
from repro.wq.runtime import WorkerPodRuntime
from repro.wq.task import Task

#: The fig-9 states mapped to the pod events that mark their entry.
STATE_MARKERS = (
    ("No Available Node", REASON_FAILED_SCHEDULING),
    ("Scheduled", REASON_SCHEDULED),
    ("No Container Image", REASON_PULLING),
    ("Worker-Pod Running", REASON_STARTED),
)


def run(seed: int = 0) -> Tuple[Pod, float]:
    """Drive one worker pod through the full lifecycle; returns the pod
    (with its event log) and the measured initialization time."""
    engine = Engine()
    rng = RngRegistry(seed)
    cluster = Cluster(
        engine,
        rng,
        ClusterConfig(machine_type=N1_STANDARD_4_RESERVED, min_nodes=1, max_nodes=2),
    )
    link = Link(engine, 500.0)
    master = Master(engine, link, estimator=DeclaredResourceEstimator())
    runtime = WorkerPodRuntime(engine, cluster.api, cluster.kubelets, master)
    provisioner = WorkerProvisioner(
        engine,
        cluster.api,
        runtime,
        image=ContainerImage("wq-worker", 500.0),
        worker_request=N1_STANDARD_4_RESERVED.allocatable,
    )
    tracker = InitTimeTracker(cluster.api, prior_s=160.0, selector_label="wq-worker")

    # Fill the base node so the worker pod experiences "No Available Node".
    filler = provisioner.create_workers(1)[0]
    engine.run(until=30.0)
    subject = provisioner.create_workers(1)[0]
    engine.run(until=400.0)

    # One task, then a drain → Worker-Pod Stopped.
    foot = ResourceVector(1, 1024, 512)
    master.submit(Task("probe", execute_s=30.0, footprint=foot, declared=foot))
    engine.run(until=500.0)
    provisioner.drain_all()
    engine.run(until=600.0)
    if tracker.latest_s is None:
        raise RuntimeError("cold start never completed")
    return subject, tracker.latest_s


def lifecycle_trace(pod: Pod) -> List[Tuple[float, str, str]]:
    """(time, fig-9 state, detail) rows from the pod's event log."""
    rows: List[Tuple[float, str, str]] = []
    for state, reason in STATE_MARKERS:
        ev = pod.last_event(reason)
        if ev is not None:
            rows.append((ev.time, state, ev.message))
    if pod.finished_time is not None:
        rows.append((pod.finished_time, "Worker-Pod Stopped", pod.phase.value))
    # Stable sort on time only: ties keep the fig-9 state order (a pod is
    # Scheduled and starts Pulling at the same instant).
    return sorted(rows, key=lambda r: r[0])


def report(pod: Pod, init_time: float) -> str:
    lines = [f"Fig 9: lifecycle of worker-pod {pod.name!r} (cold start)"]
    created = pod.meta.creation_time
    for t, state, detail in lifecycle_trace(pod):
        suffix = f"  ({detail})" if detail else ""
        lines.append(f"  t=+{t - created:7.1f}s  {state}{suffix}")
    lines.append("")
    lines.append(
        f"Initialization time extracted by the informer tracker: "
        f"{init_time:.1f}s (creation -> Running; fig-6's measured quantity)"
    )
    return "\n".join(lines)


def main(seed: int = 0) -> str:
    pod, init_time = run(seed)
    out = report(pod, init_time)
    print(out)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
