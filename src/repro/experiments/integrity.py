"""Integrity — black-hole storm with and without blame attribution.

Beyond the paper: the paper's fault model is fail-stop — a worker dies
and its runs requeue. This experiment injects *value* faults: at the
storm time a handful of workers turn into **fast-fake black holes**,
"completing" every run in ~a second with a silently corrupted payload.
Two spot-free HTA variants face the same storm on the same seed:

* **attribution-off** — no result verification, no health ledger: the
  corrupted completions land in the done set and the black holes keep
  draining the queue (the pre-integrity baseline);
* **attribution-on** — content-digest verification rejects every
  corrupted result, and the per-worker health ledger's fast-fail
  detector quarantines the black holes, excluding them from supply so
  the autoscaler replaces them.

Raw goodput is the wrong lens — a fast-fake completion *banks* the
task's full core-seconds while producing garbage — so the report ranks
variants on **clean goodput rate**: goodput core-seconds that passed
verification (or were never corrupted) per second of makespan. The
report asserts the contract the subsystem is sold on: at the validated
seed, attribution-on finishes with **zero corrupted completions** and a
**strictly higher clean-goodput rate** than attribution-off, and
quarantines at least one worker.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Tuple

from repro.cluster.cluster import ClusterConfig
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentSpec,
    FaultProfile,
    StackConfig,
    run_experiment,
)
from repro.sim.rng import RngRegistry
from repro.workloads.synthetic import uniform_bag
from repro.wq.health import HealthConfig

#: The validated configuration: a bag of mid-length tasks on a fixed-max
#: fleet, with a storm that flips a quarter of the fleet into fast-fake
#: black holes once the run is warmed up — enough poisoned supply that
#: ignoring it visibly corrupts the done set.
N_TASKS = 200
EXECUTE_S = 120.0
RUNTIME_CV = 0.3
MAX_NODES = 16
STORM_AT_S = 240.0
STORM_SIZE = 4
FAKE_LATENCY_S = 1.0
STACK_SEED = 7
WORKLOAD_SEED = 9001

#: Variant name -> FaultProfile deltas (the storm itself is shared).
VARIANTS: Dict[str, Dict[str, object]] = {
    "attribution-off": {"verify": False, "health": None},
    "attribution-on": {"verify": True, "health": HealthConfig()},
}

SMOKE_SCALE = 0.5  # halve the workload and the storm for CI


def _config(seed: int, *, smoke: bool) -> Tuple[StackConfig, int, float, int]:
    scale = SMOKE_SCALE if smoke else 1.0
    n_tasks = int(N_TASKS * scale)
    storm_at = STORM_AT_S * scale
    storm_size = max(2, int(STORM_SIZE * scale))
    stack = StackConfig(
        cluster=ClusterConfig(max_nodes=MAX_NODES),
        seed=STACK_SEED + seed,
        faults=FaultProfile(
            max_retries=10,
            black_hole_at_s=storm_at,
            black_hole_count=storm_size,
            black_hole_mode="fast-fake",
            black_hole_latency_s=FAKE_LATENCY_S,
        ),
    )
    return stack, n_tasks, storm_at, storm_size


def run(seed: int = 0, *, smoke: bool = False) -> Dict[str, ExperimentResult]:
    """Both variants on the same seed; returns name -> result."""
    stack, n_tasks, _, _ = _config(seed, smoke=smoke)
    results: Dict[str, ExperimentResult] = {}
    for name, deltas in VARIANTS.items():
        workload = uniform_bag(
            n_tasks,
            execute_s=EXECUTE_S,
            rng=RngRegistry(WORKLOAD_SEED + seed),
            runtime_cv=RUNTIME_CV,
        )
        variant_stack = replace(stack, faults=replace(stack.faults, **deltas))
        results[name] = run_experiment(
            ExperimentSpec(
                workload=workload,
                policy="hta",
                name=f"integrity-{name}",
                stack=variant_stack,
            )
        )
    return results


def clean_goodput_rate(result: ExperimentResult) -> float:
    """Verified goodput core×seconds per second of makespan."""
    return result.extras["clean_goodput_core_s"] / result.makespan_s


def report(results: Dict[str, ExperimentResult], *, seed: int, smoke: bool) -> str:
    _, _, storm_at, storm_size = _config(seed, smoke=smoke)
    lines = [
        f"Black-hole storm: {storm_size} workers turn fast-fake at "
        f"t={storm_at:.0f}s (corrupted results delivered after "
        f"~{FAKE_LATENCY_S:.0f}s)",
        "",
        f"{'variant':<16} {'makespan':>9} {'clean/s':>8} {'corrupted':>9} "
        f"{'vfails':>7} {'quar':>5} {'poisoned':>8}",
    ]
    rows = {}
    for name, result in results.items():
        rate = clean_goodput_rate(result)
        corrupted = int(result.extras["corrupted_completes"])
        rows[name] = (rate, corrupted, int(result.extras["quarantines"]))
        lines.append(
            f"{name:<16} {result.makespan_s:>8.0f}s {rate:>8.2f} "
            f"{corrupted:>9d} {int(result.extras['verify_fails']):>7d} "
            f"{int(result.extras['quarantines']):>5d} "
            f"{int(result.extras['tasks_poisoned']):>8d}"
        )
    on_rate, on_corrupted, on_quarantines = rows["attribution-on"]
    off_rate, off_corrupted, _ = rows["attribution-off"]
    lines.append("")
    lines.append(
        f"attribution-on vs attribution-off: clean goodput {on_rate:.2f} vs "
        f"{off_rate:.2f} ({(on_rate / off_rate - 1) * 100 if off_rate else 0.0:+.1f}%), "
        f"corrupted completions {on_corrupted} vs {off_corrupted}"
    )
    if seed == 0 and not smoke:
        # The contract the acceptance gate checks, at the validated seed.
        assert on_corrupted == 0, (
            f"attribution-on let {on_corrupted} corrupted results complete"
        )
        assert off_corrupted > 0, (
            "attribution-off saw no corrupted completions — the storm "
            "never bit, so the comparison is vacuous"
        )
        assert on_rate > off_rate, (
            f"attribution-on clean goodput {on_rate} not above "
            f"attribution-off {off_rate}"
        )
        assert on_quarantines >= 1, "attribution-on never quarantined a worker"
        lines.append(
            "contract holds: attribution-on clean goodput strictly higher "
            "with zero corrupted completions"
        )
    return "\n".join(lines)


def main(seed: int = 0, *, smoke: bool = False) -> str:
    out = report(run(seed, smoke=smoke), seed=seed, smoke=smoke)
    print(out)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
