"""Fig 6 — GKE resource-initialization latency.

§IV-B: "we measure the resource initialization time (including machine
reservation and container pulling time) by creating pods that have
resource requirements which cannot be met by existing nodes. We ran the
benchmark 10 times on GKE and found that the resource initialization
latency alters little (mean: 157.4 seconds, standard deviation: 4.2
seconds)."

Each trial uses a fresh simulated cluster with zero spare nodes, creates
a pod that cannot fit, and measures creation→ready through the same
informer-based tracker HTA uses in production — so this doubles as an
integration test of the fig-9 lifecycle plumbing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.images import ContainerImage
from repro.cluster.node import N1_STANDARD_4
from repro.cluster.pod import Pod, PodSpec
from repro.experiments.report import paper_vs_measured
from repro.hta.inittime import InitTimeTracker
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry

PAPER = {"mean_s": 157.4, "std_s": 4.2, "trials": 10}


@dataclass(frozen=True, slots=True)
class InitLatencyResult:
    samples: List[float]

    @property
    def mean_s(self) -> float:
        return sum(self.samples) / len(self.samples)

    @property
    def std_s(self) -> float:
        m = self.mean_s
        return math.sqrt(sum((x - m) ** 2 for x in self.samples) / len(self.samples))


def run_trial(seed: int) -> float:
    """One cold-start: a pod that forces a node reservation + image pull."""
    engine = Engine()
    rng = RngRegistry(seed)
    cluster = Cluster(
        engine,
        rng,
        ClusterConfig(machine_type=N1_STANDARD_4, min_nodes=0, max_nodes=1),
    )
    tracker = InitTimeTracker(cluster.api, prior_s=1.0)
    pod = Pod(
        "probe",
        PodSpec(ContainerImage("wq-worker", 500.0), N1_STANDARD_4.allocatable),
    )
    cluster.api.create(pod)
    engine.run(until=1200.0)
    if tracker.latest_s is None:
        raise RuntimeError("probe pod never became ready within 1200 s")
    return tracker.latest_s


def run(seed: int = 0, trials: int = 10) -> InitLatencyResult:
    return InitLatencyResult([run_trial(seed * 1000 + i) for i in range(trials)])


def report(result: InitLatencyResult) -> str:
    lines = [
        "Fig 6: resource initialization latency "
        f"({len(result.samples)} trials)",
        "  " + "  ".join(f"{s:6.1f}" for s in result.samples),
    ]
    rows = [
        ("init latency mean (s)", PAPER["mean_s"], result.mean_s),
        ("init latency std (s)", PAPER["std_s"], result.std_s),
    ]
    lines.append("")
    lines.append(paper_vs_measured(rows, title="Fig 6: paper vs measured"))
    return "\n".join(lines)


def main(seed: int = 0) -> str:
    out = report(run(seed))
    print(out)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
