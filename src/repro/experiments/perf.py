"""Perf — the macro-benchmark sweep over the scaling ladder.

Beyond the paper: measures the *simulator itself*. Runs the named
scenario ladder from :mod:`repro.perf.scenarios` (1k/10k/100k tasks x
100/1k/10k nodes under ``hta``/``hpa``/``predictive``), writes one
result directory per run plus a machine-readable ``BENCH_PERF.json``,
and — when a committed baseline exists — enforces the regression gate
(>20% sim-s/wall-s slowdown or fixed-seed event-count drift fails).

Usage::

    python -m repro.experiments perf                 # full ladder
    python -m repro.experiments perf --smoke         # smallest rung only
    python -m repro.experiments perf --gate          # + regression gate

``--smoke`` runs the single ``ladder-1k-100-hta`` scenario (the CI
job); the full sweep wall-boxes each run, so even the 100k-task rung is
bounded. Speedups against the committed pre-optimization capture
(``benchmarks/baselines/PRE_OPTIMIZATION.json``) are folded into the
report when that file is present.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.perf.bench import BenchConfig, run_bench
from repro.perf.gate import check_regression, load_report
from repro.perf.scenarios import LADDER, SMOKE_SCENARIO, scenario_by_name

#: Repository root (src/repro/experiments/perf.py -> three parents up).
_ROOT = Path(__file__).resolve().parents[3]
BASELINE_PATH = _ROOT / "benchmarks" / "baselines" / "BENCH_PERF_BASELINE.json"
PRE_OPTIMIZATION_PATH = (
    _ROOT / "benchmarks" / "baselines" / "PRE_OPTIMIZATION.json"
)
DEFAULT_OUT_DIR = _ROOT / "benchmarks" / "results"


def main(
    seed: int = 0,
    *,
    smoke: bool = False,
    gate: bool = False,
    out_dir: Optional[str] = None,
    max_wall_s: Optional[float] = None,
) -> str:
    """Run the sweep; returns the rendered table. ``seed`` is accepted
    for CLI uniformity but scenarios pin their own seeds — a benchmark
    that moved its workload between runs would gate nothing."""
    del seed
    scenarios = (
        [scenario_by_name(SMOKE_SCENARIO)] if smoke else list(LADDER)
    )
    config = BenchConfig(
        scenarios=scenarios,
        out_dir=Path(out_dir) if out_dir is not None else DEFAULT_OUT_DIR,
        max_wall_s=max_wall_s if max_wall_s is not None else (60.0 if smoke else 120.0),
        reference_path=(
            PRE_OPTIMIZATION_PATH if PRE_OPTIMIZATION_PATH.exists() else None
        ),
    )
    report = run_bench(config)
    out = report.table()
    print(out)
    print(f"\n[BENCH_PERF.json -> {Path(config.out_dir) / 'BENCH_PERF.json'}]")
    if gate:
        if not BASELINE_PATH.exists():
            raise SystemExit(
                f"perf gate requested but no committed baseline at "
                f"{BASELINE_PATH}"
            )
        result = check_regression(
            {m.scenario: m.row() for m in report.runs},
            load_report(BASELINE_PATH),
        )
        print(result.describe())
        if not result.ok:
            raise SystemExit("perf gate failed; see report above")
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
