"""Fig 5 — the supply/demand relationship over initialization cycles.

The paper's fig 5 is an illustrative plot: resource demand moves
continuously while supply can only change at the boundaries of
resource-initialization cycles, so a well-informed autoscaler plans for
the *end* of the current cycle. We regenerate it from a real run: a small
HTA experiment whose demand rises and falls, with supply/demand sampled
every second and the staircase rendered at cycle resolution.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.cluster.cluster import ClusterConfig
from repro.cluster.node import N1_STANDARD_4_RESERVED
from repro.experiments.report import ascii_chart
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentSpec,
    StackConfig,
    run_experiment,
)
from repro.workloads.synthetic import staged_pipeline


def run(seed: int = 0) -> ExperimentResult:
    """A wide→narrow→wide pipeline: demand swings across stages."""
    graph = staged_pipeline([40, 6, 30], execute_s=120.0, declared=True)
    cfg = StackConfig(
        cluster=ClusterConfig(
            machine_type=N1_STANDARD_4_RESERVED,
            min_nodes=2,
            max_nodes=16,
            node_idle_timeout_s=120.0,
        ),
        seed=seed,
    )
    return run_experiment(
        ExperimentSpec(graph, policy="hta", name="fig5-hta", stack=cfg)
    )


def cycle_staircase(result: ExperimentResult, cycle_s: float = 160.0) -> List[Tuple[float, float, float]]:
    """(t, supply, demand) at initialization-cycle boundaries."""
    t0, t1 = result.accountant.window()
    points = []
    t = t0
    while t <= t1:
        points.append(
            (
                t,
                result.series("supply").value_at(t),
                result.series("demand").value_at(t),
            )
        )
        t += cycle_s
    return points


def report(result: ExperimentResult) -> str:
    t0, t1 = result.accountant.window()
    chart = ascii_chart(
        {
            "supply": result.series("supply"),
            "demand": result.series("demand"),
            "in-use": result.series("in_use"),
        },
        t0,
        t1,
        title="Fig 5: resource supply vs demand over initialization cycles",
    )
    stairs = cycle_staircase(result)
    lines = [chart, "", "Cycle boundaries (t, supply, demand):"]
    lines.extend(f"  t={t:7.0f}s  supply={s:6.1f}  demand={d:6.1f}" for t, s, d in stairs)
    lines.append("")
    lines.append(result.summary())
    return "\n".join(lines)


def main(seed: int = 0) -> str:
    out = report(run(seed))
    print(out)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
