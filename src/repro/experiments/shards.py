"""Shards — the sharded data plane's scaling contrast and HTA fidelity.

Beyond the paper: measures the dispatch plane itself. A single
:class:`~repro.wq.master.Master` walks its whole ready queue on every
completion, so with a million queued tasks each dispatch pass costs a
million iterations and the dispatch rate collapses to roughly
1/pass-cost regardless of how fast workers finish. The ``sharded``
policy splits the workflow across N masters behind a
:class:`~repro.wq.sharding.Foreman` so each pass walks 1/N of the
backlog.

The throughput leg quantifies exactly that: a ~1M-task synthetic bag
submitted through a foreman at 1 shard and at 4 shards (both behind a
foreman, isolating the partitioning effect from the aggregation tier's
own overhead), a fixed directly-attached worker fleet, a warmup past
worker connect and the initial capacity fill, then a wall-boxed
steady-state window counting **dispatch events per wall-second** —
journal ``dispatch``/``migrate_in`` records, the state machine's unit
of work — in total and per shard. Headline contract (enforced in the
full run): >=3x dispatch events/s at 4 shards vs 1.

The fidelity leg checks *upward* instead: the same small workload run
through the full cluster stack under plain ``hta`` and under
``sharded`` at 4 shards must produce HTA sizing decisions (pods
created, peak nodes) within a fixed tolerance — the foreman's
aggregated queue view is what the operator sizes from, and sharding
must not distort it. (The perf ladder's ``ladder-100k-10k-sharded4``
rung covers the full-stack sharded configuration under the regression
gate.)

Usage::

    python -m repro.experiments shards            # full: 1M tasks, 1 vs 4
    python -m repro.experiments shards --smoke    # CI: 100k tasks, 1 vs 2
    python -m repro.experiments shards --bench-out DIR

Writes ``BENCH_PERF.json`` (same spirit as the perf sweep's report,
with per-shard throughput folded in) to the output directory. ``--smoke``
skips the hard speedup assertion — at 2 shards the ceiling is 2x — but
still reports the contrast and runs the HTA-tolerance check.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.cluster.resources import ResourceVector
from repro.experiments.runner import run_experiment
from repro.perf.scenarios import PerfScenario
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.wq.dispatch import DispatchConfig
from repro.wq.estimator import DeclaredResourceEstimator
from repro.wq.link import Link
from repro.wq.master import Master
from repro.wq.sharding import Foreman, TaskPartitioner
from repro.wq.task import Task
from repro.wq.worker import Worker

#: Repository root (src/repro/experiments/shards.py -> three parents up).
_ROOT = Path(__file__).resolve().parents[3]
DEFAULT_OUT_DIR = _ROOT / "benchmarks" / "results" / "shards"

#: Journal operations that count as dispatch-plane work: every task
#: handed to a worker, whether fresh (``dispatch``) or resuming banked
#: checkpoint progress after a cross-shard transfer (``migrate_in``).
DISPATCH_OPS = ("dispatch", "migrate_in")

#: The headline contract: steady-state dispatch events/s at the high
#: shard count must be at least this multiple of the single-shard rate.
SPEEDUP_TARGET = 3.0

#: HTA sizing decisions under the foreman's aggregated view must stay
#: within this relative tolerance of the single-master oracle.
HTA_TOLERANCE = 0.25

#: One task's true/declared resources; the fleet is sized in whole
#: workers of ``CORES_PER_WORKER`` so the bag keeps every core busy.
FOOT = ResourceVector(cores=1, memory_mb=512, disk_mb=128)
CORES_PER_WORKER = 64


@dataclass
class ShardMeasurement:
    """One shard-count configuration's steady-state window."""

    name: str
    n_shards: int
    n_tasks: int
    wall_s: float
    sim_s: float
    engine_events: int
    dispatch_events: int
    per_shard_dispatch: List[int]
    tasks_completed: int

    @property
    def dispatch_events_per_sec(self) -> float:
        return self.dispatch_events / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def per_shard_events_per_sec(self) -> List[float]:
        if self.wall_s <= 0:
            return [0.0 for _ in self.per_shard_dispatch]
        return [n / self.wall_s for n in self.per_shard_dispatch]

    def row(self) -> Dict[str, object]:
        return {
            "scenario": self.name,
            "policy": "sharded",
            "n_shards": self.n_shards,
            "n_tasks": self.n_tasks,
            "wall_s": round(self.wall_s, 2),
            "sim_s": round(self.sim_s, 1),
            "events": self.engine_events,
            "dispatch_events": self.dispatch_events,
            "dispatch_events_per_sec": round(self.dispatch_events_per_sec, 1),
            "per_shard_dispatch": list(self.per_shard_dispatch),
            "per_shard_events_per_sec": [
                round(v, 1) for v in self.per_shard_events_per_sec
            ],
            "tasks_completed": self.tasks_completed,
        }


def _synthetic_bag(n_tasks: int, *, execute_s: float, seed: int) -> List[Task]:
    """A bag of independent CPU tasks with lognormal runtime spread.

    Built inline rather than via :func:`uniform_bag` so tasks carry no
    input/output files: file transfers serialize on the shared master
    link, which would add a shard-independent cost to the window the
    experiment wants to attribute to the dispatch plane alone."""
    rng = RngRegistry(seed + 7919)
    return [
        Task(
            "shards",
            execute_s=rng.lognormal_around("shards.exec", execute_s, 0.25),
            footprint=FOOT,
            declared=FOOT,
        )
        for _ in range(n_tasks)
    ]


def _count_dispatches(foreman: Foreman) -> List[int]:
    return [
        sum(1 for rec in shard.journal.records if rec.op in DISPATCH_OPS)
        for shard in foreman.shards
    ]


def run_dispatch_plane(
    n_shards: int,
    *,
    n_tasks: int,
    n_workers: int = 16,
    execute_s: float = 30.0,
    seed: int = 0,
    warmup_sim_s: float = 5.0,
    max_wall_s: float = 60.0,
) -> ShardMeasurement:
    """Measure one configuration's steady-state dispatch throughput.

    Builds N masters behind a foreman, attaches the worker fleet
    round-robin, submits the bag, runs the simulation to
    ``warmup_sim_s`` (covering worker connect and the initial capacity
    fill, whose one large burst is equal across configurations and
    would otherwise mask the per-completion pass cost), then drives a
    wall-boxed window and reports the dispatch-record delta.

    Partitioning is ``range`` with one contiguous id block per shard.
    Hash partitioning would interleave every shard's queue across the
    whole task arena, and the resulting cache-hostile queue walks
    charge the sharded configurations a memory-locality penalty (about
    1.5x per scanned task at a million tasks) that a real deployment —
    one master process per shard, each owning its own heap — never
    pays. Contiguous blocks keep each shard's scan in allocation order,
    the same locality the single-master baseline enjoys."""
    engine = Engine()
    link = Link(engine, 10_000.0)
    config = DispatchConfig()
    shards = [
        Master(
            engine,
            link,
            config=config,
            estimator=DeclaredResourceEstimator(),
            name=f"shard-{i}",
        )
        for i in range(n_shards)
    ]
    foreman = Foreman(
        engine,
        shards,
        partitioner=TaskPartitioner(
            n_shards,
            seed=seed,
            mode="range",
            block=max(1, -(-n_tasks // n_shards)),
        ),
    )
    capacity = ResourceVector(
        cores=CORES_PER_WORKER,
        memory_mb=CORES_PER_WORKER * FOOT.memory_mb,
        disk_mb=CORES_PER_WORKER * FOOT.disk_mb,
    )
    for i in range(n_workers):
        # Same connect latency for the whole fleet: every registration
        # lands on one tick, so the capacity fill is one coalesced
        # dispatch pass instead of n_workers full queue walks.
        Worker(
            engine,
            shards[i % n_shards],
            f"w{i}",
            capacity,
            connect_latency=1.0,
        )
    foreman.submit_many(_synthetic_bag(n_tasks, execute_s=execute_s, seed=seed))
    engine.run(until=warmup_sim_s)
    floor = _count_dispatches(foreman)
    done_floor = foreman.stats().done
    events_floor = engine.events_fired
    started = time.perf_counter()
    # Small event chunks keep the wall box tight: at a million queued
    # tasks a single dispatch pass costs ~0.3s of wall, so a coarse
    # chunk would overshoot the window by minutes. Rate accuracy is
    # unharmed either way (the wall is measured, the counts are deltas).
    while engine.peek() is not None:
        if time.perf_counter() - started > max_wall_s:
            break
        engine.run(until=engine.now + 1e9, max_events=64)
    wall = time.perf_counter() - started
    per_shard = [
        after - before for after, before in zip(_count_dispatches(foreman), floor)
    ]
    measurement = ShardMeasurement(
        name=f"shards-{n_tasks // 1000}k-x{n_shards}",
        n_shards=n_shards,
        n_tasks=n_tasks,
        wall_s=wall,
        sim_s=engine.now,
        engine_events=engine.events_fired - events_floor,
        dispatch_events=sum(per_shard),
        per_shard_dispatch=per_shard,
        tasks_completed=foreman.stats().done - done_floor,
    )
    foreman.close()
    return measurement


@dataclass
class HtaFidelity:
    """Single-master-oracle vs sharded HTA sizing decisions."""

    pods_created_oracle: float
    pods_created_sharded: float
    nodes_peak_oracle: int
    nodes_peak_sharded: int
    tolerance: float = HTA_TOLERANCE

    @staticmethod
    def _within(a: float, b: float, tolerance: float) -> bool:
        return abs(a - b) <= max(2.0, tolerance * max(a, b))

    @property
    def ok(self) -> bool:
        return self._within(
            self.pods_created_oracle, self.pods_created_sharded, self.tolerance
        ) and self._within(
            float(self.nodes_peak_oracle),
            float(self.nodes_peak_sharded),
            self.tolerance,
        )

    def row(self) -> Dict[str, object]:
        return {
            "pods_created_oracle": self.pods_created_oracle,
            "pods_created_sharded": self.pods_created_sharded,
            "nodes_peak_oracle": self.nodes_peak_oracle,
            "nodes_peak_sharded": self.nodes_peak_sharded,
            "tolerance": self.tolerance,
            "ok": self.ok,
        }


def check_hta_fidelity(
    seed: int, *, n_shards: int = 4, n_tasks: int = 1_000, max_nodes: int = 100
) -> HtaFidelity:
    """Run the same small workload through the full cluster stack under
    plain ``hta`` and under ``sharded`` at ``n_shards``; the operator's
    sizing decisions must agree within :data:`HTA_TOLERANCE`."""
    results = {}
    for policy, options in (("hta", {}), ("sharded", {"shards": n_shards})):
        scenario = PerfScenario(
            name=f"shards-fidelity-{policy}",
            n_tasks=n_tasks,
            max_nodes=max_nodes,
            policy=policy,
            execute_s=60.0,
            seed=seed,
            options=options,
        )
        results[policy] = run_experiment(scenario.build_spec())
    oracle, sharded = results["hta"], results["sharded"]
    return HtaFidelity(
        pods_created_oracle=oracle.extras.get("pods_created", 0.0),
        pods_created_sharded=sharded.extras.get("pods_created", 0.0),
        nodes_peak_oracle=oracle.nodes_peak,
        nodes_peak_sharded=sharded.nodes_peak,
    )


@dataclass
class ShardsReport:
    """The contrast's collected measurements, rendered and serialized."""

    runs: List[ShardMeasurement]
    fidelity: HtaFidelity
    speedup: float = 0.0
    target: float = SPEEDUP_TARGET
    smoke: bool = False
    notes: List[str] = field(default_factory=list)

    def to_json(self) -> Dict[str, object]:
        return {
            "schema": 1,
            "experiment": "shards",
            "smoke": self.smoke,
            "runs": {m.name: m.row() for m in self.runs},
            "dispatch_speedup": round(self.speedup, 2),
            "speedup_target": self.target,
            "hta_fidelity": self.fidelity.row(),
            "notes": list(self.notes),
        }

    def table(self) -> str:
        header = (
            f"{'config':<22} {'shards':>6} {'wall_s':>8} "
            f"{'dispatches':>11} {'disp/s':>9}  per-shard disp/s"
        )
        lines = [header, "-" * len(header)]
        for m in self.runs:
            per_shard = ", ".join(
                f"{v:.0f}" for v in m.per_shard_events_per_sec
            )
            lines.append(
                f"{m.name:<22} {m.n_shards:>6} {m.wall_s:>8.1f} "
                f"{m.dispatch_events:>11} "
                f"{m.dispatch_events_per_sec:>9.1f}  [{per_shard}]"
            )
        lines.append("")
        lines.append(
            f"dispatch speedup {self.runs[-1].n_shards} shard(s) vs "
            f"{self.runs[0].n_shards}: {self.speedup:.2f}x "
            f"(target >={self.target:.1f}x"
            + (", advisory in --smoke)" if self.smoke else ")")
        )
        f = self.fidelity
        lines.append(
            f"HTA fidelity vs single-master oracle: pods_created "
            f"{f.pods_created_oracle:.0f} vs {f.pods_created_sharded:.0f}, "
            f"nodes_peak {f.nodes_peak_oracle} vs {f.nodes_peak_sharded} "
            f"(tolerance {f.tolerance:.0%}): {'OK' if f.ok else 'FAIL'}"
        )
        lines.extend(self.notes)
        return "\n".join(lines)


def main(
    seed: int = 0,
    *,
    smoke: bool = False,
    out_dir: Optional[str] = None,
    max_wall_s: Optional[float] = None,
    n_tasks: Optional[int] = None,
) -> str:
    """Run the shard-scaling contrast; returns the rendered table.

    Full mode: the ~1M-task bag at 1 and 4 shards, >=3x enforced.
    Smoke mode: a 100k bag at 1 and 2 shards, speedup advisory only.
    """
    if smoke:
        shard_counts = (1, 2)
        bag = n_tasks if n_tasks is not None else 100_000
        wall = max_wall_s if max_wall_s is not None else 10.0
    else:
        shard_counts = (1, 4)
        bag = n_tasks if n_tasks is not None else 1_000_000
        wall = max_wall_s if max_wall_s is not None else 60.0

    runs: List[ShardMeasurement] = []
    for count in shard_counts:
        print(f"shards: running the {bag}-task bag at {count} shard(s)...")
        measurement = run_dispatch_plane(
            count, n_tasks=bag, seed=seed, max_wall_s=wall
        )
        runs.append(measurement)
        print(
            f"shards: {measurement.name}: "
            f"{measurement.dispatch_events_per_sec:.1f} dispatch events/s "
            f"steady-state"
        )

    base, top = runs[0], runs[-1]
    speedup = (
        top.dispatch_events_per_sec / base.dispatch_events_per_sec
        if base.dispatch_events_per_sec > 0
        else 0.0
    )

    print("shards: checking HTA sizing fidelity vs the single-master oracle...")
    fidelity = check_hta_fidelity(seed)

    report = ShardsReport(
        runs=runs, fidelity=fidelity, speedup=speedup, smoke=smoke
    )
    directory = Path(out_dir) if out_dir is not None else DEFAULT_OUT_DIR
    directory.mkdir(parents=True, exist_ok=True)
    with open(directory / "BENCH_PERF.json", "w") as f:
        json.dump(report.to_json(), f, indent=2, sort_keys=True)
    out = report.table()
    print(out)
    print(f"\n[BENCH_PERF.json -> {directory / 'BENCH_PERF.json'}]")
    if not fidelity.ok:
        raise SystemExit(
            "shards: HTA sizing under the foreman diverged from the "
            "single-master oracle beyond tolerance; see report above"
        )
    if not smoke and speedup < SPEEDUP_TARGET:
        raise SystemExit(
            f"shards: dispatch speedup {speedup:.2f}x below the "
            f">={SPEEDUP_TARGET:.1f}x target; see report above"
        )
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
