"""Forecast comparison — recurring arrival bursts, four policies.

Beyond the paper: the facility scenario that motivates prediction. A
burst of identical jobs lands every few hundred seconds — think a
pipeline stage triggered by an upstream instrument — and every burst
arrives faster than a worker can cold-start, so a purely reactive policy
always eats one full resource-initialization cycle of shortage per burst.

Compared policies, all on the same substrate:

* **HTA** — reactive Algorithm 1 (provisioning for submitted work only);
* **HTA-hybrid** — Algorithm 1 with forecast arrivals injected as
  synthetic waiting tasks (``HtaConfig.forecast_arrivals``), so the plan
  covers predicted inflow too;
* **Predictive** — the :class:`~repro.forecast.scaler.PredictiveScaler`:
  pool sized from demand forecast one init cycle ahead, drain-not-delete
  on the way down;
* **KEDA-queue** — the queue-length baseline: reactive, and its shrink
  path deletes pods and holds a long cooldown.

Expected shape: the forecast-fed policies match the queue baseline's
makespan while wasting far less — they release capacity between bursts
(drains are free, the queue scaler's cooldown is not) without giving up
burst response.
"""

from __future__ import annotations

from typing import Dict

from repro.cluster.cluster import ClusterConfig
from repro.cluster.node import N1_STANDARD_4_RESERVED
from repro.experiments.continuous import (
    ContinuousResult,
    run_continuous_hta,
    run_continuous_predictive,
    run_continuous_queue_scaler,
)
from repro.experiments.runner import StackConfig
from repro.hta.operator import HtaConfig
from repro.makeflow.dag import WorkflowGraph
from repro.metrics.summary import format_summary_table
from repro.workloads.arrivals import periodic_arrivals
from repro.workloads.synthetic import uniform_bag

#: Burst schedule: BURSTS bags of BURST_TASKS one-core jobs, one bag
#: every INTERVAL_S — each burst larger than the pool can absorb without
#: scaling, each gap longer than a cold start.
BURSTS = 6
BURST_TASKS = 30
INTERVAL_S = 420.0
EXECUTE_S = 90.0

MIN_NODES = 2
MAX_NODES = 12


def stack_config(seed: int = 0) -> StackConfig:
    return StackConfig(
        cluster=ClusterConfig(
            machine_type=N1_STANDARD_4_RESERVED,  # 3 allocatable cores/node
            min_nodes=MIN_NODES,
            max_nodes=MAX_NODES,
        ),
        seed=seed,
    )


def arrivals():
    def factory(i: int) -> WorkflowGraph:
        return WorkflowGraph(
            uniform_bag(BURST_TASKS, execute_s=EXECUTE_S, declared=True, category="burst")
        )

    return periodic_arrivals(factory, interval_s=INTERVAL_S, count=BURSTS)


def run_hta(seed: int = 0, *, hybrid: bool = False) -> ContinuousResult:
    config = HtaConfig(
        initial_workers=MIN_NODES,
        max_workers=MAX_NODES,
        min_workers=MIN_NODES,
        forecast_arrivals=hybrid,
    )
    return run_continuous_hta(
        arrivals(),
        stack_config=stack_config(seed),
        hta_config=config,
        name="HTA-hybrid" if hybrid else "HTA",
    )


def run_predictive(seed: int = 0) -> ContinuousResult:
    # The default pool plus an AR model whose order spans one arrival
    # period (420 s / 15 s sampling = 28 lags): the only model that can
    # learn the burst cycle and provision *before* each burst lands. The
    # selector routes to it purely on rolling error once it locks on.
    from repro.forecast.models import default_forecasters, ArLeastSquaresForecaster
    from repro.forecast.selector import OnlineModelSelector

    pool = default_forecasters() + [
        ArLeastSquaresForecaster(window=96, order=30, name="ar-period")
    ]
    return run_continuous_predictive(
        arrivals(),
        stack_config=stack_config(seed),
        selector=OnlineModelSelector(pool),
        name="Predictive",
    )


def run_queue_scaler(seed: int = 0) -> ContinuousResult:
    return run_continuous_queue_scaler(
        arrivals(),
        stack_config=stack_config(seed),
        tasks_per_replica=3.0,  # one worker absorbs 3 one-core tasks
        name="KEDA-queue",
    )


def run(seed: int = 0) -> Dict[str, ContinuousResult]:
    return {
        "HTA": run_hta(seed),
        "HTA-hybrid": run_hta(seed, hybrid=True),
        "Predictive": run_predictive(seed),
        "KEDA-queue": run_queue_scaler(seed),
    }


def report(results: Dict[str, ContinuousResult]) -> str:
    sections = []
    sections.append(
        f"Burst stream: {BURSTS} bursts x {BURST_TASKS} tasks "
        f"({EXECUTE_S:.0f}s each) every {INTERVAL_S:.0f}s, "
        f"{MIN_NODES}..{MAX_NODES} nodes"
    )
    sections.append(
        format_summary_table(
            {name: r.result.accounting for name, r in results.items()},
            title="Forecast comparison: accumulated waste / shortage per policy",
        )
    )
    lines = ["Stream statistics:"]
    for name, r in results.items():
        lines.append(
            f"  {name:<11} last finish {r.last_finish_s:7.0f}s, "
            f"mean burst makespan {r.mean_workflow_makespan_s:6.0f}s, "
            f"throughput {r.throughput_tasks_per_hour:5.0f} tasks/h"
        )
    sections.append("\n".join(lines))
    keda = results["KEDA-queue"].result.accounting.accumulated_waste_core_s
    best_name = min(
        ("HTA-hybrid", "Predictive"),
        key=lambda n: results[n].result.accounting.accumulated_waste_core_s,
    )
    best = results[best_name].result.accounting.accumulated_waste_core_s
    if keda > 0:
        sections.append(
            f"Best forecast-fed policy ({best_name}) wastes "
            f"{best / keda:.0%} of the queue baseline's core*s."
        )
    return "\n\n".join(sections)


def main(seed: int = 0) -> str:
    out = report(run(seed))
    print(out)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
