"""Preemption — spot-aware HTA vs vanilla HTA under a reclamation wave.

Beyond the paper: the paper's clusters were on-demand only. This
experiment provisions half the worker fleet on a preemptible (spot)
pool at a deep discount, then reclaims a block of spot nodes mid-run
with GCE-style ~30 s grace notices, and compares two HTA variants on
the same seed:

* **vanilla** — HTA with the mixed pool but no preemption handling:
  reclaimed workers die like crashed nodes, their in-flight tasks burn
  a retry attempt and restart from the queue;
* **spot-aware** — HTA running the :class:`~repro.hta.preemption.
  PreemptionResponder`: preemption notices are consumed through the
  informer, doomed workers are evacuated inside the grace window
  (nearly-finished runs are left racing the clock), and Algorithm 1's
  supply term discounts spot workers by the observed survival rate.

The report asserts the contract the spot machinery is sold on: at the
validated seed the aware variant achieves **strictly higher goodput**
(goodput core×s per second of makespan) at **no worse cost** than
vanilla. Cost is the mixed on-demand/spot bill from
:meth:`~repro.metrics.cost.CostModel.cost_of_mixed`.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.cluster.cloud import PreemptiblePoolConfig
from repro.cluster.cluster import ClusterConfig
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentSpec,
    FaultProfile,
    StackConfig,
    run_experiment,
)
from repro.hta.provisioner import SpotPolicy
from repro.metrics.cost import CostModel
from repro.sim.rng import RngRegistry
from repro.workloads.synthetic import uniform_bag

MACHINE_TYPE = "n1-standard-4"

#: The validated configuration: a 240-task bag long enough that the
#: t=450 s wave lands on a loaded cluster with a real backlog behind it.
N_TASKS = 240
EXECUTE_S = 150.0
RUNTIME_CV = 0.3
MAX_NODES = 24
SPOT_MAX_NODES = 12
GRACE_S = 30.0
WAVE_AT_S = 450.0
WAVE_SIZE = 8
STACK_SEED = 7
WORKLOAD_SEED = 9001

SMOKE_SCALE = 0.5  # halve the workload and the wave for CI


def _config(seed: int, *, smoke: bool) -> Tuple[StackConfig, int, float, int]:
    scale = SMOKE_SCALE if smoke else 1.0
    n_tasks = int(N_TASKS * scale)
    wave_at = WAVE_AT_S * scale
    wave_size = max(2, int(WAVE_SIZE * scale))
    stack = StackConfig(
        cluster=ClusterConfig(
            max_nodes=MAX_NODES,
            preemptible=PreemptiblePoolConfig(
                max_nodes=SPOT_MAX_NODES, grace_period_s=GRACE_S
            ),
        ),
        seed=STACK_SEED + seed,
        faults=FaultProfile(
            preemption_wave_at_s=wave_at,
            preemption_wave_size=wave_size,
            max_retries=10,
        ),
    )
    return stack, n_tasks, wave_at, wave_size


def run(seed: int = 0, *, smoke: bool = False) -> Dict[str, ExperimentResult]:
    """Both variants on the same seed; returns name -> result."""
    stack, n_tasks, _, _ = _config(seed, smoke=smoke)
    results: Dict[str, ExperimentResult] = {}
    for aware in (False, True):
        workload = uniform_bag(
            n_tasks,
            execute_s=EXECUTE_S,
            rng=RngRegistry(WORKLOAD_SEED + seed),
            runtime_cv=RUNTIME_CV,
        )
        name = "hta-spot-aware" if aware else "hta-vanilla"
        results[name] = run_experiment(
            ExperimentSpec(
                workload=workload,
                policy="hta",
                name=name,
                stack=stack,
                options={"spot_policy": SpotPolicy(0.5), "spot_aware": aware},
            )
        )
    return results


def goodput_rate(result: ExperimentResult) -> float:
    """Goodput core×seconds per second of makespan."""
    return result.extras["goodput_core_s"] / result.makespan_s


def report(results: Dict[str, ExperimentResult], *, seed: int, smoke: bool) -> str:
    _, _, wave_at, wave_size = _config(seed, smoke=smoke)
    cost_model = CostModel()
    lines = [
        f"Preemption wave: {wave_size} spot nodes reclaimed at "
        f"t={wave_at:.0f}s ({GRACE_S:.0f}s grace, spot price "
        f"{cost_model.price_for(MACHINE_TYPE, pool='spot'):.4f} vs "
        f"{cost_model.price_for(MACHINE_TYPE):.4f} $/h on-demand)",
        "",
        f"{'variant':<16} {'makespan':>9} {'goodput/s':>10} {'waste':>8} "
        f"{'requeued':>8} {'cost $':>9}",
    ]
    rows = {}
    for name, result in results.items():
        mixed = cost_model.cost_of_mixed(result, MACHINE_TYPE)
        rate = goodput_rate(result)
        rows[name] = (rate, mixed.total_usd)
        lines.append(
            f"{name:<16} {result.makespan_s:>8.0f}s {rate:>10.2f} "
            f"{result.accounting.accumulated_waste_core_s:>8.0f} "
            f"{result.tasks_requeued:>8d} {mixed.total_usd:>9.5f}"
        )
    aware_rate, aware_cost = rows["hta-spot-aware"]
    vanilla_rate, vanilla_cost = rows["hta-vanilla"]
    lines.append("")
    lines.append(
        f"goodput: aware {aware_rate:.2f} vs vanilla {vanilla_rate:.2f} "
        f"({'+' if aware_rate >= vanilla_rate else ''}"
        f"{(aware_rate / vanilla_rate - 1) * 100:.1f}%), "
        f"cost: aware {aware_cost:.5f} vs vanilla {vanilla_cost:.5f}"
    )
    if seed == 0 and not smoke:
        # The contract the acceptance gate checks, at the validated seed.
        assert aware_rate > vanilla_rate, (
            f"spot-aware goodput {aware_rate} not above vanilla {vanilla_rate}"
        )
        assert aware_cost <= vanilla_cost + 1e-9, (
            f"spot-aware cost {aware_cost} exceeds vanilla {vanilla_cost}"
        )
        lines.append("contract holds: aware goodput strictly higher, cost no worse")
    return "\n".join(lines)


def main(seed: int = 0, *, smoke: bool = False) -> str:
    out = report(run(seed, smoke=smoke), seed=seed, smoke=smoke)
    print(out)
    return out


if __name__ == "__main__":  # pragma: no cover
    main()
