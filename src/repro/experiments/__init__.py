"""Experiment harnesses: one module per paper figure/table.

The entry points:

* :mod:`~repro.experiments.runner` — the shared machinery: builds the
  full stack (cluster + Work Queue + workflow manager) under an HTA,
  HPA, or static-pool policy and returns an
  :class:`~repro.experiments.runner.ExperimentResult`;
* ``fig2`` / ``fig4`` / ``fig5`` / ``fig6`` / ``fig10`` / ``fig11`` —
  the per-figure harnesses, each printing the same rows/series the paper
  reports (and the paper's own numbers alongside);
* ``python -m repro.experiments <figN|all>`` — the CLI.
"""

from repro.experiments import sweeps
from repro.experiments.runner import (
    ExperimentResult,
    FaultProfile,
    StackConfig,
    run_hpa_experiment,
    run_hta_experiment,
    run_predictive_experiment,
    run_queue_scaler_experiment,
    run_static_experiment,
)

__all__ = [
    "ExperimentResult",
    "FaultProfile",
    "StackConfig",
    "run_hpa_experiment",
    "run_hta_experiment",
    "run_predictive_experiment",
    "run_queue_scaler_experiment",
    "run_static_experiment",
    "sweeps",
]
