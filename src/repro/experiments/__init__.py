"""Experiment harnesses: one module per paper figure/table.

The entry points:

* :mod:`~repro.experiments.runner` — the single-entry experiment API:
  :func:`~repro.experiments.runner.run_experiment` builds the full stack
  (cluster + Work Queue + workflow manager) under the policy named by an
  :class:`~repro.experiments.runner.ExperimentSpec` and returns an
  :class:`~repro.experiments.runner.ExperimentResult`;
* ``fig2`` / ``fig4`` / ``fig5`` / ``fig6`` / ``fig10`` / ``fig11`` —
  the per-figure harnesses, each printing the same rows/series the paper
  reports (and the paper's own numbers alongside);
* ``python -m repro.experiments <figN|all>`` — the CLI (``--trace-out``
  records a telemetry trace, ``--explain`` prints the decision audit).

The ``run_*_experiment`` functions are deprecated wrappers kept for
backward compatibility.
"""

from repro.experiments import sweeps
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentSpec,
    FaultProfile,
    StackConfig,
    register_policy,
    run_experiment,
    run_hpa_experiment,
    run_hta_experiment,
    run_predictive_experiment,
    run_queue_scaler_experiment,
    run_static_experiment,
)

__all__ = [
    "ExperimentResult",
    "ExperimentSpec",
    "FaultProfile",
    "StackConfig",
    "register_policy",
    "run_experiment",
    "run_hpa_experiment",
    "run_hta_experiment",
    "run_predictive_experiment",
    "run_queue_scaler_experiment",
    "run_static_experiment",
    "sweeps",
]
