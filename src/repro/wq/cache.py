"""Per-worker file cache with LRU eviction.

Work Queue workers cache files marked cacheable, but a worker's disk is
finite: when the cache plus new arrivals would exceed its budget, the
least-recently-used files that no running task needs are evicted (the
real worker garbage-collects its workspace the same way). Evicting the
shared BLAST database from a busy worker forces a costly re-fetch — the
behaviour that makes cache-aware dispatch (the master prefers workers
that already hold a task's inputs) worth modelling.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set


class WorkerCache:
    """Size-bounded LRU cache of (file name → size_mb)."""

    def __init__(self, capacity_mb: float):
        if capacity_mb < 0:
            raise ValueError("capacity_mb must be non-negative")
        self.capacity_mb = capacity_mb
        self._files: Dict[str, float] = {}
        self._last_use: Dict[str, float] = {}
        self.evictions = 0
        self.bytes_evicted_mb = 0.0

    # ------------------------------------------------------------- queries
    def __contains__(self, name: str) -> bool:
        return name in self._files

    def __len__(self) -> int:
        return len(self._files)

    @property
    def used_mb(self) -> float:
        return sum(self._files.values())

    def names(self) -> Set[str]:
        return set(self._files)

    # ------------------------------------------------------------- updates
    def touch(self, name: str, now: float) -> None:
        """Record a use (keeps hot files resident)."""
        if name in self._files:
            self._last_use[name] = now

    def add(self, name: str, size_mb: float, now: float, *, pinned: Iterable[str] = ()) -> bool:
        """Insert a file, evicting LRU entries as needed.

        ``pinned`` names (inputs of currently running tasks) are never
        evicted. Returns False — and caches nothing — if the file cannot
        fit even after evicting everything evictable (it will simply be
        re-fetched next time, matching worker behaviour for oversized
        files).
        """
        if size_mb < 0:
            raise ValueError("size_mb must be non-negative")
        if name in self._files:
            self._last_use[name] = now
            return True
        if size_mb > self.capacity_mb:
            return False
        self._evict_for(size_mb, set(pinned), now)
        if self.used_mb + size_mb > self.capacity_mb + 1e-9:
            return False
        self._files[name] = size_mb
        self._last_use[name] = now
        return True

    def discard(self, name: str) -> None:
        self._files.pop(name, None)
        self._last_use.pop(name, None)

    def _evict_for(self, incoming_mb: float, pinned: Set[str], now: float) -> None:
        if self.used_mb + incoming_mb <= self.capacity_mb:
            return
        victims: List[str] = sorted(
            (n for n in self._files if n not in pinned),
            key=lambda n: self._last_use[n],
        )
        for name in victims:
            if self.used_mb + incoming_mb <= self.capacity_mb:
                break
            self.bytes_evicted_mb += self._files[name]
            self.evictions += 1
            self.discard(name)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<WorkerCache {len(self._files)} files "
            f"{self.used_mb:.0f}/{self.capacity_mb:.0f}MB>"
        )
