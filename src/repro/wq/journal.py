"""The master's replayable transaction journal (crash recovery).

CCTools' Makeflow/Work Queue survive manager crashes by appending every
state transition to an on-disk transaction log and replaying it on
restart; the paper's §V-A deployment gives the master pod a persistent
volume for exactly this. :class:`TransactionJournal` is that log: the
master appends a record at each transition (submit / dispatch / retry /
complete / abandon, plus exhaustion escalations), and
:meth:`TransactionJournal.replay` folds the records back into the state
a restarted master needs — the ready queue in its exact pre-crash order
(retries re-enter at the front, like the live queue), completed results
for the category statistics, per-task retry counters, and the set of
``(task_id, attempt)`` deliveries already accepted, which makes result
redelivery from still-running workers idempotent.

Tasks that were dispatched but neither completed nor retried by crash
time are *unclaimed*: their worker may still be running them. The
recovered master re-adopts them as workers reconnect and requeues
whatever is left when the reconnect grace window closes.

Replay with ``completions=False`` models a **cold restart** — the log
was lost and only the submitted task list (re-fed by the client) can be
reconstructed: every submitted task re-enters the queue, statistics and
retry counters start empty, and already-completed tasks re-execute. The
recovery experiment measures what that costs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.cluster.resources import ResourceVector
from repro.wq.task import Task, TaskResult

#: Valid journal operations, in no particular order.
OPS = (
    "submit", "dispatch", "retry", "complete", "abandon", "escalate",
    "checkpoint", "migrate_out", "migrate_in",
    "verify_fail", "quarantine", "unquarantine",
    "failover_out", "failover_in",
)


@dataclass(frozen=True, slots=True)
class JournalRecord:
    """One appended state transition."""

    op: str
    time: float
    #: The task object stands in for its serialized form on the PV; the
    #: simulation keeps object identity so replay recovers the same
    #: tasks the workflow manager holds. Worker-scoped records
    #: (quarantine/unquarantine) carry no task.
    task: Optional[Task]
    #: ``task.attempts`` at record time (dispatch: the attempt being
    #: started; retry: the post-increment counter).
    attempt: int = 0
    #: Completion records carry the result (the log stores its fields).
    result: Optional[TaskResult] = None
    #: Escalation records carry the post-exhaustion allocation floor.
    escalate_to: Optional[ResourceVector] = None
    #: Migration records carry banked progress: checkpoint — the
    #: execute-seconds the accepted snapshot preserves; migrate_in —
    #: the progress the new attempt resumes from.
    progress: Optional[float] = None
    #: Integrity records carry the worker involved: verify_fail — the
    #: worker whose delivery failed content-digest verification;
    #: quarantine/unquarantine — the worker changing health state.
    worker: Optional[str] = None
    #: Failover-in records carry where the re-homed task landed on the
    #: surviving shard: ``"ready"`` (was queued on the dead shard) or
    #: ``"unclaimed"`` (was in flight; its worker may reattach).
    placement: Optional[str] = None


@dataclass
class ReplayedState:
    """What :meth:`TransactionJournal.replay` reconstructs."""

    #: The ready queue in pre-crash order.
    ready: List[Task] = field(default_factory=list)
    #: Dispatched but unresolved at crash time: task id -> task. Their
    #: workers may still be running them.
    unclaimed: Dict[int, Task] = field(default_factory=dict)
    #: Completed (task, result) pairs in completion order — replaying
    #: them through the monitor reproduces the category statistics
    #: exactly (same observations, same order).
    completions: List[Tuple[Task, TaskResult]] = field(default_factory=list)
    abandoned: List[Task] = field(default_factory=list)
    #: (category, floor) exhaustion escalations in occurrence order.
    escalations: List[Tuple[str, ResourceVector]] = field(default_factory=list)
    #: Last journaled retry counter per task id.
    attempts: Dict[int, int] = field(default_factory=dict)
    #: Count of submit records (restores ``Master.tasks_submitted``).
    submitted: int = 0
    #: ``(task_id, attempt)`` keys already accepted — the idempotency
    #: set that suppresses duplicate result deliveries after recovery.
    delivered: Set[Tuple[int, int]] = field(default_factory=set)
    #: Last banked checkpoint progress per task id (execute-seconds a
    #: resumed attempt skips); restored onto recovered tasks.
    progress: Dict[int, float] = field(default_factory=dict)
    #: Workers quarantined (and not since unquarantined) at crash time,
    #: in quarantine order — the recovered master keeps distrusting them.
    quarantined: List[str] = field(default_factory=list)


class TransactionJournal:
    """Append-only log of master state transitions."""

    def __init__(self) -> None:
        self.records: List[JournalRecord] = []
        self.appends = 0
        #: Times :meth:`replay` ran (diagnostic).
        self.replays = 0

    def __len__(self) -> int:
        return len(self.records)

    # -------------------------------------------------------------- appends
    def _append(self, record: JournalRecord) -> None:
        self.records.append(record)
        self.appends += 1

    def record_submit(self, time: float, task: Task) -> None:
        self._append(JournalRecord("submit", time, task))

    def record_dispatch(self, time: float, task: Task) -> None:
        self._append(JournalRecord("dispatch", time, task, attempt=task.attempts))

    def record_retry(self, time: float, task: Task) -> None:
        """The task re-entered the queue front (worker loss, failed
        attempt past its backoff, or post-crash unclaimed requeue)."""
        self._append(JournalRecord("retry", time, task, attempt=task.attempts))

    def record_escalate(
        self, time: float, task: Task, escalate_to: ResourceVector
    ) -> None:
        self._append(
            JournalRecord(
                "escalate", time, task, attempt=task.attempts, escalate_to=escalate_to
            )
        )

    def record_complete(self, time: float, task: Task, result: TaskResult) -> None:
        self._append(
            JournalRecord("complete", time, task, attempt=result.attempts, result=result)
        )

    def record_abandon(self, time: float, task: Task) -> None:
        self._append(JournalRecord("abandon", time, task, attempt=task.attempts))

    def record_checkpoint(self, time: float, task: Task, progress: float) -> None:
        """An accepted checkpoint banked ``progress`` execute-seconds
        for the task (the snapshot now lives on the master's PV)."""
        self._append(
            JournalRecord(
                "checkpoint", time, task, attempt=task.attempts, progress=progress
            )
        )

    def record_migrate_out(self, time: float, task: Task) -> None:
        """The migrating task left its worker and re-entered the queue
        front. Like a retry, but no attempt burned — migration is
        voluntary, not a failure."""
        self._append(JournalRecord("migrate_out", time, task, attempt=task.attempts))

    def record_migrate_in(self, time: float, task: Task, progress: float) -> None:
        """The task was dispatched resuming from banked progress —
        the dispatch record of a migrated attempt."""
        self._append(
            JournalRecord(
                "migrate_in", time, task, attempt=task.attempts, progress=progress
            )
        )

    def record_verify_fail(self, time: float, task: Task, worker: str) -> None:
        """A delivered result (or checkpoint) failed content-digest
        verification: the attempt is void and never reaches COMPLETE.
        The worker name feeds post-mortem blame attribution."""
        self._append(
            JournalRecord(
                "verify_fail", time, task, attempt=task.attempts, worker=worker
            )
        )

    def record_quarantine(self, time: float, worker: str) -> None:
        """The health ledger quarantined a worker: its runs were pulled
        and dispatch stops trusting it until probation."""
        self._append(JournalRecord("quarantine", time, None, worker=worker))

    def record_unquarantine(self, time: float, worker: str) -> None:
        """A quarantined worker entered probation and may take work again."""
        self._append(JournalRecord("unquarantine", time, None, worker=worker))

    def record_failover_out(self, time: float, task: Task) -> None:
        """The foreman's failover coordinator re-homed this task away
        from this (dead) shard. Written to the dead shard's PV log so a
        later restart replays to a state *without* the task — a shard
        that recovers after failover must not double-dispatch work that
        now lives on a survivor."""
        self._append(JournalRecord("failover_out", time, task, attempt=task.attempts))

    def record_failover_in(
        self,
        time: float,
        task: Task,
        *,
        placement: str,
        progress: Optional[float] = None,
    ) -> None:
        """A survivor shard adopted a task re-homed from a dead shard.
        ``placement`` records whether it re-entered the ready queue or
        the unclaimed set (its worker may still reattach); ``progress``
        carries any banked checkpoint so the move preserves it."""
        if placement not in ("ready", "unclaimed"):
            raise ValueError(f"unknown failover placement {placement!r}")
        self._append(
            JournalRecord(
                "failover_in",
                time,
                task,
                attempt=task.attempts,
                progress=progress,
                placement=placement,
            )
        )

    # --------------------------------------------------------------- digest
    def digest(self) -> str:
        """SHA-256 over a canonical serialization of every record.

        ``repr(float)`` round-trips exactly, so two journals digest
        equal iff every op, timestamp, task identity, attempt counter,
        result field, and escalation floor matches bit-for-bit — the
        fixed-seed fidelity oracle that proves an optimization preserved
        the master's entire observable transition history. Task ids are
        renumbered by first appearance so the digest is invariant to the
        process-global id counter (two same-seed runs in one process
        digest equal).
        """
        h = hashlib.sha256()
        canon: Dict[int, int] = {}
        for rec in self.records:
            # Worker-scoped records (quarantine/unquarantine) carry no
            # task; a fixed placeholder keeps the canonical form total.
            if rec.task is not None:
                tid = str(canon.setdefault(rec.task.id, len(canon)))
            else:
                tid = "-"
            parts = [rec.op, repr(rec.time), tid, str(rec.attempt)]
            if rec.result is not None:
                r = rec.result
                parts += [
                    r.worker_name,
                    repr(r.submit_time),
                    repr(r.dispatch_time),
                    repr(r.start_time),
                    repr(r.finish_time),
                    repr(r.execute_seconds),
                    repr(r.measured_resources.cores),
                    repr(r.measured_resources.memory_mb),
                    repr(r.measured_resources.disk_mb),
                    str(r.attempts),
                ]
            if rec.escalate_to is not None:
                e = rec.escalate_to
                parts += [repr(e.cores), repr(e.memory_mb), repr(e.disk_mb)]
            if rec.progress is not None:
                parts.append(repr(rec.progress))
            if rec.worker is not None:
                parts.append(rec.worker)
            if rec.placement is not None:
                parts.append(rec.placement)
            h.update("|".join(parts).encode())
            h.update(b"\n")
        return h.hexdigest()

    # --------------------------------------------------------------- replay
    def replay(self, *, completions: bool = True) -> ReplayedState:
        """Fold the log into the state a restarted master resumes from.

        ``completions=False`` is the cold-restart ablation: only submit
        records are honoured (the client re-feeds its task list), so
        completed work is forgotten and will re-execute.
        """
        self.replays += 1
        state = ReplayedState()
        if not completions:
            for rec in self.records:
                if rec.op == "submit":
                    state.submitted += 1
                    state.ready.append(rec.task)
            return state
        # Failover records may interleave across shards in a merged log:
        # the destination's FAILOVER_IN can fold before the dead shard's
        # FAILOVER_OUT when both carry the same timestamp and the
        # destination's shard index sorts first. Counting OUT/IN pairs
        # per task makes the fold commute — an OUT only removes the task
        # when it has not already been superseded by a matching IN.
        failed_out: Dict[int, int] = {}
        failed_in: Dict[int, int] = {}
        for rec in self.records:
            task = rec.task
            if rec.op == "submit":
                state.submitted += 1
                state.ready.append(task)
            elif rec.op == "dispatch":
                self._remove(state.ready, task)
                state.unclaimed[task.id] = task
                state.attempts[task.id] = rec.attempt
            elif rec.op == "retry":
                state.unclaimed.pop(task.id, None)
                self._remove(state.ready, task)
                state.ready.insert(0, task)
                state.attempts[task.id] = rec.attempt
            elif rec.op == "escalate":
                assert rec.escalate_to is not None
                state.escalations.append((task.category, rec.escalate_to))
            elif rec.op == "complete":
                assert rec.result is not None
                state.unclaimed.pop(task.id, None)
                self._remove(state.ready, task)
                state.completions.append((task, rec.result))
                state.delivered.add((task.id, rec.attempt))
            elif rec.op == "abandon":
                state.unclaimed.pop(task.id, None)
                self._remove(state.ready, task)
                state.abandoned.append(task)
            elif rec.op == "checkpoint":
                assert rec.progress is not None
                state.progress[task.id] = rec.progress
            elif rec.op == "migrate_out":
                # Exactly a retry's queue motion, without the attempt
                # bump: the task left its worker and waits at the front.
                state.unclaimed.pop(task.id, None)
                self._remove(state.ready, task)
                state.ready.insert(0, task)
                state.attempts[task.id] = rec.attempt
            elif rec.op == "migrate_in":
                assert rec.progress is not None
                self._remove(state.ready, task)
                state.unclaimed[task.id] = task
                state.attempts[task.id] = rec.attempt
                state.progress[task.id] = rec.progress
            elif rec.op == "failover_out":
                outs = failed_out.get(task.id, 0) + 1
                failed_out[task.id] = outs
                if outs > failed_in.get(task.id, 0):
                    # Not (yet) re-adopted elsewhere in this log: the
                    # task left this shard's recoverable state. On the
                    # dead shard's own journal there is never a matching
                    # IN, so replay after a post-failover restart drops
                    # the re-homed entry instead of double-dispatching.
                    state.unclaimed.pop(task.id, None)
                    self._remove(state.ready, task)
            elif rec.op == "failover_in":
                failed_in[task.id] = failed_in.get(task.id, 0) + 1
                state.unclaimed.pop(task.id, None)
                self._remove(state.ready, task)
                if rec.placement == "unclaimed":
                    state.unclaimed[task.id] = task
                else:
                    state.ready.insert(0, task)
                state.attempts[task.id] = rec.attempt
                if rec.progress is not None:
                    state.progress[task.id] = rec.progress
            elif rec.op == "verify_fail":
                # The voided attempt's queue motion is carried by the
                # retry/abandon record that follows; nothing folds here.
                pass
            elif rec.op == "quarantine":
                assert rec.worker is not None
                if rec.worker not in state.quarantined:
                    state.quarantined.append(rec.worker)
            elif rec.op == "unquarantine":
                assert rec.worker is not None
                if rec.worker in state.quarantined:
                    state.quarantined.remove(rec.worker)
        return state

    @staticmethod
    def _remove(ready: List[Task], task: Task) -> None:
        for i, t in enumerate(ready):
            if t is task:
                del ready[i]
                return
