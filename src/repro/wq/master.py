"""The Work Queue master: queue, dispatch, completion plumbing.

"During runtime, the master finds available workers and assigns jobs to
them" (§II-B). Dispatch policy:

1. Tasks leave the queue in FIFO order (retried tasks re-enter at the
   front so a worker loss doesn't starve them).
2. Each task's allocation comes from the installed
   :class:`~repro.wq.estimator.AllocationEstimator`; ``None`` means the
   whole worker (the conservative / probing path).
3. Among workers that fit, prefer one that already caches the task's
   cacheable inputs, then the one with least available capacity
   (best-fit, keeping large slots open for whole-worker probes).

The master exposes the live queue statistics HTA's controller consumes
(:class:`MasterStats`) and fires ``on_complete`` callbacks that both the
Makeflow manager (to release dependents) and HTA (to refresh category
estimates) subscribe to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.cluster.resources import ResourceVector
from repro.sim.engine import Engine
from repro.wq.estimator import AllocationEstimator, MonitorEstimator
from repro.wq.link import Link
from repro.wq.monitor import ResourceMonitor
from repro.wq.task import Task, TaskResult, TaskState
from repro.wq.worker import Worker, WorkerState

CompletionCallback = Callable[[Task, TaskResult], None]


@dataclass(frozen=True, slots=True)
class MasterStats:
    """A point-in-time snapshot of queue state (HTA's reference input)."""

    time: float
    waiting: int
    running: int
    done: int
    workers_connected: int
    workers_idle: int
    workers_busy: int
    workers_draining: int

    @property
    def backlog(self) -> int:
        return self.waiting + self.running


class Master:
    """The master process of the Work Queue framework."""

    def __init__(
        self,
        engine: Engine,
        link: Link,
        *,
        estimator: Optional[AllocationEstimator] = None,
        monitor: Optional[ResourceMonitor] = None,
        name: str = "wq-master",
        start_available: bool = True,
        max_retries: int = 5,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.engine = engine
        self.link = link
        self.name = name
        self.max_retries = max_retries
        self.monitor = monitor if monitor is not None else ResourceMonitor()
        self.estimator: AllocationEstimator = (
            estimator if estimator is not None else MonitorEstimator(self.monitor)
        )
        self.queue: List[Task] = []
        self.workers: Dict[str, Worker] = {}
        self.running: Dict[int, Task] = {}
        self.done: List[Task] = []
        #: Tasks given up on after max_retries worker losses.
        self.abandoned: List[Task] = []
        self._abandoned_callbacks: List[Callable[[Task], None]] = []
        self._callbacks: List[CompletionCallback] = []
        self._dispatch_pending = False
        self.tasks_submitted = 0
        self.tasks_requeued = 0
        #: False while the master process is down (its pod restarting).
        #: Dispatch pauses and completions buffer at the workers until
        #: the master resumes — the paper's StatefulSet + persistent
        #: volume design makes exactly this recovery possible (§V-A).
        #: Pass ``start_available=False`` when the master is hosted in a
        #: pod that has not started yet (MasterDeployment does).
        self.available = start_available
        self._buffered_completions: List[tuple[Worker, Task]] = []
        self.outages = 0

    # ------------------------------------------------------------ callbacks
    def on_complete(self, fn: CompletionCallback) -> None:
        self._callbacks.append(fn)

    def on_abandoned(self, fn: Callable[[Task], None]) -> None:
        """Register for tasks permanently given up after max_retries."""
        self._abandoned_callbacks.append(fn)

    # ------------------------------------------------------------- submit
    def submit(self, task: Task) -> None:
        if task.state is not TaskState.WAITING:
            raise RuntimeError(f"cannot submit task in state {task.state}")
        if task.submit_time is None:
            task.submit_time = self.engine.now
        self.tasks_submitted += 1
        self.queue.append(task)
        self._schedule_dispatch()

    def submit_many(self, tasks: List[Task]) -> None:
        for t in tasks:
            self.submit(t)

    # -------------------------------------------------------------- workers
    def register_worker(self, worker: Worker) -> None:
        self.workers[worker.name] = worker
        self._schedule_dispatch()

    def unregister_worker(self, worker: Worker) -> None:
        self.workers.pop(worker.name, None)

    def worker_draining(self, worker: Worker) -> None:
        """A drain started; nothing to do — dispatch skips non-accepting
        workers — but the hook keeps the protocol explicit."""

    def worker_lost(self, worker: Worker, lost_tasks: List[Task]) -> None:
        """A worker died (pod deleted). Requeue its tasks at the front;
        tasks that have already burned ``max_retries`` attempts are
        abandoned (reported through ``on_abandoned``)."""
        self.workers.pop(worker.name, None)
        for task in reversed(lost_tasks):
            self.running.pop(task.id, None)
            task.attempts += 1
            if task.attempts > self.max_retries:
                self.abandoned.append(task)
                for fn in list(self._abandoned_callbacks):
                    fn(task)
                continue
            self.tasks_requeued += 1
            task.reset_for_retry()
            self.queue.insert(0, task)
        if lost_tasks:
            self._schedule_dispatch()

    # ------------------------------------------------------------- dispatch
    def _schedule_dispatch(self) -> None:
        if not self._dispatch_pending:
            self._dispatch_pending = True
            self.engine.call_soon(self._dispatch)

    # ----------------------------------------------------------- availability
    def pause(self) -> None:
        """The master process went down (pod killed/restarting)."""
        if not self.available:
            return
        self.available = False
        self.outages += 1

    def resume(self) -> None:
        """The master is back (sticky identity + persistent volume): the
        queue survived; buffered worker completions are delivered now."""
        if self.available:
            return
        self.available = True
        buffered, self._buffered_completions = self._buffered_completions, []
        for worker, task in buffered:
            self._finalize_completion(worker, task)
        self._schedule_dispatch()

    def _dispatch(self) -> None:
        self._dispatch_pending = False
        if not self.queue or not self.available:
            return
        # Higher priority first; FIFO (stable sort over queue order)
        # within a priority level. Requeued tasks sit at the queue front
        # already, keeping retry-first semantics among equal priorities.
        ordered = sorted(self.queue, key=lambda t: -t.priority)
        placed_ids = set()
        for task in ordered:
            if self._try_place(task):
                placed_ids.add(task.id)
        if placed_ids:
            self.queue = [t for t in self.queue if t.id not in placed_ids]

    def _try_place(self, task: Task) -> bool:
        candidates = [w for w in self.workers.values() if w.accepting]
        if not candidates:
            return False
        best: Optional[Worker] = None
        best_alloc: Optional[ResourceVector] = None
        best_key = None
        for worker in candidates:
            alloc = self.estimator.allocation_for(task, worker.capacity)
            if alloc is None:
                alloc = worker.capacity  # whole-worker (conservative/probe)
            else:
                # Never allocate less than the task actually needs, and
                # never more than the worker has in total.
                alloc = alloc.max_with(task.footprint)
                if not alloc.fits_in(worker.capacity):
                    continue
            if not worker.can_fit(alloc):
                continue
            # Prefer cache hits; then best-fit by remaining cores.
            key = (worker.has_cached(task), -worker.available().cores, worker.name)
            if best_key is None or key > best_key:
                best, best_alloc, best_key = worker, alloc, key
        if best is None or best_alloc is None:
            return False
        self.running[task.id] = task
        best.assign(task, best_alloc)
        return True

    # ----------------------------------------------------------- completion
    def task_finished(self, worker: Worker, task: Task) -> None:
        if not self.available:
            # The worker holds the outputs until the master returns.
            self._buffered_completions.append((worker, task))
            return
        self._finalize_completion(worker, task)

    def _finalize_completion(self, worker: Worker, task: Task) -> None:
        self.running.pop(task.id, None)
        task.state = TaskState.DONE
        task.finish_time = self.engine.now
        assert task.submit_time is not None
        assert task.dispatch_time is not None
        assert task.start_time is not None
        result = TaskResult(
            task_id=task.id,
            category=task.category,
            worker_name=worker.name,
            submit_time=task.submit_time,
            dispatch_time=task.dispatch_time,
            start_time=task.start_time,
            finish_time=task.finish_time,
            execute_seconds=task.execute_s,
            measured_resources=task.footprint,
            attempts=task.attempts,
        )
        task.result = result
        self.done.append(task)
        self.monitor.record(result)
        for fn in list(self._callbacks):
            fn(task, result)
        self._schedule_dispatch()

    # ----------------------------------------------------------------- stats
    def stats(self) -> MasterStats:
        idle = sum(1 for w in self.workers.values() if w.idle)
        draining = sum(
            1 for w in self.workers.values() if w.state is WorkerState.DRAINING
        )
        busy = sum(
            1
            for w in self.workers.values()
            if w.state in (WorkerState.READY, WorkerState.DRAINING) and w.runs
        )
        return MasterStats(
            time=self.engine.now,
            waiting=len(self.queue),
            running=len(self.running),
            done=len(self.done),
            workers_connected=len(self.workers),
            workers_idle=idle,
            workers_busy=busy,
            workers_draining=draining,
        )

    def waiting_tasks(self) -> List[Task]:
        return list(self.queue)

    def running_tasks(self) -> List[Task]:
        return list(self.running.values())

    def connected_workers(self) -> List[Worker]:
        return list(self.workers.values())

    def idle_workers(self) -> List[Worker]:
        return [w for w in self.workers.values() if w.idle]

    @property
    def all_done(self) -> bool:
        return not self.queue and not self.running

    # ----------------------------------------------------------- accounting
    def cores_in_use(self) -> float:
        """RIU in cores: footprint cores of currently executing tasks."""
        return sum(w.cores_in_use() for w in self.workers.values())

    def cores_waiting(self) -> float:
        """RSH ingredient: cores desired by queued tasks (true footprints;
        the evaluation measures actual shortage, per §VI)."""
        return sum(t.footprint.cores for t in self.queue)

    def supplied_cores(self) -> float:
        """RS in cores: capacity of connected, accepting workers."""
        return sum(
            w.capacity.cores
            for w in self.workers.values()
            if w.state in (WorkerState.READY, WorkerState.DRAINING)
        )
