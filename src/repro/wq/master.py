"""The Work Queue master: a session/connection shell over DispatchCore.

"During runtime, the master finds available workers and assigns jobs to
them" (§II-B). The dispatch policy itself — FIFO with retry-to-front,
estimator-sized allocations, cache-then-best-fit placement — lives in
:class:`~repro.wq.dispatch.DispatchCore`; this module layers the
*connection* concerns on top:

* worker registration / deregistration and the drain protocol;
* partition liveness (unreachable clocks, declared-lost expiry);
* availability outages (pause/resume with completion buffering);
* crash recovery (journal replay or cold restart, reconnect adoption).

The master exposes the live queue statistics HTA's controller consumes
(:class:`MasterStats`) and fires ``on_complete`` callbacks that both the
Makeflow manager (to release dependents) and HTA (to refresh category
estimates) subscribe to.

Migration path for downstream callers: the state-machine knobs
(``max_retries``, ``fault_model``, ``verify``, …) moved into
:class:`~repro.wq.dispatch.DispatchConfig`; passing them as flat
keywords still works but emits a :class:`DeprecationWarning`. Code that
only drives the queue (submit / completion / retry) and never touches a
connection-layer method can depend on ``DispatchCore`` directly.
"""

from __future__ import annotations

import warnings
from itertools import chain
from typing import List, Optional

from repro.sim.engine import Engine
from repro.telemetry.events import Tracer
from repro.telemetry.metrics import MetricsRegistry
from repro.wq.dispatch import (
    CompletionCallback,
    DispatchConfig,
    DispatchCore,
    MasterStats,
)
from repro.wq.estimator import AllocationEstimator
from repro.wq.faults import (
    RetryPolicy,
    SpeculationConfig,
    TaskFaultModel,
    ValueFaultModel,
)
from repro.wq.health import HealthConfig
from repro.wq.link import Link
from repro.wq.monitor import ResourceMonitor
from repro.wq.task import Task, TaskState
from repro.wq.worker import Worker, WorkerState

__all__ = [
    "CompletionCallback",
    "DispatchConfig",
    "DispatchCore",
    "Master",
    "MasterStats",
]

#: Sentinel distinguishing "keyword not passed" from any real value in
#: the deprecated flat-keyword constructor below.
_UNSET = object()


class Master(DispatchCore):
    """The master process of the Work Queue framework."""

    def __init__(
        self,
        engine: Engine,
        link: Link,
        *,
        config: Optional[DispatchConfig] = None,
        estimator: Optional[AllocationEstimator] = None,
        monitor: Optional[ResourceMonitor] = None,
        name: str = "wq-master",
        start_available: bool = True,
        max_retries: int = _UNSET,  # type: ignore[assignment]
        fault_model: Optional[TaskFaultModel] = _UNSET,  # type: ignore[assignment]
        value_faults: Optional[ValueFaultModel] = _UNSET,  # type: ignore[assignment]
        verify: bool = _UNSET,  # type: ignore[assignment]
        health: Optional[HealthConfig] = _UNSET,  # type: ignore[assignment]
        retry_policy: Optional[RetryPolicy] = _UNSET,  # type: ignore[assignment]
        speculation: Optional[SpeculationConfig] = _UNSET,  # type: ignore[assignment]
        replay_journal: bool = _UNSET,  # type: ignore[assignment]
        recovery_grace_s: float = _UNSET,  # type: ignore[assignment]
        liveness_timeout_s: float = _UNSET,  # type: ignore[assignment]
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        legacy = {
            key: value
            for key, value in (
                ("max_retries", max_retries),
                ("fault_model", fault_model),
                ("value_faults", value_faults),
                ("verify", verify),
                ("health", health),
                ("retry_policy", retry_policy),
                ("speculation", speculation),
                ("replay_journal", replay_journal),
                ("recovery_grace_s", recovery_grace_s),
                ("liveness_timeout_s", liveness_timeout_s),
            )
            if value is not _UNSET
        }
        if legacy:
            if config is not None:
                raise TypeError(
                    "pass either config=DispatchConfig(...) or the flat "
                    f"keywords {sorted(legacy)}, not both"
                )
            warnings.warn(
                "passing dispatch state-machine knobs "
                f"({', '.join(sorted(legacy))}) directly to Master is "
                "deprecated; pass config=DispatchConfig(...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            config = DispatchConfig(**legacy)
        super().__init__(
            engine,
            link,
            config=config,
            estimator=estimator,
            monitor=monitor,
            name=name,
            start_available=start_available,
            tracer=tracer,
            metrics=metrics,
        )

    # -------------------------------------------------------------- workers
    def register_worker(self, worker: Worker) -> None:
        if self.health is not None:
            # A brand-new pod registering under a recycled name is a
            # fresh process: its predecessor's outcome history died with
            # the old pod and must not taint it.
            self.health.forget_worker(worker.name)
        self.workers[worker.name] = worker
        self._refresh_worker_cache(worker)
        self._schedule_dispatch()

    def unregister_worker(self, worker: Worker) -> None:
        self.workers.pop(worker.name, None)
        self._refresh_worker_cache(worker)

    def worker_draining(self, worker: Worker) -> None:
        """A drain started; nothing to do — dispatch skips non-accepting
        workers — but the hook keeps the protocol explicit."""

    def worker_status_changed(self, worker: Worker) -> None:
        """Worker-side hook: its accepting/idle/busy state may have
        flipped (a run started or ended, a drain began, the connection
        dropped). Refreshes the dispatch index and stat counters."""
        self._refresh_worker_cache(worker)

    # ----------------------------------------------------- partition liveness
    def worker_unreachable(self, worker: Worker) -> None:
        """The link to a connected worker went dark (network partition).

        The worker may be perfectly healthy and still computing, so its
        runs stay on the books — but the liveness clock starts: if it has
        not reconnected when :attr:`liveness_timeout_s` expires, it is
        declared lost and its in-flight tasks requeue (work_queue's
        keepalive timeout behaves the same way)."""
        if worker.name not in self.workers:
            return
        since = self.engine.now
        self._unreachable[worker.name] = since
        self.partitions_detected += 1
        if self.tracer.enabled:
            self.tracer.emit(
                "wq",
                "worker.unreachable",
                worker=worker.name,
                timeout_s=self.liveness_timeout_s,
            )
        self.engine.call_in(
            self.liveness_timeout_s,
            self._liveness_expired,
            worker,
            since,
            self._incarnation,
        )

    def _liveness_expired(
        self, worker: Worker, since: float, incarnation: int
    ) -> None:
        if incarnation != self._incarnation or self.crashed:
            return
        if self._unreachable.get(worker.name) != since:
            return  # reconnected, or a fresh partition restarted the clock
        del self._unreachable[worker.name]
        if worker.name not in self.workers:
            return
        # Ask the worker object (not just its live runs) what is still
        # bound to it: held results the partition kept from us and tasks
        # that died in a detached kill must requeue too, or they would
        # sit in ``running`` forever.
        bound = worker.unfinished_task_ids()
        lost = [t for tid, t in list(self.running.items()) if tid in bound]
        self.workers_declared_lost += 1
        if self.tracer.enabled:
            self.tracer.emit(
                "wq",
                "worker.declared_lost",
                worker=worker.name,
                tasks=len(lost),
            )
        self.worker_lost(worker, lost)

    # ----------------------------------------------------------- availability
    def pause(self) -> None:
        """The master process went down (pod killed/restarting)."""
        if not self.available:
            return
        self.available = False
        self.outages += 1
        if self.tracer.enabled:
            self.tracer.emit("wq", "master.pause", outages=self.outages)

    def resume(self) -> None:
        """The master is back (sticky identity + persistent volume): the
        queue survived; buffered worker completions are delivered now."""
        if self.available:
            return
        if self.crashed:
            return  # a crashed master needs recover(), not resume()
        self.available = True
        if self.tracer.enabled:
            self.tracer.emit(
                "wq", "master.resume", buffered=len(self._buffered_completions)
            )
        buffered, self._buffered_completions = self._buffered_completions, []
        for worker, task in buffered:
            self._finalize_completion(worker, task)
        self._schedule_dispatch()

    # ------------------------------------------------------ crash recovery
    def crash(self, *, restart_delay_s: Optional[float] = None) -> None:
        """The master process died and lost its in-memory state. Unlike
        :meth:`pause` (a blip the sticky pod identity papers over), a
        crash wipes the queue, the worker table, and the monitor — only
        the journal (on the persistent volume) survives. Workers notice
        the dead connection, keep running what they have, and poll for
        the replacement with backoff (:meth:`Worker.master_lost`).
        """
        if self.crashed:
            return
        self.crashed = True
        self.crashes += 1
        self.last_crash_at = self.engine.now
        if self.tracer.enabled:
            self.tracer.emit(
                "wq",
                "master.crash",
                queued=len(self.queue),
                running=len(self.running),
                workers=len(self.workers),
            )
        self.first_completion_after_recovery_at = None
        if self.available:
            self.available = False
            self.outages += 1
        self._incarnation += 1
        # ``master_lost`` never re-enters the worker table, so iterating
        # the live view (no defensive copy) is safe here.
        for worker in self.workers.values():
            worker.master_lost()
        self.workers.clear()
        self._reset_worker_caches()
        self._reset_queue([])
        self.running.clear()
        self.done.clear()
        self.abandoned.clear()
        self._unclaimed.clear()
        self._delivered.clear()
        self.tasks_submitted = 0
        self._backoff_pending = 0
        self.monitor.reset()
        self._spec.clear()
        self._spec_origin.clear()
        if self._spec_loop is not None:
            self._spec_loop.stop()
            self._spec_loop = None
        # _callbacks / _abandoned_callbacks persist — clients reconnect to
        # the replacement pod. _buffered_completions persist too: those
        # outputs sit at the workers, not in master memory.
        if restart_delay_s is not None:
            self.engine.call_in(restart_delay_s, self.recover)

    def recover(self, *, replay: Optional[bool] = None) -> None:
        """The replacement master pod is up. With ``replay`` (default
        :attr:`replay_journal`) the journal reconstructs the pre-crash
        state: completed results re-feed the monitor, the ready queue and
        retry counters come back, and tasks in flight at crash time wait
        in the unclaimed set for their workers to reconnect (requeued
        after :attr:`recovery_grace_s` if they never do). Without replay
        this is a cold restart: every submitted task re-enters the queue
        and already-completed work re-executes.
        """
        if not self.crashed:
            return
        use_replay = self.replay_journal if replay is None else replay
        state = self.journal.replay(completions=use_replay)
        self.tasks_submitted = state.submitted
        if use_replay:
            self._reset_queue(list(state.ready))
            self._unclaimed = dict(state.unclaimed)
            self._delivered = set(state.delivered)
            self.abandoned = list(state.abandoned)
            for task in chain(self._unclaimed.values(), self.queue):
                if task.id in state.attempts:
                    task.attempts = state.attempts[task.id]
                if task.id in state.progress:
                    task.progress_s = state.progress[task.id]
            for task, result in state.completions:
                task.state = TaskState.DONE
                task.result = result
                self.done.append(task)
                self.monitor.record(result)
            for category, floor in state.escalations:
                self.monitor.observe_exhaustion(category, floor)
            # Quarantines outlive the crash: the journal knows which
            # workers were condemned, and the verdict is re-applied when
            # (if) each one reconnects.
            self._recovered_quarantined = set(state.quarantined)
        else:
            # Cold restart: the quarantine ledger died with the PV.
            self._recovered_quarantined = set()
            ready: List[Task] = []
            for task in state.ready:
                if task.result is not None:
                    # Completed before the crash; the cold restart
                    # forgot, so it will burn a second execution.
                    self.tasks_rerun += 1
                task.result = None
                task.finish_time = None
                task.attempts = 0
                task.min_allocation = None
                # The cold restart lost the PV, checkpoints included.
                task.progress_s = 0.0
                task.reset_for_retry()
                ready.append(task)
            self._reset_queue(ready)
        self.recovered_queue_depth = len(self.queue)
        self.crashed = False
        self.available = True
        self.last_recovered_at = self.engine.now
        if self.tracer.enabled:
            self.tracer.emit(
                "wq",
                "master.recover",
                strategy="journal" if use_replay else "cold",
                queue_depth=self.recovered_queue_depth,
                unclaimed=len(self._unclaimed),
                completions_restored=len(self.done),
            )
        buffered, self._buffered_completions = self._buffered_completions, []
        for worker, task in buffered:
            self._finalize_completion(worker, task)
        if self._unclaimed:
            self.engine.call_in(
                self.recovery_grace_s, self._requeue_unclaimed, self._incarnation
            )
        if self.queue or self.running or self._unclaimed:
            self._ensure_speculation_loop()
        self._schedule_dispatch()

    def _requeue_unclaimed(self, incarnation: int) -> None:
        """The reconnect grace window closed: whatever recovery left
        unclaimed has no surviving worker — retry it at the queue front."""
        if incarnation != self._incarnation or self.crashed:
            return
        leftovers = list(self._unclaimed.values())
        self._unclaimed.clear()
        for task in reversed(leftovers):
            self._charge_waste(task)
            task.attempts += 1
            if task.attempts > self.max_retries:
                self._abandon(task)
                continue
            self.tasks_requeued += 1
            task.reset_for_retry()
            self.journal.record_retry(self.engine.now, task)
            if self.tracer.enabled:
                self.tracer.emit(
                    "wq",
                    "task.retry",
                    task.category,
                    task_id=task.id,
                    reason="unclaimed",
                    attempt=task.attempts,
                )
            self._enqueue_front(task)
        if leftovers:
            self._schedule_dispatch()

    def worker_reconnected(self, worker: Worker) -> None:
        """A worker that survived the crash found the replacement master.
        Adopt the runs it still carries when they match an unclaimed task
        the journal knows about; anything else — a speculative copy, an
        attempt the recovered master forgot — is cancelled and re-run
        through the normal queue."""
        if worker.state not in (WorkerState.READY, WorkerState.DRAINING):
            return
        self.workers[worker.name] = worker
        self._refresh_worker_cache(worker)
        self._unreachable.pop(worker.name, None)
        if worker.name in self._recovered_quarantined:
            # The journal condemned this worker before the crash; the
            # verdict survives its reconnect. Restart the probation clock
            # from now — the pre-crash timer died with the old process.
            self._recovered_quarantined.discard(worker.name)
            if self.health is not None:
                worker.quarantined = True
                self.health.restore_quarantine(worker.name)
                self._refresh_worker_cache(worker)
                if self.health.config.probation_after_s > 0:
                    seq = self._quarantine_seq.get(worker.name, 0) + 1
                    self._quarantine_seq[worker.name] = seq
                    self.engine.call_in(
                        self.health.config.probation_after_s,
                        self._probation_due,
                        worker,
                        seq,
                        self._incarnation,
                    )
        # Snapshot once: ``cancel_run`` below mutates ``worker.runs``.
        for run in list(worker.runs.values()):
            task = run.task
            adoptable = (
                not worker.quarantined
                and task.result is None
                and task.dispatch_time is not None
                # A task requeued while we were away may already be
                # running on another worker — the Task object is shared,
                # so ``running.get(id) is task`` alone cannot tell "still
                # mine" from "re-dispatched elsewhere". Adopting the
                # stale copy would double-execute it.
                and not self._running_elsewhere(task, worker)
                and (
                    # Healed partition, liveness clock still running: the
                    # master never forgot the run (speculative copies
                    # included) — just re-adopt it.
                    self.running.get(task.id) is task
                    or (
                        task.speculation_of is None
                        and (
                            task.id in self._unclaimed
                            or task.id in self._queued_ids
                        )
                    )
                )
            )
            if adoptable:
                self._unclaimed.pop(task.id, None)
                self._dequeue(task)
                self.running[task.id] = task
            else:
                self._charge_waste(task)
                worker.cancel_run(task)
        self._schedule_dispatch()

    # ------------------------------------------------------------- lifecycle
    def __enter__(self) -> "Master":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
