"""Checkpoint/restore task migration: drain without losing progress.

Every capacity shrink used to discard in-flight progress via
kill-and-requeue (evacuation). This module adds the alternative the
paper's wasted-work accounting begs for: snapshot a running task's
progress on its worker, ship the checkpoint to the master, and resume
the task elsewhere from the banked progress.

The model, layer by layer:

* **Checkpoint model** (:class:`CheckpointSpec`, attached per task):
  tasks checkpoint at a fixed cadence (``interval_s``), so a snapshot
  can only bank progress up to the last completed interval — work since
  then is lost (``lost_s``). Cutting the snapshot pauses execution for
  ``cost_s`` and ships ``size_mb`` over the shared master link. Tasks
  without a spec cannot migrate and fall back to evacuation.

* **Worker handshake** (``Worker.migrate_out``): pause → cut (cost) →
  ship (link transfer) → deliver to ``Master.migration_arrived``. The
  run keeps its allocation until the checkpoint is off the node; a kill
  mid-snapshot loses the cut and degrades to the plain worker-lost
  path. Detached/partitioned workers hold shipped checkpoints locally
  and re-deliver on reconnect, exactly like held results.

* **Master resume** (``Master.migration_arrived``): at-most-once,
  guarded by the same ``_running_elsewhere`` machinery that protects
  result delivery — a stale checkpoint from a superseded attempt is
  dropped. An accepted checkpoint journals CHECKPOINT + MIGRATE_OUT,
  banks ``task.progress_s``, requeues the task at the queue front
  (no attempt burned — migration is voluntary), and the next dispatch
  journals MIGRATE_IN with the resumed progress so replay is
  bit-faithful.

* **Policies** (:class:`MigrationCoordinator`): Megaphone's vocabulary —
  ``sudden`` moves everything at once (fast but floods the link),
  ``fluid`` trickles one task at a time (cheap but slow), and
  ``batched-fluid`` moves fixed-size batches (the compromise that wins
  under preemption notices). The coordinator triages each run against
  the drain deadline and falls back to evacuation when the estimated
  checkpoint time does not fit the remaining notice.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine
    from repro.wq.master import Master
    from repro.wq.task import Task
    from repro.wq.worker import Worker

#: Valid migration policies (Megaphone's pattern vocabulary).
POLICIES = ("sudden", "fluid", "batched-fluid")


@dataclass(frozen=True, slots=True)
class CheckpointSpec:
    """How a task category checkpoints (seeded per workload).

    ``interval_s`` — cadence of internal checkpoints: a snapshot banks
    progress up to the last completed interval (0 = continuous, banks
    everything). ``cost_s`` — pause to cut the snapshot. ``size_mb`` —
    checkpoint image shipped over the master link.
    """

    interval_s: float = 30.0
    cost_s: float = 2.0
    size_mb: float = 50.0

    def __post_init__(self) -> None:
        if self.interval_s < 0:
            raise ValueError(f"interval_s must be >= 0, got {self.interval_s}")
        if self.cost_s < 0:
            raise ValueError(f"cost_s must be >= 0, got {self.cost_s}")
        if self.size_mb < 0:
            raise ValueError(f"size_mb must be >= 0, got {self.size_mb}")

    def banked_progress(self, elapsed_s: float) -> float:
        """Progress a snapshot cut after ``elapsed_s`` of execution can
        bank: the last completed checkpoint interval."""
        if elapsed_s <= 0:
            return 0.0
        if self.interval_s <= 0:
            return elapsed_s
        return min(elapsed_s, math.floor(elapsed_s / self.interval_s) * self.interval_s)


@dataclass(frozen=True, slots=True)
class MigrationConfig:
    """Coordinator knobs.

    ``policy`` is the default pacing; ``policy_for_reason`` overrides it
    per drain reason (e.g. ``{"preemption": "sudden"}`` when the notice
    is short). ``deadline_margin`` scales the drain deadline before the
    fit check — 0.8 keeps the same safety factor the preemption
    responder's grace triage uses.
    """

    policy: str = "batched-fluid"
    batch_size: int = 2
    deadline_margin: float = 0.8
    policy_for_reason: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(f"unknown policy {self.policy!r}; known: {POLICIES}")
        for reason, policy in self.policy_for_reason.items():
            if policy not in POLICIES:
                raise ValueError(
                    f"unknown policy {policy!r} for reason {reason!r}; "
                    f"known: {POLICIES}"
                )
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if not 0.0 < self.deadline_margin <= 1.0:
            raise ValueError(
                f"deadline_margin must be in (0, 1], got {self.deadline_margin}"
            )

    def policy_for(self, reason: str) -> str:
        return self.policy_for_reason.get(reason, self.policy)


class _Drain:
    """One worker being drained: its pending/in-flight migration queues."""

    __slots__ = ("worker", "policy", "reason", "pending", "in_flight")

    def __init__(self, worker: "Worker", policy: str, reason: str):
        self.worker = worker
        self.policy = policy
        self.reason = reason
        #: Tasks triaged as migratable, not yet snapshotting (id order).
        self.pending: List["Task"] = []
        #: Task ids currently snapshotting/shipping off this worker.
        self.in_flight: set = set()


class MigrationCoordinator:
    """Paces checkpoint migrations off draining workers.

    One coordinator serves the whole stack; callers hand it a worker and
    a drain reason (+ optional deadline) and it triages every run:
    checkpointable tasks whose estimated snapshot+ship time fits the
    margin-scaled deadline migrate under the reason's policy, everything
    else falls back to ``Master.evacuate_worker`` (kill-and-requeue).
    """

    def __init__(
        self,
        engine: "Engine",
        master: "Master",
        config: Optional[MigrationConfig] = None,
        *,
        tracer=None,
        metrics=None,
    ) -> None:
        from repro.telemetry import NULL_TRACER

        self.engine = engine
        self.master = master
        self.config = config if config is not None else MigrationConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._drains: Dict[str, _Drain] = {}
        self.migrations_started = 0
        self.migrations_completed = 0
        self.migrations_aborted = 0
        self.migration_fallbacks = 0
        self._c_migrations = None
        self._h_ship = None
        if metrics is not None:
            self._c_migrations = metrics.counter(
                "migrations_total", "Migration outcomes by policy"
            )
            self._h_ship = metrics.histogram(
                "migration_ship_seconds", "Snapshot-cut to resume-accept latency"
            )
        master.add_migration_listener(self._migration_resolved)
        master.add_worker_lost_listener(self.worker_gone)

    # ------------------------------------------------------------- triage
    def estimate_checkpoint_s(self, task: "Task") -> float:
        """Snapshot cut + ship time at the link's nominal rate (ignores
        contention — this is planning, not simulation)."""
        spec = task.checkpoint
        assert spec is not None
        rate = self.master.link.capacity_mbps
        ship = spec.size_mb / rate if rate > 0 else 0.0
        return spec.cost_s + ship

    def drain_worker(
        self,
        worker: "Worker",
        *,
        reason: str,
        deadline_s: Optional[float] = None,
        tasks: Optional[List["Task"]] = None,
    ) -> int:
        """Migrate what fits, evacuate the rest. ``tasks`` restricts the
        drain to a subset of the worker's runs (the preemption responder
        leaves nearly-finished runs racing the grace clock); None drains
        everything. Returns the number of migrations started (or queued
        behind the pacing policy)."""
        policy = self.config.policy_for(reason)
        budget = (
            deadline_s * self.config.deadline_margin
            if deadline_s is not None
            else math.inf
        )
        migrate: List["Task"] = []
        evacuate: List["Task"] = []
        if tasks is None:
            candidates = [run.task for run in worker.runs.values()]
        else:
            candidates = [t for t in tasks if t.id in worker.runs]
        # id order: deterministic, and matches the seq-keyed evacuation
        # order so mixed migrate/evacuate drains stay reproducible.
        candidates.sort(key=lambda t: t.id)
        spent = 0.0
        for task in candidates:
            if task.id in self._inflight_ids(worker):
                continue  # already migrating off this worker
            decision, estimate = self._triage(task, policy, budget, spent)
            if decision == "migrate":
                # Fluid pacing ships sequentially, so later tasks pay
                # for everything queued ahead of them; sudden ships
                # concurrently and each task only pays its own estimate.
                if policy != "sudden":
                    spent += estimate
                migrate.append(task)
            else:
                evacuate.append(task)
                self.migration_fallbacks += 1
            self.tracer.emit(
                "wq",
                "migration.decision",
                "migration",
                task_id=task.id,
                worker=worker.name,
                reason=reason,
                policy=policy,
                action=decision,
                estimate_s=estimate,
                budget_s=budget if budget != math.inf else -1.0,
                state=task.state.value,
            )
        if evacuate:
            self.master.evacuate_worker(worker, evacuate)
        if migrate:
            drain = self._drains.setdefault(worker.name, _Drain(worker, policy, reason))
            drain.pending.extend(migrate)
            self._pump(drain)
        return len(migrate)

    def _triage(self, task, policy: str, budget: float, spent: float):
        from repro.wq.task import TaskState

        if task.checkpoint is None:
            return "evacuate", 0.0
        if task.state is not TaskState.RUNNING:
            # Still fetching inputs (nothing to bank) or already
            # returning — evacuation loses nothing here.
            return "evacuate", 0.0
        estimate = self.estimate_checkpoint_s(task)
        if spent + estimate > budget:
            return "evacuate", estimate
        elapsed = self.engine.now - task.start_time
        if task.checkpoint.banked_progress(elapsed) <= 0 and task.progress_s <= 0:
            # Nothing to save yet; a checkpoint would only add cost.
            return "evacuate", estimate
        return "migrate", estimate

    def _inflight_ids(self, worker: "Worker") -> set:
        drain = self._drains.get(worker.name)
        return drain.in_flight if drain is not None else set()

    # ------------------------------------------------------------- pacing
    def _pump(self, drain: _Drain) -> None:
        """Start pending migrations up to the policy's concurrency."""
        from repro.wq.worker import WorkerState

        if drain.worker.state in (WorkerState.KILLED, WorkerState.STOPPED):
            self.worker_gone(drain.worker)
            return
        width = {
            "sudden": len(drain.pending) + len(drain.in_flight),
            "fluid": 1,
            "batched-fluid": self.config.batch_size,
        }[drain.policy]
        while drain.pending and len(drain.in_flight) < width:
            task = drain.pending.pop(0)
            if not drain.worker.migrate_out(task):
                # Finished/failed/killed since triage; nothing to move.
                self.migrations_aborted += 1
                self._count(drain.policy, "aborted")
                continue
            drain.in_flight.add(task.id)
            self.migrations_started += 1
            self._count(drain.policy, "started")
        if not drain.pending and not drain.in_flight:
            self._drains.pop(drain.worker.name, None)

    def _migration_resolved(
        self, worker: "Worker", task: "Task", accepted: bool, ship_s: float
    ) -> None:
        """Master-side notification: a shipped checkpoint was accepted
        (or dropped as stale). Frees the drain slot and pumps the next
        pending migration — fluid pacing lives here."""
        drain = self._drains.get(worker.name)
        if accepted:
            self.migrations_completed += 1
            self._count(drain.policy if drain else self.config.policy, "completed")
            if self._h_ship is not None:
                self._h_ship.observe(ship_s)
        else:
            self.migrations_aborted += 1
            self._count(drain.policy if drain else self.config.policy, "stale")
        if drain is None:
            return
        drain.in_flight.discard(task.id)
        self._pump(drain)

    def worker_gone(self, worker: "Worker") -> None:
        """The worker died mid-drain; in-flight checkpoints are lost and
        the plain worker-lost path owns the requeue."""
        drain = self._drains.pop(worker.name, None)
        if drain is None:
            return
        lost = len(drain.in_flight) + len(drain.pending)
        self.migrations_aborted += lost
        for _ in range(lost):
            self._count(drain.policy, "lost")

    def _count(self, policy: str, outcome: str) -> None:
        if self._c_migrations is not None:
            self._c_migrations.inc(policy=policy, outcome=outcome)

    # -------------------------------------------------------------- stats
    def stats(self) -> Dict[str, int]:
        return {
            "migrations_started": self.migrations_started,
            "migrations_completed": self.migrations_completed,
            "migrations_aborted": self.migrations_aborted,
            "migration_fallbacks": self.migration_fallbacks,
        }
