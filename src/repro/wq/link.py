"""The master's egress network link with max-min fair sharing.

§III-A's sizing trade-off hinges on this: "the master's egress network
bandwidth is fixed, [so] the fine-grained configuration has to share
limited bandwidth between more workers with more data movements". We
model one :class:`Link` of fixed capacity; every active :class:`Transfer`
receives a max-min fair share, computed by water-filling over optional
per-transfer rate caps (a worker's node NIC). The link re-plans on every
membership change, settling accrued progress first, so completion times
are exact for piecewise-constant rates.

The link also records a utilization step-series, from which fig 4's
"average bandwidth" column is computed.
"""

from __future__ import annotations

import bisect
import itertools
import math
from typing import Callable, Dict, List, Optional

from repro.sim.engine import Engine, ScheduledEvent
from repro.sim.tracing import StepSeries

_transfer_ids = itertools.count(1)

TransferCallback = Callable[["Transfer"], None]


class Transfer:
    """An in-flight data movement over a :class:`Link`."""

    __slots__ = (
        "id",
        "label",
        "size_mb",
        "remaining_mb",
        "rate_cap_mbps",
        "rate_mbps",
        "start_time",
        "finish_time",
        "on_complete",
        "cancelled",
    )

    def __init__(
        self,
        label: str,
        size_mb: float,
        rate_cap_mbps: Optional[float],
        on_complete: Optional[TransferCallback],
        start_time: float,
    ) -> None:
        self.id = next(_transfer_ids)
        self.label = label
        self.size_mb = size_mb
        self.remaining_mb = size_mb
        self.rate_cap_mbps = rate_cap_mbps
        self.rate_mbps = 0.0
        self.start_time = start_time
        self.finish_time: Optional[float] = None
        self.on_complete = on_complete
        self.cancelled = False

    @property
    def done(self) -> bool:
        return self.finish_time is not None

    @property
    def duration(self) -> Optional[float]:
        return None if self.finish_time is None else self.finish_time - self.start_time

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Transfer #{self.id} {self.label!r} {self.remaining_mb:.1f}/{self.size_mb:.1f}MB @{self.rate_mbps:.1f}MB/s>"


class Link:
    """A shared link of fixed capacity with max-min fair allocation.

    ``per_stream_overhead`` models protocol/TCP inefficiency under many
    concurrent streams: with ``n`` active transfers the effective
    aggregate capacity is ``capacity / (1 + c·(n−1))``. The paper's §III-A
    observes exactly this ("extra network overheads" when many workers
    share the master's egress); 0 disables it.
    """

    def __init__(
        self,
        engine: Engine,
        capacity_mbps: float,
        name: str = "master-egress",
        *,
        per_stream_overhead: float = 0.0,
    ):
        if capacity_mbps <= 0:
            raise ValueError(f"link capacity must be positive, got {capacity_mbps}")
        if per_stream_overhead < 0:
            raise ValueError("per_stream_overhead must be non-negative")
        self.engine = engine
        self.capacity_mbps = capacity_mbps
        self.per_stream_overhead = per_stream_overhead
        self.name = name
        self._active: List[Transfer] = []
        self._last_update = engine.now
        self._completion_event: Optional[ScheduledEvent] = None
        self.bytes_moved_mb = 0.0
        self.transfers_completed = 0
        #: Instantaneous aggregate throughput (MB/s) as a step function.
        self.throughput = StepSeries(f"{name}.throughput", 0.0)

    # ---------------------------------------------------------------- start
    def start_transfer(
        self,
        label: str,
        size_mb: float,
        *,
        rate_cap_mbps: Optional[float] = None,
        on_complete: Optional[TransferCallback] = None,
    ) -> Transfer:
        """Begin a transfer; ``on_complete`` fires when it finishes.

        Zero-size transfers complete at the current instant (via the event
        queue, preserving callback ordering guarantees).
        """
        if size_mb < 0:
            raise ValueError(f"transfer size must be non-negative, got {size_mb}")
        if rate_cap_mbps is not None and rate_cap_mbps <= 0:
            raise ValueError(f"rate cap must be positive, got {rate_cap_mbps}")
        t = Transfer(label, size_mb, rate_cap_mbps, on_complete, self.engine.now)
        if size_mb == 0:
            t.finish_time = self.engine.now
            self.transfers_completed += 1
            if on_complete is not None:
                self.engine.call_soon(on_complete, t)
            return t
        self._settle()
        self._active.append(t)
        self._replan()
        return t

    def cancel(self, transfer: Transfer) -> None:
        """Abort an in-flight transfer (worker killed); no callback fires."""
        if transfer.done or transfer.cancelled:
            return
        transfer.cancelled = True
        self._settle()
        if transfer in self._active:
            self._active.remove(transfer)
        self._replan()

    # ------------------------------------------------------------- internals
    def _settle(self) -> None:
        """Account progress accrued since the last re-plan."""
        now = self.engine.now
        dt = now - self._last_update
        if dt > 0:
            for t in self._active:
                moved = t.rate_mbps * dt
                t.remaining_mb = max(0.0, t.remaining_mb - moved)
                self.bytes_moved_mb += moved
        self._last_update = now

    def _replan(self) -> None:
        """Recompute fair shares and re-arm the next completion event."""
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        if not self._active:
            self.throughput.record(self.engine.now, 0.0)
            return
        self._allocate_rates()
        self.throughput.record(self.engine.now, sum(t.rate_mbps for t in self._active))
        # Only the earliest completion needs an event; later ones are
        # re-planned when it fires.
        next_t, next_finish = None, math.inf
        for t in self._active:
            if t.rate_mbps <= 0:
                continue
            eta = t.remaining_mb / t.rate_mbps
            if eta < next_finish:
                next_finish, next_t = eta, t
        if next_t is not None:
            self._completion_event = self.engine.call_in(next_finish, self._on_completion)

    def effective_capacity(self, n_active: int) -> float:
        """Aggregate capacity available to ``n_active`` concurrent streams."""
        if n_active <= 0:
            return self.capacity_mbps
        return self.capacity_mbps / (1.0 + self.per_stream_overhead * (n_active - 1))

    def _allocate_rates(self) -> None:
        """Water-filling max-min fairness under per-transfer caps."""
        remaining_capacity = self.effective_capacity(len(self._active))
        # Start by treating everyone as uncapped; iteratively freeze
        # transfers whose cap is below the current equal share.
        pending = list(self._active)
        frozen: Dict[int, float] = {}
        while True:
            free = [t for t in pending if t.id not in frozen]
            if not free:
                break
            share = remaining_capacity / len(free)
            newly_frozen = [
                t for t in free if t.rate_cap_mbps is not None and t.rate_cap_mbps < share
            ]
            if not newly_frozen:
                for t in free:
                    frozen[t.id] = share
                break
            for t in newly_frozen:
                assert t.rate_cap_mbps is not None
                frozen[t.id] = t.rate_cap_mbps
                remaining_capacity -= t.rate_cap_mbps
            remaining_capacity = max(0.0, remaining_capacity)
        for t in self._active:
            t.rate_mbps = frozen.get(t.id, 0.0)

    def _on_completion(self) -> None:
        self._completion_event = None
        self._settle()
        finished = [t for t in self._active if t.remaining_mb <= 1e-9]
        for t in finished:
            self._active.remove(t)
            t.remaining_mb = 0.0
            t.finish_time = self.engine.now
            self.transfers_completed += 1
        self._replan()
        for t in finished:
            if t.on_complete is not None:
                t.on_complete(t)

    # ---------------------------------------------------------------- reads
    @property
    def active_count(self) -> int:
        return len(self._active)

    def current_rate_of(self, transfer: Transfer) -> float:
        return transfer.rate_mbps if transfer in self._active else 0.0

    def mean_throughput(self, t0: float, t1: float) -> float:
        """Time-averaged aggregate throughput over [t0, t1] (MB/s)."""
        return self.throughput.mean(t0, t1)

    def busy_seconds(self, t0: float, t1: float) -> float:
        """Total time within [t0, t1] with at least one active transfer."""
        busy = 0.0
        series = self.throughput
        t, v = t0, series.value_at(t0)
        idx = bisect.bisect_right(series.times, t0)
        while idx < len(series.times) and series.times[idx] < t1:
            nt = series.times[idx]
            if v > 0:
                busy += nt - t
            t, v = nt, series.values[idx]
            idx += 1
        if v > 0:
            busy += t1 - t
        return busy

    def mean_active_throughput(self, t0: float, t1: float) -> float:
        """Mean throughput *while transferring* — the paper's fig-4
        "average bandwidth" (idle periods excluded)."""
        busy = self.busy_seconds(t0, t1)
        if busy <= 0:
            return 0.0
        return self.throughput.integrate(t0, t1) / busy

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Link {self.name!r} cap={self.capacity_mbps}MB/s active={len(self._active)}>"
