"""The resource monitor: per-category statistics of completed tasks.

§IV-A: "By collecting the resource usage of complete jobs, we can
estimate the resource requirements of jobs belonging to the same stage"
— the monitor is the feedback input of HTA's controller (fig 7's "runtime
statics of completed jobs"). For each category we keep running aggregates
of execution time and measured resource consumption; the estimate served
to the dispatcher is a small safety margin above the observed maximum
(Work Queue's monitor sizes allocations the same way, ref. [25]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.resources import ResourceVector
from repro.wq.task import TaskResult


@dataclass
class CategoryStats:
    """Aggregates for one task category."""

    category: str
    count: int = 0
    total_execute_s: float = 0.0
    max_execute_s: float = 0.0
    min_execute_s: float = float("inf")
    max_resources: ResourceVector = field(default_factory=ResourceVector.zero)
    total_cores: float = 0.0
    #: Allocation floor raised by resource-exhaustion kills (Work Queue's
    #: max-allocation escalation); served through ``resource_estimate`` so
    #: both the dispatcher and HTA's planner see post-escalation sizes.
    escalated_floor: ResourceVector = field(default_factory=ResourceVector.zero)
    escalations: int = 0

    def observe(self, execute_s: float, resources: ResourceVector) -> None:
        self.count += 1
        self.total_execute_s += execute_s
        self.max_execute_s = max(self.max_execute_s, execute_s)
        self.min_execute_s = min(self.min_execute_s, execute_s)
        self.max_resources = self.max_resources.max_with(resources)
        self.total_cores += resources.cores

    def observe_exhaustion(self, required: ResourceVector) -> None:
        """A task of this category was killed for exceeding its
        allocation; raise the category floor to what the retry needs."""
        self.escalated_floor = self.escalated_floor.max_with(required)
        self.escalations += 1

    @property
    def mean_execute_s(self) -> float:
        return self.total_execute_s / self.count if self.count else 0.0

    @property
    def mean_cores(self) -> float:
        return self.total_cores / self.count if self.count else 0.0

    def resource_estimate(self, safety_margin: float = 0.0) -> Optional[ResourceVector]:
        """Allocation recommendation: observed max, padded by the margin.

        Cores are never padded below one whole core's granularity issue:
        we pad multiplicatively and leave rounding to the dispatcher.
        """
        if self.count == 0 and self.escalated_floor.is_zero():
            return None
        return self.max_resources.scale(1.0 + safety_margin).max_with(
            self.escalated_floor
        )

    def runtime_estimate(self) -> Optional[float]:
        return self.mean_execute_s if self.count else None


class ResourceMonitor:
    """Collects :class:`TaskResult` observations, grouped by category."""

    def __init__(self, safety_margin: float = 0.0):
        if safety_margin < 0:
            raise ValueError("safety_margin must be non-negative")
        self.safety_margin = safety_margin
        self._stats: Dict[str, CategoryStats] = {}
        self.results: List[TaskResult] = []

    # --------------------------------------------------------------- writes
    def record(self, result: TaskResult) -> None:
        self.results.append(result)
        stats = self._stats.setdefault(result.category, CategoryStats(result.category))
        stats.observe(result.execute_seconds, result.measured_resources)

    def observe_exhaustion(self, category: str, required: ResourceVector) -> None:
        """Record a resource-exhaustion escalation for ``category``."""
        stats = self._stats.setdefault(category, CategoryStats(category))
        stats.observe_exhaustion(required)

    def reset(self) -> None:
        """Forget all observations (a crashed master lost its memory;
        recovery re-feeds the monitor from the journal). Mutates in
        place — consumers hold the monitor by reference."""
        self._stats.clear()
        self.results.clear()

    # ---------------------------------------------------------------- reads
    def category(self, name: str) -> Optional[CategoryStats]:
        return self._stats.get(name)

    def categories(self) -> Dict[str, CategoryStats]:
        return dict(self._stats)

    def has_estimate(self, category: str) -> bool:
        stats = self._stats.get(category)
        return stats is not None and stats.count > 0

    def resource_estimate(self, category: str) -> Optional[ResourceVector]:
        stats = self._stats.get(category)
        if stats is None:
            return None
        return stats.resource_estimate(self.safety_margin)

    def runtime_estimate(self, category: str) -> Optional[float]:
        stats = self._stats.get(category)
        return None if stats is None else stats.runtime_estimate()

    @property
    def completed_count(self) -> int:
        return len(self.results)

    @property
    def escalation_count(self) -> int:
        return sum(s.escalations for s in self._stats.values())

    def mean_turnaround(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.turnaround for r in self.results) / len(self.results)
