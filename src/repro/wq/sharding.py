"""Sharded data plane: task partitioning and the foreman tier.

One :class:`~repro.wq.master.Master` serializes all dispatch. That is
faithful to Work Queue and fine for the paper's hundreds of tasks, but
a million-task workflow spends most of its wall clock in the master's
dispatch passes (each completion re-scans the queue). This module
splits the data plane the way glide-in / pool-of-pools systems do:

* :class:`TaskPartitioner` — a seeded hash (or range) function mapping
  every task id to one of N shards, so a workflow fans out across N
  independent masters, each owning a disjoint slice of the queue;
* :class:`Foreman` — the master-of-masters. Workers and tasks talk to
  their own shard; the foreman aggregates per-shard queue status
  (``cores_waiting``, category stats via the shared monitor, counters,
  quarantine sets) *upward* so :class:`~repro.hta.operator.HtaOperator`
  and the accounting layer consume one logical view unchanged.

What stays per-shard: the queue, the run table, retry/backoff state,
the transaction journal, worker sessions. What is global: the
:class:`~repro.wq.monitor.ResourceMonitor` (all shards feed one
category-statistics view, so allocation estimates see the full sample
stream), the HTA control loop, and the foreman's aggregate accounting.

Conservation accounting is defined on the *merged* journal
(:func:`merge_journals`): a cross-shard transfer leaves a SUBMIT in the
origin shard and a COMPLETE in the destination, so per-shard journals
intentionally do not balance — the merged log, ordered by time with
stable shard order, replays to the same task-conservation totals as
the foreman's aggregate view (pinned by a Hypothesis property).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sim.engine import Engine
from repro.wq.dispatch import CompletionCallback, MasterStats
from repro.wq.journal import TransactionJournal
from repro.wq.master import Master
from repro.wq.task import Task
from repro.wq.worker import Worker

#: Knuth's multiplicative constant — spreads sequential task ids
#: uniformly across shards without the process-salted ``hash()``.
_KNUTH = 2654435761


@dataclass(frozen=True, slots=True)
class TaskPartitioner:
    """Deterministic task-id → shard mapping.

    ``hash`` mode (default) scatters sequential ids uniformly — the
    right choice when category mix correlates with submit order.
    ``range`` mode keeps blocks of ``block`` consecutive ids on one
    shard — the right choice when neighbouring tasks share cacheable
    inputs and locality beats balance. Both are pure functions of
    ``(task_id, n_shards, seed)``: two runs at the same seed partition
    identically, which the fidelity harness depends on.
    """

    n_shards: int
    seed: int = 0
    mode: str = "hash"
    #: ``range`` mode only: consecutive ids per shard-block.
    block: int = 64

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        if self.mode not in ("hash", "range"):
            raise ValueError(f"unknown partition mode {self.mode!r}")
        if self.block < 1:
            raise ValueError("block must be at least 1")

    def shard_for(self, task_id: int) -> int:
        if self.n_shards == 1:
            return 0
        if self.mode == "range":
            return (task_id // self.block) % self.n_shards
        return ((task_id * _KNUTH) ^ self.seed) % self.n_shards


def merge_journals(
    journals: Iterable[TransactionJournal],
) -> TransactionJournal:
    """Merge per-shard journals into one log ordered by record time.

    Ties break by shard index then per-shard append order, so the merge
    is a deterministic total order that preserves every shard's internal
    sequence — the property replay depends on (a task's SUBMIT on shard
    A folds before its MIGRATE_IN on shard B at the same timestamp only
    if A precedes B, which the transfer protocol guarantees by writing
    the MIGRATE_OUT before the destination dispatches)."""
    keyed: List[Tuple[float, int, int, object]] = []
    for shard_idx, journal in enumerate(journals):
        for pos, rec in enumerate(journal.records):
            keyed.append((rec.time, shard_idx, pos, rec))
    keyed.sort(key=lambda item: (item[0], item[1], item[2]))
    merged = TransactionJournal()
    merged.records = [rec for _, _, _, rec in keyed]  # type: ignore[misc]
    merged.appends = len(merged.records)
    return merged


class Foreman:
    """Master-of-masters: N dispatch shards behind one logical master.

    The foreman implements the read side of the master surface (stats,
    counters, accounting gauges, task/worker listings) by aggregation,
    and the write side (submit, callbacks, pause/resume, evacuation) by
    routing — submits through the partitioner, worker-scoped operations
    to the shard that owns the worker. Workers themselves never see the
    foreman: each is constructed against its shard master and speaks
    the ordinary worker↔master protocol.

    Degraded mode: a crashed or paused shard drops out of
    :meth:`stats` and the accounting gauges (its numbers are
    unreachable, exactly as a partitioned sub-pool's would be), while
    :attr:`available` stays True as long as *any* shard accepts work —
    one lost shard must not look like total master loss to HTA.
    """

    def __init__(
        self,
        engine: Engine,
        shards: Sequence[Master],
        partitioner: Optional[TaskPartitioner] = None,
    ) -> None:
        if not shards:
            raise ValueError("Foreman needs at least one shard")
        self.engine = engine
        self.shards: List[Master] = list(shards)
        self.partitioner = (
            partitioner
            if partitioner is not None
            else TaskPartitioner(len(self.shards))
        )
        if self.partitioner.n_shards != len(self.shards):
            raise ValueError(
                f"partitioner fans out to {self.partitioner.n_shards} shards "
                f"but {len(self.shards)} were supplied"
            )
        self.name = "wq-foreman"
        #: All shards run under one DispatchConfig; shard 0 is the
        #: reference copy for config-derived reads (verify, health, …).
        self._reference = self.shards[0]
        #: Worker placement cursor for :meth:`master_for_pod`.
        self._next_worker_shard = 0
        #: Tasks moved between shards by :meth:`transfer_queued`.
        self.transfers = 0
        self._journal_cache: Optional[TransactionJournal] = None
        self._journal_cache_len = -1

    # ------------------------------------------------------------- routing
    def shard_for(self, task: Task) -> Master:
        return self.shards[self.partitioner.shard_for(task.id)]

    def submit(self, task: Task) -> None:
        self.shard_for(task).submit(task)

    def submit_many(self, tasks: List[Task]) -> None:
        for task in tasks:
            self.submit(task)

    def master_for_pod(self, pod) -> Master:
        """Shard assignment for a freshly started worker pod: straight
        round-robin, so supply spreads evenly across shards no matter
        which nodes the scheduler picked. Deterministic because pod
        start order is (the simulation is)."""
        shard = self.shards[self._next_worker_shard]
        self._next_worker_shard = (self._next_worker_shard + 1) % len(self.shards)
        return shard

    def transfer_queued(self, task: Task, dst: Master) -> bool:
        """Rebalance: move a *queued* task to another shard's queue
        front. The task must not be running — in-flight work crosses
        shards through the checkpoint path (migrate out of the source
        worker, transfer, resume on a destination worker), never by
        teleporting an execution. Returns False if the task is not
        waiting in any shard's queue."""
        src = None
        for shard in self.shards:
            if task.id in shard._queued_ids:
                src = shard
                break
        if src is None or src is dst:
            return False
        src._dequeue(task)
        dst._enqueue_front(task)
        dst._schedule_dispatch()
        self.transfers += 1
        return True

    # ----------------------------------------------------------- callbacks
    def on_complete(self, fn: CompletionCallback) -> None:
        for shard in self.shards:
            shard.on_complete(fn)

    def on_abandoned(self, fn: Callable[[Task], None]) -> None:
        for shard in self.shards:
            shard.on_abandoned(fn)

    def add_migration_listener(self, fn: Callable) -> None:
        for shard in self.shards:
            shard.add_migration_listener(fn)

    def add_worker_lost_listener(self, fn: Callable[[Worker], None]) -> None:
        for shard in self.shards:
            shard.add_worker_lost_listener(fn)

    # ------------------------------------------------- worker-scoped routing
    def evacuate_worker(
        self, worker: Worker, tasks: Optional[List[Task]] = None
    ) -> List[Task]:
        return worker.master.evacuate_worker(worker, tasks)

    def evacuate(self, pairs: List[Tuple[Worker, Task]]) -> List[Task]:
        """Route each (worker, task) run to the shard owning the worker;
        shard iteration order keeps the requeue deterministic."""
        requeued: List[Task] = []
        for shard in self.shards:
            mine = [(w, t) for w, t in pairs if w.master is shard]
            if mine:
                requeued.extend(shard.evacuate(mine))
        return requeued

    def migration_arrived(
        self,
        worker: Worker,
        task: Task,
        new_progress: float,
        lost_s: float,
        started_at: Optional[float] = None,
    ) -> bool:
        return worker.master.migration_arrived(
            worker, task, new_progress, lost_s, started_at
        )

    # ------------------------------------------------------------ lifecycle
    def pause(self) -> None:
        for shard in self.shards:
            shard.pause()

    def resume(self) -> None:
        for shard in self.shards:
            shard.resume()

    def crash(self, *, restart_delay_s: Optional[float] = None) -> None:
        for shard in self.shards:
            shard.crash(restart_delay_s=restart_delay_s)

    def recover(self, *, replay: Optional[bool] = None) -> None:
        for shard in self.shards:
            shard.recover(replay=replay)

    def close(self) -> None:
        for shard in self.shards:
            shard.close()

    def __enter__(self) -> "Foreman":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------ aggregate state
    @property
    def available(self) -> bool:
        """One reachable shard keeps the logical master available —
        a single crashed shard is degraded capacity, not total loss."""
        return any(s.available for s in self.shards)

    @property
    def degraded(self) -> bool:
        return not all(s.available for s in self.shards)

    @property
    def crashed(self) -> bool:
        return any(s.crashed for s in self.shards)

    @property
    def all_done(self) -> bool:
        return all(s.all_done for s in self.shards)

    @property
    def monitor(self):
        """The shared (global) resource monitor all shards feed."""
        return self._reference.monitor

    @property
    def link(self):
        return self._reference.link

    @property
    def health(self):
        return self._reference.health

    @property
    def verify(self) -> bool:
        return self._reference.verify

    @property
    def value_faults(self):
        return self._reference.value_faults

    @property
    def max_retries(self) -> int:
        return self._reference.max_retries

    @max_retries.setter
    def max_retries(self, value: int) -> None:
        for shard in self.shards:
            shard.max_retries = value

    @property
    def journal(self) -> TransactionJournal:
        """The merged shard journals (recomputed only when a shard has
        appended since the last read)."""
        total = sum(len(s.journal) for s in self.shards)
        if self._journal_cache is None or self._journal_cache_len != total:
            self._journal_cache = merge_journals(s.journal for s in self.shards)
            self._journal_cache_len = total
        return self._journal_cache

    def stats(self) -> MasterStats:
        """The degraded-mode aggregate: reachable shards only. A paused
        or crashed shard's numbers are unreachable (its queue may even
        have been wiped), exactly as a partitioned sub-pool's would be;
        summing what answers matches per-shard ground truth."""
        live = [s.stats() for s in self.shards if s.available]
        return MasterStats(
            time=self.engine.now,
            waiting=sum(s.waiting for s in live),
            running=sum(s.running for s in live),
            done=sum(s.done for s in live),
            workers_connected=sum(s.workers_connected for s in live),
            workers_idle=sum(s.workers_idle for s in live),
            workers_busy=sum(s.workers_busy for s in live),
            workers_draining=sum(s.workers_draining for s in live),
        )

    # ------------------------------------------------------- task listings
    @property
    def queue(self) -> List[Task]:
        return [t for s in self.shards for t in s.queue]

    @property
    def running(self) -> Dict[int, Task]:
        merged: Dict[int, Task] = {}
        for shard in self.shards:
            merged.update(shard.running)
        return merged

    @property
    def done(self) -> List[Task]:
        return [t for s in self.shards for t in s.done]

    @property
    def abandoned(self) -> List[Task]:
        return [t for s in self.shards for t in s.abandoned]

    @property
    def workers(self) -> Dict[str, Worker]:
        merged: Dict[str, Worker] = {}
        for shard in self.shards:
            merged.update(shard.workers)
        return merged

    @property
    def _unclaimed(self) -> Dict[int, Task]:
        merged: Dict[int, Task] = {}
        for shard in self.shards:
            merged.update(shard._unclaimed)
        return merged

    def waiting_tasks(self) -> List[Task]:
        return [t for s in self.shards for t in s.waiting_tasks()]

    def running_tasks(self) -> List[Task]:
        return [t for s in self.shards for t in s.running_tasks()]

    def connected_workers(self) -> List[Worker]:
        return [w for s in self.shards for w in s.connected_workers()]

    def idle_workers(self) -> List[Worker]:
        return [w for s in self.shards for w in s.idle_workers()]

    # --------------------------------------------------- aggregate counters
    def _sum(self, attr: str) -> float:
        return sum(getattr(s, attr) for s in self.shards)

    @property
    def tasks_submitted(self) -> int:
        return int(self._sum("tasks_submitted"))

    @property
    def tasks_requeued(self) -> int:
        return int(self._sum("tasks_requeued"))

    @property
    def tasks_failed(self) -> int:
        return int(self._sum("tasks_failed"))

    @property
    def tasks_exhausted(self) -> int:
        return int(self._sum("tasks_exhausted"))

    @property
    def escalations(self) -> int:
        return int(self._sum("escalations"))

    @property
    def tasks_speculated(self) -> int:
        return int(self._sum("tasks_speculated"))

    @property
    def speculation_wins(self) -> int:
        return int(self._sum("speculation_wins"))

    @property
    def speculation_losses(self) -> int:
        return int(self._sum("speculation_losses"))

    @property
    def verify_fails(self) -> int:
        return int(self._sum("verify_fails"))

    @property
    def checkpoint_verify_fails(self) -> int:
        return int(self._sum("checkpoint_verify_fails"))

    @property
    def corrupted_completes(self) -> int:
        return int(self._sum("corrupted_completes"))

    @property
    def corrupted_goodput_core_s(self) -> float:
        return self._sum("corrupted_goodput_core_s")

    @property
    def quarantines(self) -> int:
        return int(self._sum("quarantines"))

    @property
    def unquarantines(self) -> int:
        return int(self._sum("unquarantines"))

    @property
    def tasks_poisoned(self) -> int:
        return int(self._sum("tasks_poisoned"))

    @property
    def quarantined_rejected(self) -> int:
        return int(self._sum("quarantined_rejected"))

    @property
    def wasted_core_s(self) -> float:
        return self._sum("wasted_core_s")

    @property
    def outages(self) -> int:
        return int(self._sum("outages"))

    @property
    def crashes(self) -> int:
        return int(self._sum("crashes"))

    @property
    def tasks_rerun(self) -> int:
        return int(self._sum("tasks_rerun"))

    @property
    def duplicate_results(self) -> int:
        return int(self._sum("duplicate_results"))

    @property
    def partitions_detected(self) -> int:
        return int(self._sum("partitions_detected"))

    @property
    def workers_declared_lost(self) -> int:
        return int(self._sum("workers_declared_lost"))

    @property
    def tasks_evacuated(self) -> int:
        return int(self._sum("tasks_evacuated"))

    @property
    def migrations_accepted(self) -> int:
        return int(self._sum("migrations_accepted"))

    @property
    def migrations_stale(self) -> int:
        return int(self._sum("migrations_stale"))

    # ---------------------------------------------------- recovery markers
    @property
    def last_crash_at(self) -> Optional[float]:
        stamps = [s.last_crash_at for s in self.shards if s.last_crash_at is not None]
        return max(stamps) if stamps else None

    @property
    def last_recovered_at(self) -> Optional[float]:
        stamps = [
            s.last_recovered_at for s in self.shards if s.last_recovered_at is not None
        ]
        return max(stamps) if stamps else None

    @property
    def first_completion_after_recovery_at(self) -> Optional[float]:
        stamps = [
            s.first_completion_after_recovery_at
            for s in self.shards
            if s.first_completion_after_recovery_at is not None
        ]
        return min(stamps) if stamps else None

    # ----------------------------------------------------------- accounting
    def goodput_core_s(self) -> float:
        return sum(s.goodput_core_s() for s in self.shards)

    def clean_goodput_core_s(self) -> float:
        return sum(s.clean_goodput_core_s() for s in self.shards)

    def cores_in_use(self) -> float:
        return sum(s.cores_in_use() for s in self.shards if s.available)

    def cores_waiting(self) -> float:
        return sum(s.cores_waiting() for s in self.shards if s.available)

    def supplied_cores(self) -> float:
        return sum(s.supplied_cores() for s in self.shards if s.available)
