"""Sharded data plane: task partitioning and the foreman tier.

One :class:`~repro.wq.master.Master` serializes all dispatch. That is
faithful to Work Queue and fine for the paper's hundreds of tasks, but
a million-task workflow spends most of its wall clock in the master's
dispatch passes (each completion re-scans the queue). This module
splits the data plane the way glide-in / pool-of-pools systems do:

* :class:`TaskPartitioner` — a seeded hash (or range) function mapping
  every task id to one of N shards, so a workflow fans out across N
  independent masters, each owning a disjoint slice of the queue;
* :class:`Foreman` — the master-of-masters. Workers and tasks talk to
  their own shard; the foreman aggregates per-shard queue status
  (``cores_waiting``, category stats via the shared monitor, counters,
  quarantine sets) *upward* so :class:`~repro.hta.operator.HtaOperator`
  and the accounting layer consume one logical view unchanged.

What stays per-shard: the queue, the run table, retry/backoff state,
the transaction journal, worker sessions. What is global: the
:class:`~repro.wq.monitor.ResourceMonitor` (all shards feed one
category-statistics view, so allocation estimates see the full sample
stream), the HTA control loop, and the foreman's aggregate accounting.

Conservation accounting is defined on the *merged* journal
(:func:`merge_journals`): a cross-shard transfer leaves a SUBMIT in the
origin shard and a COMPLETE in the destination, so per-shard journals
intentionally do not balance — the merged log, ordered by time with
stable shard order, replays to the same task-conservation totals as
the foreman's aggregate view (pinned by a Hypothesis property). Every
cross-shard move (a :meth:`Foreman.transfer_queued` rebalance or a
:class:`FailoverCoordinator` re-home off a dead shard) is journaled as
a FAILOVER_OUT/FAILOVER_IN pair, so each shard's own log still replays
to exactly the work that shard currently owes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.sim.engine import Engine
from repro.wq.dispatch import CompletionCallback, MasterStats
from repro.wq.journal import TransactionJournal
from repro.wq.master import Master
from repro.wq.task import Task
from repro.wq.worker import Worker, WorkerState

#: Knuth's multiplicative constant — spreads sequential task ids
#: uniformly across shards without the process-salted ``hash()``.
_KNUTH = 2654435761


@dataclass(frozen=True, slots=True)
class TaskPartitioner:
    """Deterministic task-id → shard mapping.

    ``hash`` mode (default) scatters sequential ids uniformly — the
    right choice when category mix correlates with submit order.
    ``range`` mode keeps blocks of ``block`` consecutive ids on one
    shard — the right choice when neighbouring tasks share cacheable
    inputs and locality beats balance. Both are pure functions of
    ``(task_id, n_shards, seed)``: two runs at the same seed partition
    identically, which the fidelity harness depends on.
    """

    n_shards: int
    seed: int = 0
    mode: str = "hash"
    #: ``range`` mode only: consecutive ids per shard-block.
    block: int = 64

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        if self.mode not in ("hash", "range"):
            raise ValueError(f"unknown partition mode {self.mode!r}")
        if self.block < 1:
            raise ValueError("block must be at least 1")

    def shard_for(self, task_id: int) -> int:
        if self.n_shards == 1:
            return 0
        if self.mode == "range":
            return (task_id // self.block) % self.n_shards
        return ((task_id * _KNUTH) ^ self.seed) % self.n_shards


def merge_journals(
    journals: Iterable[TransactionJournal],
) -> TransactionJournal:
    """Merge per-shard journals into one log ordered by record time.

    Ties break by shard index then per-shard append order, so the merge
    is a deterministic total order that preserves every shard's internal
    sequence — the property replay depends on (a task's SUBMIT on shard
    A folds before its MIGRATE_IN on shard B at the same timestamp only
    if A precedes B, which the transfer protocol guarantees by writing
    the MIGRATE_OUT before the destination dispatches)."""
    keyed: List[Tuple[float, int, int, object]] = []
    for shard_idx, journal in enumerate(journals):
        for pos, rec in enumerate(journal.records):
            keyed.append((rec.time, shard_idx, pos, rec))
    keyed.sort(key=lambda item: (item[0], item[1], item[2]))
    merged = TransactionJournal()
    merged.records = [rec for _, _, _, rec in keyed]  # type: ignore[misc]
    merged.appends = len(merged.records)
    return merged


class Foreman:
    """Master-of-masters: N dispatch shards behind one logical master.

    The foreman implements the read side of the master surface (stats,
    counters, accounting gauges, task/worker listings) by aggregation,
    and the write side (submit, callbacks, pause/resume, evacuation) by
    routing — submits through the partitioner, worker-scoped operations
    to the shard that owns the worker. Workers themselves never see the
    foreman: each is constructed against its shard master and speaks
    the ordinary worker↔master protocol.

    Degraded mode: a crashed or paused shard drops out of
    :meth:`stats` and the accounting gauges (its numbers are
    unreachable, exactly as a partitioned sub-pool's would be), while
    :attr:`available` stays True as long as *any* shard accepts work —
    one lost shard must not look like total master loss to HTA.
    """

    def __init__(
        self,
        engine: Engine,
        shards: Sequence[Master],
        partitioner: Optional[TaskPartitioner] = None,
    ) -> None:
        if not shards:
            raise ValueError("Foreman needs at least one shard")
        self.engine = engine
        self.shards: List[Master] = list(shards)
        self.partitioner = (
            partitioner
            if partitioner is not None
            else TaskPartitioner(len(self.shards))
        )
        if self.partitioner.n_shards != len(self.shards):
            raise ValueError(
                f"partitioner fans out to {self.partitioner.n_shards} shards "
                f"but {len(self.shards)} were supplied"
            )
        self.name = "wq-foreman"
        #: All shards run under one DispatchConfig; shard 0 is the
        #: reference copy for config-derived reads (verify, health, …).
        self._reference = self.shards[0]
        #: Worker placement cursor for :meth:`master_for_pod`.
        self._next_worker_shard = 0
        #: Tasks moved between shards by :meth:`transfer_queued`.
        self.transfers = 0
        self._journal_cache: Optional[TransactionJournal] = None
        self._journal_cache_len = -1
        #: Shard indices whose work was re-homed by failover: they no
        #: longer gate :attr:`all_done` (their recoverable state lives
        #: on survivors) and new submits routed to them are redirected.
        self._retired: Set[int] = set()
        #: Retired shard index -> survivor index for submit redirects.
        self._redirects: Dict[int, int] = {}
        #: Called with ``(shard_index, stranded_workers)`` right after a
        #: single-shard crash — the snapshot is taken *before* the crash
        #: wipes the shard's worker table, so the failover coordinator
        #: knows exactly which workers went dark with the shard.
        self._shard_crash_listeners: Tuple[
            Callable[[int, List[Worker]], None], ...
        ] = ()
        #: Called with the shard index after :meth:`recover_shard`.
        self._shard_recover_listeners: Tuple[Callable[[int], None], ...] = ()

    # ------------------------------------------------------------- routing
    def shard_index_for(self, task: Task) -> int:
        """The partition assignment, with failover redirects applied: a
        submit routed to a retired shard lands on the survivor that
        adopted its work instead (chains resolve — a survivor that later
        retired forwards again)."""
        idx = self.partitioner.shard_for(task.id)
        seen: Set[int] = set()
        while idx in self._redirects and idx not in seen:
            seen.add(idx)
            idx = self._redirects[idx]
        return idx

    def shard_for(self, task: Task) -> Master:
        return self.shards[self.shard_index_for(task)]

    def submit(self, task: Task) -> None:
        self.shard_for(task).submit(task)

    def submit_many(self, tasks: List[Task]) -> None:
        for task in tasks:
            self.submit(task)

    def master_for_pod(self, pod) -> Master:
        """Shard assignment for a freshly started worker pod: straight
        round-robin over the *available* shards, so supply spreads
        evenly no matter which nodes the scheduler picked and a crashed
        shard stops receiving fresh workers. Deterministic because pod
        start order is (the simulation is). Falls back to plain
        round-robin when no shard is available (the pod's worker polls
        until its assigned master comes back)."""
        for _ in range(len(self.shards)):
            shard = self.shards[self._next_worker_shard]
            self._next_worker_shard = (
                self._next_worker_shard + 1
            ) % len(self.shards)
            if shard.available:
                return shard
        return shard

    def transfer_queued(self, task: Task, dst: Master) -> bool:
        """Rebalance: move a *queued* task to another shard's queue
        front. The task must not be running — in-flight work crosses
        shards through the checkpoint path (migrate out of the source
        worker, transfer, resume on a destination worker), never by
        teleporting an execution. Returns False if the task is not
        waiting in any shard's queue.

        The hand-off is journaled as FAILOVER_OUT on the source and
        FAILOVER_IN on the destination — the same re-home records the
        failover coordinator writes — so a crash on *either* side
        replays to the post-transfer truth: the source forgets the task
        it gave away, and a destination that dies mid-flight carries
        the task in its own log for the next failover to re-home."""
        src = None
        for shard in self.shards:
            if task.id in shard._queued_ids:
                src = shard
                break
        if src is None or src is dst:
            return False
        src._dequeue(task)
        src.journal.record_failover_out(self.engine.now, task)
        progress = task.progress_s if task.progress_s > 0 else None
        dst.journal.record_failover_in(
            self.engine.now, task, placement="ready", progress=progress
        )
        dst._enqueue_front(task)
        dst._schedule_dispatch()
        self.transfers += 1
        return True

    # ----------------------------------------------------------- callbacks
    def on_complete(self, fn: CompletionCallback) -> None:
        for shard in self.shards:
            shard.on_complete(fn)

    def on_abandoned(self, fn: Callable[[Task], None]) -> None:
        for shard in self.shards:
            shard.on_abandoned(fn)

    def add_migration_listener(self, fn: Callable) -> None:
        for shard in self.shards:
            shard.add_migration_listener(fn)

    def add_worker_lost_listener(self, fn: Callable[[Worker], None]) -> None:
        for shard in self.shards:
            shard.add_worker_lost_listener(fn)

    def add_shard_crash_listener(
        self, fn: Callable[[int, List[Worker]], None]
    ) -> None:
        """Register for single-shard crashes: called with
        ``(shard_index, stranded_workers)`` after :meth:`crash_shard`."""
        self._shard_crash_listeners = self._shard_crash_listeners + (fn,)

    def add_shard_recover_listener(self, fn: Callable[[int], None]) -> None:
        """Register for single-shard recoveries (:meth:`recover_shard`)."""
        self._shard_recover_listeners = self._shard_recover_listeners + (fn,)

    # ------------------------------------------------- worker-scoped routing
    def evacuate_worker(
        self, worker: Worker, tasks: Optional[List[Task]] = None
    ) -> List[Task]:
        return worker.master.evacuate_worker(worker, tasks)

    def evacuate(self, pairs: List[Tuple[Worker, Task]]) -> List[Task]:
        """Route each (worker, task) run to the shard owning the worker;
        shard iteration order keeps the requeue deterministic."""
        requeued: List[Task] = []
        for shard in self.shards:
            mine = [(w, t) for w, t in pairs if w.master is shard]
            if mine:
                requeued.extend(shard.evacuate(mine))
        return requeued

    def migration_arrived(
        self,
        worker: Worker,
        task: Task,
        new_progress: float,
        lost_s: float,
        started_at: Optional[float] = None,
    ) -> bool:
        return worker.master.migration_arrived(
            worker, task, new_progress, lost_s, started_at
        )

    def worker_unreachable(self, worker: Worker) -> None:
        """Partition notice routed to the shard that owns the worker."""
        worker.master.worker_unreachable(worker)

    # ------------------------------------------------------------ lifecycle
    def pause(self) -> None:
        for shard in self.shards:
            shard.pause()

    def resume(self) -> None:
        for shard in self.shards:
            shard.resume()

    def crash(self, *, restart_delay_s: Optional[float] = None) -> None:
        for shard in self.shards:
            shard.crash(restart_delay_s=restart_delay_s)

    def recover(self, *, replay: Optional[bool] = None) -> None:
        for shard in self.shards:
            shard.recover(replay=replay)

    def crash_shard(
        self, i: int, *, restart_delay_s: Optional[float] = None
    ) -> None:
        """Take down one shard (the single-shard fault the chaos layer
        injects). The shard's worker list is snapshotted *before* the
        crash wipes it and handed to the shard-crash listeners — the
        failover coordinator needs to know which workers are stranded.
        Unlike :meth:`Master.crash`, the optional restart is scheduled
        through :meth:`recover_shard` so the foreman's failover
        bookkeeping (retire/redirect state, recover listeners) stays
        consistent whichever way the shard comes back."""
        shard = self.shards[i]
        if shard.crashed:
            return
        stranded = list(shard.workers.values())
        shard.crash()
        for fn in self._shard_crash_listeners:
            fn(i, stranded)
        if restart_delay_s is not None:
            self.engine.call_in(restart_delay_s, self.recover_shard, i)

    def recover_shard(self, i: int, *, replay: Optional[bool] = None) -> None:
        """Bring one shard back. A shard that was failed over meanwhile
        un-retires: its journal replay already discarded the re-homed
        entries (FAILOVER_OUT records), so it rejoins empty-handed and
        new submits route to it again."""
        shard = self.shards[i]
        if not shard.crashed:
            return
        shard.recover(replay=replay)
        self._retired.discard(i)
        self._redirects.pop(i, None)
        for fn in self._shard_recover_listeners:
            fn(i)

    def retire_shard(self, i: int, survivor: int) -> None:
        """Mark a dead shard's recoverable state as moved to survivors:
        it stops gating :attr:`all_done` (nothing of it is coming back)
        and new submits hashed to it land on ``survivor`` instead.
        Reversed by :meth:`recover_shard` if the shard ever returns."""
        self._retired.add(i)
        self._redirects[i] = survivor

    def close(self) -> None:
        for shard in self.shards:
            shard.close()

    def __enter__(self) -> "Foreman":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------ aggregate state
    @property
    def available(self) -> bool:
        """One reachable shard keeps the logical master available —
        a single crashed shard is degraded capacity, not total loss."""
        return any(s.available for s in self.shards)

    @property
    def degraded(self) -> bool:
        return not all(s.available for s in self.shards)

    @property
    def any_crashed(self) -> bool:
        """At least one shard is down — the plane is degraded (some
        partition of the queue is unreachable) but not necessarily lost."""
        return any(s.crashed for s in self.shards)

    @property
    def all_crashed(self) -> bool:
        """Every shard is down — the logical master is actually gone."""
        return all(s.crashed for s in self.shards)

    @property
    def crashed(self) -> bool:
        """Documented alias for the *conservative* reading,
        :attr:`any_crashed`: callers that treat "crashed" as "stop
        trusting the books" (the single-master contract) must keep doing
        so while any partition of the queue is dark. Code that needs the
        distinction reads :attr:`any_crashed` / :attr:`all_crashed`
        explicitly."""
        return self.any_crashed

    @property
    def all_done(self) -> bool:
        """Every live shard drained. Retired shards (dead, failed over)
        are skipped: their recoverable work was re-homed onto survivors,
        so an empty plane must not wait forever on a master that is
        never coming back."""
        return all(
            s.all_done
            for i, s in enumerate(self.shards)
            if i not in self._retired
        )

    @property
    def monitor(self):
        """The shared (global) resource monitor all shards feed."""
        return self._reference.monitor

    @property
    def link(self):
        return self._reference.link

    @property
    def health(self):
        return self._reference.health

    @property
    def verify(self) -> bool:
        return self._reference.verify

    @property
    def value_faults(self):
        return self._reference.value_faults

    @property
    def max_retries(self) -> int:
        return self._reference.max_retries

    @max_retries.setter
    def max_retries(self, value: int) -> None:
        for shard in self.shards:
            shard.max_retries = value

    @property
    def journal(self) -> TransactionJournal:
        """The merged shard journals (recomputed only when a shard has
        appended since the last read)."""
        total = sum(len(s.journal) for s in self.shards)
        if self._journal_cache is None or self._journal_cache_len != total:
            self._journal_cache = merge_journals(s.journal for s in self.shards)
            self._journal_cache_len = total
        return self._journal_cache

    def stats(self) -> MasterStats:
        """The degraded-mode aggregate: reachable shards only. A paused
        or crashed shard's numbers are unreachable (its queue may even
        have been wiped), exactly as a partitioned sub-pool's would be;
        summing what answers matches per-shard ground truth."""
        live = [s.stats() for s in self.shards if s.available]
        return MasterStats(
            time=self.engine.now,
            waiting=sum(s.waiting for s in live),
            running=sum(s.running for s in live),
            done=sum(s.done for s in live),
            workers_connected=sum(s.workers_connected for s in live),
            workers_idle=sum(s.workers_idle for s in live),
            workers_busy=sum(s.workers_busy for s in live),
            workers_draining=sum(s.workers_draining for s in live),
        )

    # ------------------------------------------------------- task listings
    @property
    def queue(self) -> List[Task]:
        return [t for s in self.shards for t in s.queue]

    @property
    def running(self) -> Dict[int, Task]:
        merged: Dict[int, Task] = {}
        for shard in self.shards:
            merged.update(shard.running)
        return merged

    @property
    def done(self) -> List[Task]:
        """Completions across all shards in *merged-journal* order
        (complete-record time, ties by shard index): replaying
        :attr:`journal` yields completions in exactly this sequence, so
        the aggregate view and the merged log agree record for record —
        the property the journal-replay invariant checks. Each shard's
        ``done[i]`` aligns with its i-th complete record counted from
        the journal's tail (a cold restart rebuilds ``done`` from
        scratch while the log keeps the forgotten prefix). A *crashed*
        shard's in-memory ledger was wiped with the rest of its tables,
        but its completions are durable — they were delivered upstream
        before the crash — so while it is down (or retired for good)
        the ledger is read straight off its journal instead."""
        keyed: List[Tuple[float, int, int, Task]] = []
        for idx, shard in enumerate(self.shards):
            completes = [
                rec for rec in shard.journal.records if rec.op == "complete"
            ]
            if shard.crashed:
                for pos, rec in enumerate(completes):
                    keyed.append((rec.time, idx, pos, rec.task))
                continue
            offset = len(completes) - len(shard.done)
            for pos, task in enumerate(shard.done):
                at = offset + pos
                when = (
                    completes[at].time if 0 <= at < len(completes) else float("inf")
                )
                keyed.append((when, idx, pos, task))
        keyed.sort(key=lambda item: (item[0], item[1], item[2]))
        return [task for _, _, _, task in keyed]

    @property
    def abandoned(self) -> List[Task]:
        return [t for s in self.shards for t in s.abandoned]

    @property
    def workers(self) -> Dict[str, Worker]:
        merged: Dict[str, Worker] = {}
        for shard in self.shards:
            merged.update(shard.workers)
        return merged

    @property
    def _unclaimed(self) -> Dict[int, Task]:
        merged: Dict[int, Task] = {}
        for shard in self.shards:
            merged.update(shard._unclaimed)
        return merged

    def waiting_tasks(self) -> List[Task]:
        return [t for s in self.shards for t in s.waiting_tasks()]

    def running_tasks(self) -> List[Task]:
        return [t for s in self.shards for t in s.running_tasks()]

    def connected_workers(self) -> List[Worker]:
        return [w for s in self.shards for w in s.connected_workers()]

    def idle_workers(self) -> List[Worker]:
        return [w for s in self.shards for w in s.idle_workers()]

    # --------------------------------------------------- aggregate counters
    def _sum(self, attr: str) -> float:
        return sum(getattr(s, attr) for s in self.shards)

    @property
    def tasks_submitted(self) -> int:
        return int(self._sum("tasks_submitted"))

    @property
    def tasks_requeued(self) -> int:
        return int(self._sum("tasks_requeued"))

    @property
    def tasks_failed(self) -> int:
        return int(self._sum("tasks_failed"))

    @property
    def tasks_exhausted(self) -> int:
        return int(self._sum("tasks_exhausted"))

    @property
    def escalations(self) -> int:
        return int(self._sum("escalations"))

    @property
    def tasks_speculated(self) -> int:
        return int(self._sum("tasks_speculated"))

    @property
    def speculation_wins(self) -> int:
        return int(self._sum("speculation_wins"))

    @property
    def speculation_losses(self) -> int:
        return int(self._sum("speculation_losses"))

    @property
    def verify_fails(self) -> int:
        return int(self._sum("verify_fails"))

    @property
    def checkpoint_verify_fails(self) -> int:
        return int(self._sum("checkpoint_verify_fails"))

    @property
    def corrupted_completes(self) -> int:
        return int(self._sum("corrupted_completes"))

    @property
    def corrupted_goodput_core_s(self) -> float:
        return self._sum("corrupted_goodput_core_s")

    @property
    def quarantines(self) -> int:
        return int(self._sum("quarantines"))

    @property
    def unquarantines(self) -> int:
        return int(self._sum("unquarantines"))

    @property
    def tasks_poisoned(self) -> int:
        return int(self._sum("tasks_poisoned"))

    @property
    def quarantined_rejected(self) -> int:
        return int(self._sum("quarantined_rejected"))

    @property
    def wasted_core_s(self) -> float:
        return self._sum("wasted_core_s")

    @property
    def outages(self) -> int:
        return int(self._sum("outages"))

    @property
    def crashes(self) -> int:
        return int(self._sum("crashes"))

    @property
    def tasks_rerun(self) -> int:
        return int(self._sum("tasks_rerun"))

    @property
    def duplicate_results(self) -> int:
        return int(self._sum("duplicate_results"))

    @property
    def partitions_detected(self) -> int:
        return int(self._sum("partitions_detected"))

    @property
    def workers_declared_lost(self) -> int:
        return int(self._sum("workers_declared_lost"))

    @property
    def tasks_evacuated(self) -> int:
        return int(self._sum("tasks_evacuated"))

    @property
    def migrations_accepted(self) -> int:
        return int(self._sum("migrations_accepted"))

    @property
    def migrations_stale(self) -> int:
        return int(self._sum("migrations_stale"))

    @property
    def tasks_rehomed(self) -> int:
        """Tasks adopted from dead shards by failover (sum of the
        per-shard ``tasks_rehomed_in`` intake counters)."""
        return int(self._sum("tasks_rehomed_in"))

    # ---------------------------------------------------- recovery markers
    @property
    def last_crash_at(self) -> Optional[float]:
        stamps = [s.last_crash_at for s in self.shards if s.last_crash_at is not None]
        return max(stamps) if stamps else None

    @property
    def last_recovered_at(self) -> Optional[float]:
        stamps = [
            s.last_recovered_at for s in self.shards if s.last_recovered_at is not None
        ]
        return max(stamps) if stamps else None

    @property
    def first_completion_after_recovery_at(self) -> Optional[float]:
        stamps = [
            s.first_completion_after_recovery_at
            for s in self.shards
            if s.first_completion_after_recovery_at is not None
        ]
        return min(stamps) if stamps else None

    # ----------------------------------------------------------- accounting
    def goodput_core_s(self) -> float:
        return sum(s.goodput_core_s() for s in self.shards)

    def clean_goodput_core_s(self) -> float:
        return sum(s.clean_goodput_core_s() for s in self.shards)

    def cores_in_use(self) -> float:
        return sum(s.cores_in_use() for s in self.shards if s.available)

    def cores_waiting(self) -> float:
        return sum(s.cores_waiting() for s in self.shards if s.available)

    def supplied_cores(self) -> float:
        return sum(s.supplied_cores() for s in self.shards if s.available)


@dataclass(frozen=True, slots=True)
class FailoverConfig:
    """Knobs of the shard-failover protocol.

    ``grace_s`` separates a transient crash (the shard's pod restarts
    and replays its own journal — the PR 3 story, no foreman action
    needed) from permanent loss: only a shard still dark when the grace
    expires is failed over. The default clears the chaos layer's
    standard 60 s crash-restart delay, so an ordinarily-restarting
    shard never triggers a spurious re-home.

    ``rebalance_interval_s`` arms the starvation-repair tick: static
    partitioning can strand a live shard with queued work and *zero*
    workers while another shard holds idle supply (chaos kills workers
    shard-asymmetrically), and shard-local dispatch would deadlock
    there forever. The tick moves the starved queue to shards that have
    idle workers, through the journaled :meth:`Foreman.transfer_queued`
    path. ``None`` disables it."""

    grace_s: float = 90.0
    rebalance_interval_s: Optional[float] = 15.0


class FailoverCoordinator:
    """Re-homes a dead shard's stranded work onto the survivors.

    Subscribes to the foreman's shard-crash/recover notifications. On a
    crash it arms a one-shot grace timer; if the shard is still down
    when the timer fires, the coordinator

    1. replays the dead shard's journal (its PV outlives the process)
       to reconstruct exactly what is recoverable: the queued tasks in
       pre-crash order and the unclaimed in-flight set, with banked
       checkpoint progress;
    2. re-homes both onto surviving shards round-robin — queued tasks
       re-enter a survivor's queue, in-flight tasks park in a
       survivor's unclaimed set so their (still running) workers can be
       adopted on reconnect, with a grace sweep requeueing whatever
       never reports back;
    3. journals the move as FAILOVER_OUT on the dead shard's log and
       FAILOVER_IN on the destination's, so the merged journal folds to
       the post-failover truth and a later restart of the dead shard
       replays to a state *without* the moved entries (no
       double-dispatch);
    4. re-points the stranded workers' master references at survivors
       and nudges their reconnect poll, so the dead shard's supply —
       and any results or checkpoints it is still holding — lands on
       the masters that now own the tasks. Stale deliveries are
       rejected by the ordinary at-most-once canonical-attempt guards.

    Finally the shard is *retired*: it stops gating the foreman's
    ``all_done`` and new submits hashed to it redirect to a survivor.
    A retired shard that recovers anyway un-retires empty-handed.
    """

    def __init__(
        self,
        engine: Engine,
        foreman: Foreman,
        config: Optional[FailoverConfig] = None,
        *,
        tracer=None,
        metrics=None,
    ) -> None:
        self.engine = engine
        self.foreman = foreman
        self.config = config if config is not None else FailoverConfig()
        self.tracer = tracer
        #: Dead shards actually failed over (grace expired, work moved).
        self.failovers = 0
        #: Tasks re-homed across all failovers (queued + in-flight).
        self.tasks_rehomed = 0
        #: Stranded workers re-pointed at survivor shards.
        self.workers_reattached = 0
        #: Grace expiries that found no survivor to re-home onto.
        self.failovers_aborted = 0
        #: Queued tasks moved off starved shards by the rebalance tick.
        self.tasks_rebalanced = 0
        self._stopped = False
        #: Per-shard crash token; recovery or a fresh crash bumps it so
        #: a stale grace timer no-ops (the transient-crash distinction).
        self._tokens: Dict[int, int] = {}
        #: Worker snapshot per crashed shard (taken pre-wipe).
        self._stranded: Dict[int, List[Worker]] = {}
        self._c_failovers = None
        self._c_rehomed = None
        if metrics is not None:
            self._c_failovers = metrics.counter(
                "shard_failovers_total",
                "Dead shards whose recoverable work was re-homed",
            )
            self._c_rehomed = metrics.counter(
                "tasks_rehomed_total",
                "Tasks moved off dead shards onto survivors",
            )
        foreman.add_shard_crash_listener(self._shard_crashed)
        foreman.add_shard_recover_listener(self._shard_recovered)
        if self.config.rebalance_interval_s is not None:
            self.engine.call_in(
                self.config.rebalance_interval_s, self._rebalance_tick
            )

    def stop(self) -> None:
        """Disarm the rebalance tick (armed timers no-op)."""
        self._stopped = True

    # ----------------------------------------------------------- detection
    def _shard_crashed(self, i: int, stranded: List[Worker]) -> None:
        token = self._tokens.get(i, 0) + 1
        self._tokens[i] = token
        self._stranded[i] = stranded
        self.engine.call_in(self.config.grace_s, self._grace_expired, i, token)

    def _shard_recovered(self, i: int) -> None:
        # Invalidate any armed grace timer: the shard came back on its
        # own, so this was a transient crash and replay owns recovery.
        self._tokens[i] = self._tokens.get(i, 0) + 1
        self._stranded.pop(i, None)

    def _owned_elsewhere(self, task: Task, dead_idx: int) -> bool:
        """A live shard other than the dead one already holds the task
        (queued, running, or unclaimed): the dead shard's journal view
        is stale and the task must not be re-homed."""
        for j, other in enumerate(self.foreman.shards):
            if j == dead_idx:
                continue
            if (
                task.id in other._queued_ids
                or task.id in other.running
                or task.id in other._unclaimed
            ):
                return True
        return False

    # ----------------------------------------------------------- rebalance
    def _rebalance_tick(self) -> None:
        if self._stopped:
            return
        self._rebalance()
        self.engine.call_in(
            self.config.rebalance_interval_s, self._rebalance_tick
        )

    def _rebalance(self) -> None:
        """Starvation repair: a live shard with queued work but no
        workers at all can never dispatch (supply is shard-local), so
        its queue moves — through the journaled transfer path — to the
        live shards that do hold idle workers, round-robin. Deliberately
        narrow: shards with *any* worker are left alone, so ordinary
        skew keeps draining locally and fidelity is untouched."""
        shards = self.foreman.shards
        starved = [
            s
            for s in shards
            if s.available and s.queue and not s.connected_workers()
        ]
        if not starved:
            return
        targets = [
            s for s in shards if s.available and s.idle_workers()
        ]
        if not targets:
            return
        cursor = 0
        for src in starved:
            for task in list(src.queue):
                dst = targets[cursor % len(targets)]
                cursor += 1
                if self.foreman.transfer_queued(task, dst):
                    self.tasks_rebalanced += 1
        if self.tracer is not None and self.tracer.enabled and cursor:
            self.tracer.emit(
                "wq",
                "shard.rebalance",
                moved=cursor,
                starved=len(starved),
                targets=len(targets),
            )

    # ------------------------------------------------------------ failover
    def _grace_expired(self, i: int, token: int) -> None:
        if self._tokens.get(i) != token:
            return  # recovered meanwhile, or a fresh crash re-armed
        shard = self.foreman.shards[i]
        if not shard.crashed:
            return  # recovered without the foreman noticing (defensive)
        survivors = [
            (j, s)
            for j, s in enumerate(self.foreman.shards)
            if j != i and s.available
        ]
        if not survivors:
            # Nowhere to re-home; the shard stays crashed and a later
            # crash/recover cycle gets another chance.
            self.failovers_aborted += 1
            return
        state = shard.journal.replay()
        stranded = self._stranded.pop(i, [])
        # Assign surviving workers to survivor shards first, and note
        # which tasks each one is still bound to (live runs, held
        # results, held checkpoints). A task and the worker holding it
        # MUST land on the same survivor: if the worker's held result
        # arrived at shard A while shard B owned the re-homed entry, B
        # would requeue — and re-run — an already-completed task.
        reattach: List[Tuple[Worker, int]] = []
        affinity: Dict[int, int] = {}
        for offset, worker in enumerate(stranded):
            if worker.state not in (WorkerState.READY, WorkerState.DRAINING):
                continue  # died while the shard was dark
            slot = offset % len(survivors)
            reattach.append((worker, slot))
            for tid in worker.unfinished_task_ids():
                affinity.setdefault(tid, slot)
        cursor = 0
        rehomed = 0

        def pick(task: Task) -> Tuple[int, Master]:
            nonlocal cursor
            slot = affinity.get(task.id)
            if slot is None:
                slot = cursor % len(survivors)
                cursor += 1
            return survivors[slot]

        # Queued work first, in the dead shard's pre-crash queue order;
        # in-flight (unclaimed) work after, so its workers can still be
        # adopted by the destination on reconnect. Anything the replay
        # surfaces that another shard already owns (or that completed)
        # is the dead shard's stale view of history, not strandable
        # work — re-homing it would double-dispatch.
        for task in state.ready:
            if task.result is not None or self._owned_elsewhere(task, i):
                continue
            _, dst = pick(task)
            shard.failover_out(task)
            dst.failover_in(task, placement="ready")
            rehomed += 1
        sweep: Set[int] = set()
        for task in state.unclaimed.values():
            if task.result is not None or self._owned_elsewhere(task, i):
                continue
            j, dst = pick(task)
            shard.failover_out(task)
            dst.failover_in(task, placement="unclaimed")
            sweep.add(j)
            rehomed += 1
        for j in sorted(sweep):
            # Same contract as post-recovery adoption: whatever no
            # worker reclaims inside the grace window requeues.
            dst = self.foreman.shards[j]
            self.engine.call_in(
                dst.recovery_grace_s, dst._requeue_unclaimed, dst._incarnation
            )
        for worker, slot in reattach:
            _, dst = survivors[slot]
            worker.master = dst
            self.workers_reattached += 1
            # The worker's own backoff poll would find the new master
            # within RECONNECT_MAX_S; the nudge just reconnects it now.
            # A concurrent stale poll sees ``_detached`` False and drops.
            self.engine.call_in(0.0, worker._try_reconnect)
        self.foreman.retire_shard(i, survivors[0][0])
        self.failovers += 1
        self.tasks_rehomed += rehomed
        if self._c_failovers is not None:
            self._c_failovers.inc()
        if self._c_rehomed is not None and rehomed:
            self._c_rehomed.inc(rehomed)
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.emit(
                "wq",
                "shard.failover",
                shard=shard.name,
                rehomed=rehomed,
                queued=len(state.ready),
                unclaimed=len(state.unclaimed),
                workers=len(stranded),
                survivors=len(survivors),
            )
