"""The worker factory: maintain a worker pool directly (no Kubernetes).

CCTools ships ``work_queue_factory``, a daemon that watches a master and
keeps between ``min_workers`` and ``max_workers`` workers submitted to
some batch system. It is the pre-orchestrator way of elasticizing Work
Queue — exactly the deployment style the paper's introduction contrasts
with Kubernetes-native autoscaling — and a useful harness for WQ-level
tests and experiments that don't need the cluster substrate at all.

Policy (matching the real factory's ``--tasks-per-worker`` mode):
``desired = clamp(ceil(backlog / tasks_per_worker), min, max)``; excess
workers above the desired count are *drained*, never killed.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.cluster.resources import ResourceVector
from repro.sim.engine import Engine, PeriodicTask
from repro.wq.master import Master
from repro.wq.worker import Worker, WorkerState


@dataclass(frozen=True, slots=True)
class FactoryConfig:
    min_workers: int = 1
    max_workers: int = 10
    tasks_per_worker: float = 1.0
    poll_interval_s: float = 30.0
    #: Simulated submit→connect latency of the underlying batch system.
    spawn_latency_s: float = 30.0

    def __post_init__(self) -> None:
        if self.min_workers < 0 or self.max_workers < self.min_workers:
            raise ValueError("invalid worker bounds")
        if self.tasks_per_worker <= 0:
            raise ValueError("tasks_per_worker must be positive")
        if self.poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")
        if self.spawn_latency_s < 0:
            raise ValueError("spawn_latency_s must be non-negative")


class WorkerFactory:
    """Keeps ``min..max`` workers connected to a master."""

    def __init__(
        self,
        engine: Engine,
        master: Master,
        worker_capacity: ResourceVector,
        config: FactoryConfig = FactoryConfig(),
        *,
        name: str = "factory",
    ) -> None:
        self.engine = engine
        self.master = master
        self.worker_capacity = worker_capacity
        self.config = config
        self.name = name
        self._seq = itertools.count(1)
        self.workers: List[Worker] = []
        self.workers_spawned = 0
        self.workers_drained = 0
        self._loop = PeriodicTask(
            engine, config.poll_interval_s, self.poll, start_after=0.0
        )

    def stop(self, drain: bool = True) -> None:
        self._loop.stop()
        if drain:
            for w in self._live():
                w.drain()

    # ----------------------------------------------------------------- poll
    def poll(self) -> None:
        stats = self.master.stats()
        desired = math.ceil(stats.backlog / self.config.tasks_per_worker)
        desired = max(self.config.min_workers, min(self.config.max_workers, desired))
        live = self._live()
        delta = desired - len(live)
        if delta > 0:
            for _ in range(delta):
                self._spawn()
        elif delta < 0:
            idle = [w for w in live if w.idle]
            for worker in idle[: -delta]:
                worker.drain()
                self.workers_drained += 1

    def _spawn(self) -> Worker:
        worker = Worker(
            self.engine,
            self.master,
            name=f"{self.name}-w{next(self._seq):04d}",
            capacity=self.worker_capacity,
            connect_latency=self.config.spawn_latency_s,
        )
        self.workers.append(worker)
        self.workers_spawned += 1
        return worker

    def _live(self) -> List[Worker]:
        return [
            w
            for w in self.workers
            if w.state in (WorkerState.CONNECTING, WorkerState.READY)
        ]

    @property
    def live_count(self) -> int:
        return len(self._live())
