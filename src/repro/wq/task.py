"""Tasks: the unit of HTC work.

A task carries two resource descriptions, which the paper is careful to
distinguish:

* ``declared`` — what the user *says* the task needs (often ``None``:
  unknown, triggering the conservative whole-worker policy of §III-A);
* ``footprint`` — what the task *actually* uses, observed by the resource
  monitor when it completes and fed back into category estimates (§IV-A).

Execution is modelled in three phases a worker walks through: fetch
inputs (over the shared master link, honouring per-worker caches), execute
(``execute_s`` wall seconds, busying ``cpu_fraction`` of the allocated
cores — I/O-bound tasks run with low CPU), and return outputs.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.cluster.resources import ResourceVector

_task_ids = itertools.count(1)


@dataclass(frozen=True, slots=True)
class FileSpec:
    """A named input/output file.

    ``cacheable`` inputs (reference databases, shared indexes) are kept in
    the worker's cache after first fetch — the mechanism that makes the
    paper's coarse-grained worker configuration win once resources are
    known (one 1.4 GB transfer serves every BLAST task on the node).
    """

    name: str
    size_mb: float
    cacheable: bool = False

    def __post_init__(self) -> None:
        if self.size_mb < 0:
            raise ValueError(f"file {self.name!r}: negative size")


class TaskState(enum.Enum):
    WAITING = "waiting"
    FETCHING = "fetching"    # inputs in flight to the worker
    RUNNING = "running"      # executing
    MIGRATING = "migrating"  # paused: checkpoint being cut/shipped
    RETURNING = "returning"  # outputs in flight to the master
    DONE = "done"
    FAILED = "failed"        # worker killed mid-run; will be resubmitted


@dataclass(frozen=True, slots=True)
class TaskResult:
    """Completion record, as Work Queue would report to the manager."""

    task_id: int
    category: str
    worker_name: str
    submit_time: float
    dispatch_time: float
    start_time: float      # execution start (inputs fetched)
    finish_time: float     # outputs delivered to master
    execute_seconds: float
    measured_resources: ResourceVector
    attempts: int

    @property
    def turnaround(self) -> float:
        return self.finish_time - self.submit_time

    @property
    def overhead_seconds(self) -> float:
        """Non-compute time: queueing plus data movement."""
        return self.turnaround - self.execute_seconds


class Task:
    """A schedulable job; see module docstring for the execution model."""

    # Tasks are the highest-volume mutable objects in a run (one per job
    # plus retries/speculative copies); slots cut their per-instance
    # memory and speed up the attribute access the dispatch loop lives on.
    __slots__ = (
        "id", "category", "command", "tag", "priority", "execute_s",
        "cpu_fraction", "footprint", "declared", "inputs", "outputs",
        "state", "attempts", "submit_time", "dispatch_time", "start_time",
        "finish_time", "allocation", "min_allocation", "speculation_of",
        "result", "checkpoint", "progress_s", "payload_corrupt",
        "checkpoint_corrupt",
    )

    def __init__(
        self,
        category: str,
        *,
        execute_s: float,
        footprint: ResourceVector,
        declared: Optional[ResourceVector] = None,
        cpu_fraction: float = 1.0,
        inputs: Tuple[FileSpec, ...] = (),
        outputs: Tuple[FileSpec, ...] = (),
        command: str = "",
        tag: str = "",
        priority: int = 0,
        checkpoint=None,
    ) -> None:
        if execute_s < 0:
            raise ValueError(f"execute_s must be non-negative, got {execute_s}")
        if not 0.0 <= cpu_fraction <= 1.0:
            raise ValueError(f"cpu_fraction must be in [0,1], got {cpu_fraction}")
        if not footprint.is_nonnegative() or footprint.is_zero():
            raise ValueError(f"footprint must be positive, got {footprint}")
        if declared is not None and not footprint.fits_in(declared):
            raise ValueError(
                f"footprint {footprint} exceeds declared {declared}; "
                "declare at least what the task uses"
            )
        self.id = next(_task_ids)
        self.category = category
        self.command = command or f"{category}-{self.id}"
        self.tag = tag
        #: Dispatch precedence: higher runs first (Work Queue semantics);
        #: FIFO among equal priorities.
        self.priority = priority
        self.execute_s = execute_s
        self.cpu_fraction = cpu_fraction
        self.footprint = footprint
        self.declared = declared
        self.inputs = tuple(inputs)
        self.outputs = tuple(outputs)

        self.state = TaskState.WAITING
        self.attempts = 0
        self.submit_time: Optional[float] = None
        self.dispatch_time: Optional[float] = None
        self.start_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        #: Resources reserved on the worker for this run (set at dispatch).
        self.allocation: Optional[ResourceVector] = None
        #: Escalated allocation floor after a resource-exhaustion kill
        #: (Work Queue's max-allocation retry); survives retries.
        self.min_allocation: Optional[ResourceVector] = None
        #: Set on speculative copies: the id of the straggler this task
        #: duplicates (first completion wins; the loser is cancelled).
        self.speculation_of: Optional[int] = None
        self.result: Optional[TaskResult] = None
        #: Checkpoint model (a :class:`repro.wq.migration.CheckpointSpec`)
        #: or ``None`` for tasks that cannot be migrated.
        self.checkpoint = checkpoint
        #: Durable progress: execute-seconds already banked in a shipped
        #: checkpoint. Survives retries (the checkpoint lives with the
        #: master); only a cold master restart resets it.
        self.progress_s = 0.0
        #: Value-fault ground truth for the *current* attempt: the
        #: delivered result payload is silently corrupted (set by the
        #: worker at execution start, caught — or not — by the master's
        #: content-digest verification on delivery).
        self.payload_corrupt = False
        #: Ground truth for the checkpoint currently in flight: the
        #: shipped snapshot is corrupted and must not be resumed from.
        self.checkpoint_corrupt = False

    # ---------------------------------------------------------------- sizes
    def input_bytes_mb(self, cached: bool = False) -> float:
        """Total input volume; with ``cached`` only non-cacheable files."""
        return sum(f.size_mb for f in self.inputs if not (cached and f.cacheable))

    def output_bytes_mb(self) -> float:
        return sum(f.size_mb for f in self.outputs)

    def current_cpu_cores(self) -> float:
        """Instantaneous CPU while in the execute phase, in cores."""
        if self.state is not TaskState.RUNNING or self.allocation is None:
            return 0.0
        # A task burns its *footprint* cores (modulated by cpu_fraction),
        # not its possibly-padded allocation.
        return min(self.footprint.cores, self.allocation.cores) * self.cpu_fraction

    def remaining_execute_s(self) -> float:
        """Execute-seconds left after resuming from banked progress."""
        return max(0.0, self.execute_s - self.progress_s)

    def reset_for_retry(self) -> None:
        """Return the task to the waiting state after a worker loss.

        ``progress_s`` is deliberately preserved: a shipped checkpoint is
        durable master-side state, so the next attempt resumes from it.
        """
        self.state = TaskState.WAITING
        self.dispatch_time = None
        self.start_time = None
        self.allocation = None
        self.payload_corrupt = False
        self.checkpoint_corrupt = False

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Task #{self.id} {self.category!r} {self.state.value}>"
