"""Per-worker health ledger: EWMA scoring, black-hole detection, blame.

A black-hole node — every task fails (or fake-completes) there in
seconds — is the most expensive failure mode an HTC pool has: retries
route straight back to the fastest-idling worker, so one sick node eats
the whole queue. The auto-scaling HTCondor pools in PAPERS.md police it
with worker health checks; this ledger is the simulator's equivalent,
driving a ``healthy → suspect → quarantined → probation`` state machine
from two detectors:

* **EWMA outcome score** — exponentially weighted success rate per
  worker. Dropping below ``suspect_below`` marks the worker suspect;
  below ``quarantine_below`` quarantines it.
* **fast-fail interarrival** — ``fast_fail_window`` *consecutive*
  failures each resolving within ``fast_fail_runtime_s`` is the
  black-hole signature (real failures are slow and interleaved with
  successes); it quarantines immediately, before the EWMA bottoms out.

Quarantine is not forever: after ``probation_after_s`` the worker
re-enters on **probation** — it may take work again, but a single
failure re-quarantines it, and only ``probation_successes`` verified
completions restore full trust.

**Blame attribution** answers the dual question: is the *task* the
problem? The ledger keeps the task×worker outcome matrix (which tasks
failed where) and counts, per task, the distinct workers that were
*healthy* when the failure happened. A task failing on
``poison_k`` such workers is a **poison task** — the input, not the
pool, is at fault — and the master isolates it (abandon + escalate its
category floor) instead of letting it burn retries forever. Failures on
suspect/quarantined/probation workers never count toward poison: they
are the worker's fault. And the attribution is retroactive — when a
worker is quarantined, its testimony is retracted from every blame row,
so a task that bounced across several not-yet-caught black holes is not
falsely ruled poison.

The ledger is pure bookkeeping — no engine, no RNG, no timers — so the
master stays the single owner of simulated time and the journal.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Set


class WorkerHealth(enum.Enum):
    HEALTHY = "healthy"
    SUSPECT = "suspect"          # degraded score; still dispatched
    QUARANTINED = "quarantined"  # untrusted: no dispatch, results rejected
    PROBATION = "probation"      # re-admitted; one failure re-quarantines


@dataclass(frozen=True, slots=True)
class HealthConfig:
    """Detector and state-machine tunables."""

    #: EWMA smoothing for the outcome score (1 = success, 0 = failure).
    ewma_alpha: float = 0.35
    #: Outcomes observed before the score is trusted at all.
    min_samples: int = 3
    #: Score below which a healthy worker turns suspect.
    suspect_below: float = 0.55
    #: Score below which the worker is quarantined outright.
    quarantine_below: float = 0.30
    #: Consecutive fast failures that quarantine immediately.
    fast_fail_window: int = 4
    #: A failure counting as "fast" resolved within this many seconds.
    fast_fail_runtime_s: float = 5.0
    #: Quarantine duration before the worker re-enters on probation;
    #: 0 disables probation (quarantine is terminal).
    probation_after_s: float = 300.0
    #: Verified successes on probation that restore full health.
    probation_successes: int = 2
    #: Distinct healthy workers a task must fail on to be poison.
    poison_k: int = 3

    def __post_init__(self) -> None:
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0,1], got {self.ewma_alpha}")
        if self.min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {self.min_samples}")
        if not 0.0 <= self.quarantine_below <= self.suspect_below <= 1.0:
            raise ValueError(
                "need 0 <= quarantine_below <= suspect_below <= 1, got "
                f"{self.quarantine_below} / {self.suspect_below}"
            )
        if self.fast_fail_window < 1:
            raise ValueError(
                f"fast_fail_window must be >= 1, got {self.fast_fail_window}"
            )
        if self.fast_fail_runtime_s < 0:
            raise ValueError("fast_fail_runtime_s must be non-negative")
        if self.probation_after_s < 0:
            raise ValueError("probation_after_s must be non-negative")
        if self.probation_successes < 1:
            raise ValueError("probation_successes must be >= 1")
        if self.poison_k < 1:
            raise ValueError(f"poison_k must be >= 1, got {self.poison_k}")


@dataclass(frozen=True, slots=True)
class HealthVerdict:
    """What one recorded failure concluded."""

    #: The worker just crossed into quarantine (act: pull its runs).
    quarantine_worker: bool = False
    #: The task just crossed the poison threshold (act: isolate it).
    poison_task: bool = False


class _WorkerLedger:
    __slots__ = (
        "score", "samples", "state", "fast_fails", "probation_wins",
        "quarantined_at", "quarantine_count",
    )

    def __init__(self) -> None:
        self.score = 1.0
        self.samples = 0
        self.state = WorkerHealth.HEALTHY
        self.fast_fails = 0
        self.probation_wins = 0
        self.quarantined_at: Optional[float] = None
        self.quarantine_count = 0


class HealthLedger:
    """The master's per-worker health state and task blame matrix."""

    def __init__(self, config: Optional[HealthConfig] = None) -> None:
        self.config = config if config is not None else HealthConfig()
        self._workers: Dict[str, _WorkerLedger] = {}
        #: task id -> names of distinct healthy workers it failed on.
        self._task_blame: Dict[int, Set[str]] = {}
        #: Task ids already ruled poison (the verdict fires once).
        self.poisoned_tasks: Set[int] = set()
        self.quarantines = 0
        self.unquarantines = 0
        self.poison_verdicts = 0

    # --------------------------------------------------------------- queries
    def _ledger(self, worker: str) -> _WorkerLedger:
        led = self._workers.get(worker)
        if led is None:
            led = self._workers[worker] = _WorkerLedger()
        return led

    def state(self, worker: str) -> WorkerHealth:
        led = self._workers.get(worker)
        return led.state if led is not None else WorkerHealth.HEALTHY

    def score(self, worker: str) -> float:
        led = self._workers.get(worker)
        return led.score if led is not None else 1.0

    def is_quarantined(self, worker: str) -> bool:
        return self.state(worker) is WorkerHealth.QUARANTINED

    def is_poisoned(self, task_id: int) -> bool:
        return task_id in self.poisoned_tasks

    def known_workers(self):
        return sorted(self._workers)

    # -------------------------------------------------------------- outcomes
    def record_success(self, worker: str, task_id: int) -> WorkerHealth:
        """A verified completion on ``worker``; returns its new state."""
        led = self._ledger(worker)
        led.samples += 1
        led.score += self.config.ewma_alpha * (1.0 - led.score)
        led.fast_fails = 0
        # A task that completed anywhere is proven non-poison; forget
        # its blame row so stale failures cannot poison it later.
        self._task_blame.pop(task_id, None)
        if led.state is WorkerHealth.PROBATION:
            led.probation_wins += 1
            if led.probation_wins >= self.config.probation_successes:
                led.state = WorkerHealth.HEALTHY
        elif (
            led.state is WorkerHealth.SUSPECT
            and led.score >= self.config.suspect_below
        ):
            led.state = WorkerHealth.HEALTHY
        return led.state

    def record_failure(
        self,
        worker: str,
        task_id: int,
        *,
        runtime_s: Optional[float] = None,
        now: float = 0.0,
    ) -> HealthVerdict:
        """A failed (or verification-failed) attempt of ``task_id`` on
        ``worker``. ``runtime_s`` is the attempt's time-to-outcome for
        the fast-fail detector (None = unknown, never "fast")."""
        cfg = self.config
        led = self._ledger(worker)
        was_healthy = led.state is WorkerHealth.HEALTHY
        led.samples += 1
        led.score += cfg.ewma_alpha * (0.0 - led.score)
        fast = runtime_s is not None and runtime_s <= cfg.fast_fail_runtime_s
        led.fast_fails = led.fast_fails + 1 if fast else 0

        quarantine = False
        if led.state is WorkerHealth.PROBATION:
            # Zero tolerance on probation.
            quarantine = True
        elif led.state is not WorkerHealth.QUARANTINED:
            if led.fast_fails >= cfg.fast_fail_window:
                quarantine = True
            elif led.samples >= cfg.min_samples:
                if led.score < cfg.quarantine_below:
                    quarantine = True
                elif (
                    led.state is WorkerHealth.HEALTHY
                    and led.score < cfg.suspect_below
                ):
                    led.state = WorkerHealth.SUSPECT
        if quarantine:
            led.state = WorkerHealth.QUARANTINED
            led.quarantined_at = now
            led.quarantine_count += 1
            led.probation_wins = 0
            self.quarantines += 1
            # The worker just proved itself bad: retract its testimony
            # so its past failures cannot indict any task as poison.
            self._expunge_blame(worker)

        # Blame matrix: only failures on a then-healthy worker that did
        # NOT just tip it into quarantine indict the task; anything else
        # is the worker's own fault. A concurrent black-hole storm can
        # otherwise falsely poison a task that bounced across several
        # sinks before the fast-fail detector caught up with them.
        poison = False
        if was_healthy and not quarantine and task_id not in self.poisoned_tasks:
            blamed = self._task_blame.setdefault(task_id, set())
            blamed.add(worker)
            if len(blamed) >= cfg.poison_k:
                self.poisoned_tasks.add(task_id)
                self._task_blame.pop(task_id, None)
                self.poison_verdicts += 1
                poison = True
        return HealthVerdict(quarantine_worker=quarantine, poison_task=poison)

    def _expunge_blame(self, worker: str) -> None:
        """Remove a discredited worker from every task's blame row."""
        for task_id in [t for t, b in self._task_blame.items() if worker in b]:
            blamed = self._task_blame[task_id]
            blamed.discard(worker)
            if not blamed:
                del self._task_blame[task_id]

    # ------------------------------------------------------------ transitions
    def begin_probation(self, worker: str) -> bool:
        """Quarantine aged out: re-admit the worker on probation.
        Returns False if it is not currently quarantined."""
        led = self._workers.get(worker)
        if led is None or led.state is not WorkerHealth.QUARANTINED:
            return False
        led.state = WorkerHealth.PROBATION
        led.probation_wins = 0
        led.fast_fails = 0
        # Lift the score off the floor so the first probation failure is
        # judged by the zero-tolerance rule, not a stale EWMA.
        led.score = max(led.score, self.config.quarantine_below)
        self.unquarantines += 1
        return True

    def restore_quarantine(self, worker: str) -> None:
        """Journal replay re-applied a pre-crash quarantine: force the
        state without counting a new quarantine event."""
        led = self._ledger(worker)
        if led.state is not WorkerHealth.QUARANTINED:
            led.state = WorkerHealth.QUARANTINED
            led.probation_wins = 0

    def forget_worker(self, worker: str) -> None:
        """A fresh pod registered under this name: its process history
        died with the old pod, so the ledger starts over."""
        self._workers.pop(worker, None)

    # ----------------------------------------------------------------- stats
    def stats(self) -> Dict[str, int]:
        states = [led.state for led in self._workers.values()]
        return {
            "health_quarantines": self.quarantines,
            "health_unquarantines": self.unquarantines,
            "health_poison_verdicts": self.poison_verdicts,
            "workers_quarantined": sum(
                1 for s in states if s is WorkerHealth.QUARANTINED
            ),
            "workers_suspect": sum(1 for s in states if s is WorkerHealth.SUSPECT),
            "workers_probation": sum(
                1 for s in states if s is WorkerHealth.PROBATION
            ),
        }
