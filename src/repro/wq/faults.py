"""Task-level fault injection: crashes, resource exhaustion, retry policy.

The paper treats worker pods as "disposable objects which might fail or
restart" (§II-C) and leans on Work Queue's resource monitor to size
allocations per category. Real Work Queue deployments see two task-level
failure modes on top of pod loss:

* **transient failures** — the task exits nonzero (bad input shard,
  flaky service dependency); the master retries it with exponential
  backoff;
* **resource exhaustion** — the task's usage spikes above its current
  allocation and the worker's enforcement kills it. Work Queue's
  first-allocation/max-allocation scheme answers by retrying the task
  with an *escalated* allocation; the escalated size is recorded against
  the category so siblings and HTA's Algorithm 1 plan with it.

:class:`TaskFaultModel` draws one uniform variate per execution attempt
from the per-category stream ``faults.task.<category>``, so fault
sequences replay bit-identically regardless of how many other streams the
run consumes.

On top of the crash/omission faults above, this module models **value
faults** — failures that return *wrong data* instead of no data:

* **silent result corruption** — the attempt runs to completion but the
  delivered payload is damaged (bit rot, a bad NIC, a sick filesystem);
  only content-digest verification at the master can catch it;
* **checkpoint corruption** — a shipped migration snapshot is damaged in
  cut or transit; resuming from it would poison the task, so the master
  discards it and the task resumes from its last good banked progress;
* **black-hole workers** (:class:`BlackHoleProfile`) — a sick node that
  fails (or fake-completes) every task in seconds. Untreated it attracts
  the entire queue, the classic HTCondor-pool failure mode the health
  ledger (:mod:`repro.wq.health`) exists to police.

:class:`ValueFaultModel` draws from dedicated streams
(``faults.value.result.<category>`` / ``faults.value.checkpoint.<category>``)
and consumes nothing while every probability is zero, so integrity-free
runs stay bit-identical to builds that predate it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.cluster.resources import ResourceVector
from repro.sim.rng import RngRegistry
from repro.wq.task import Task


@dataclass(frozen=True, slots=True)
class TaskFault:
    """The fate drawn for one execution attempt."""

    #: ``"transient"`` (nonzero exit) or ``"exhaustion"`` (killed for
    #: exceeding the allocation).
    kind: str
    #: Fraction of the task's execution time burned before the failure
    #: surfaces (exhaustion kills mid-run; transient failures surface at
    #: the would-be exit).
    at_fraction: float
    #: For exhaustion: the allocation the retry must run under.
    escalate_to: Optional[ResourceVector] = None


@dataclass(frozen=True, slots=True)
class CategoryFaultProfile:
    """Per-category fault probabilities (per execution attempt)."""

    #: Probability the attempt exits nonzero after running to completion.
    failure_prob: float = 0.0
    #: Probability the attempt's usage spikes above its allocation.
    exhaustion_prob: float = 0.0
    #: Spike size as a multiple of the task's footprint; the retry is
    #: escalated to this allocation (Work Queue's max-allocation step).
    exhaustion_factor: float = 1.5
    #: Fraction of the execution time elapsed when the kill lands.
    exhaustion_at_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_prob <= 1.0:
            raise ValueError(f"failure_prob must be in [0,1], got {self.failure_prob}")
        if not 0.0 <= self.exhaustion_prob <= 1.0:
            raise ValueError(
                f"exhaustion_prob must be in [0,1], got {self.exhaustion_prob}"
            )
        if self.failure_prob + self.exhaustion_prob > 1.0:
            raise ValueError("failure_prob + exhaustion_prob must not exceed 1")
        if self.exhaustion_factor <= 1.0:
            raise ValueError("exhaustion_factor must exceed 1")
        if not 0.0 <= self.exhaustion_at_fraction <= 1.0:
            raise ValueError("exhaustion_at_fraction must be in [0,1]")


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Exponential backoff between execution attempts of a failed task.

    Attempt ``n`` (1-based count of failures so far) waits
    ``base_backoff_s * 2**(n-1)``, capped at ``max_backoff_s``. Worker
    losses keep their immediate front-of-queue requeue — the task did
    nothing wrong — only task-level failures back off.
    """

    base_backoff_s: float = 2.0
    max_backoff_s: float = 120.0

    def __post_init__(self) -> None:
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff durations must be non-negative")

    def backoff_s(self, attempts: int) -> float:
        if attempts <= 0 or self.base_backoff_s == 0:
            return 0.0
        return min(self.base_backoff_s * 2 ** (attempts - 1), self.max_backoff_s)


@dataclass(frozen=True, slots=True)
class SpeculationConfig:
    """Straggler mitigation tunables (Master's speculative re-execution)."""

    #: Scan cadence for straggler detection.
    check_period_s: float = 30.0
    #: A running task is a straggler once its elapsed execution exceeds
    #: this multiple of the category's mean runtime.
    slowdown_factor: float = 2.0
    #: Minimum completed samples before the category mean is trusted.
    min_samples: int = 3
    #: Never speculate before a task has run at least this long.
    min_age_s: float = 30.0
    #: Cap on concurrently live speculative copies.
    max_live: int = 4

    def __post_init__(self) -> None:
        if self.check_period_s <= 0:
            raise ValueError("check_period_s must be positive")
        if self.slowdown_factor <= 1.0:
            raise ValueError("slowdown_factor must exceed 1")
        if self.min_samples < 1:
            raise ValueError("min_samples must be at least 1")


@dataclass(frozen=True, slots=True)
class ValueFaultProfile:
    """Per-category value-fault probabilities (silent corruptions)."""

    #: Probability a completed attempt's delivered result is corrupted.
    result_corruption_prob: float = 0.0
    #: Probability a shipped migration checkpoint arrives corrupted.
    checkpoint_corruption_prob: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.result_corruption_prob <= 1.0:
            raise ValueError(
                f"result_corruption_prob must be in [0,1], "
                f"got {self.result_corruption_prob}"
            )
        if not 0.0 <= self.checkpoint_corruption_prob <= 1.0:
            raise ValueError(
                f"checkpoint_corruption_prob must be in [0,1], "
                f"got {self.checkpoint_corruption_prob}"
            )


#: Valid black-hole behaviours.
BLACK_HOLE_MODES = ("fast-fail", "fast-fake")


@dataclass(frozen=True, slots=True)
class BlackHoleProfile:
    """A black-hole worker's behaviour: every task it starts resolves in
    ``latency_s`` seconds — as a failure (``fast-fail``) or as a
    fake completion whose payload never verifies (``fast-fake``)."""

    mode: str = "fast-fail"
    latency_s: float = 1.0

    def __post_init__(self) -> None:
        if self.mode not in BLACK_HOLE_MODES:
            raise ValueError(
                f"unknown black-hole mode {self.mode!r}; known: {BLACK_HOLE_MODES}"
            )
        if self.latency_s < 0:
            raise ValueError(f"latency_s must be non-negative, got {self.latency_s}")


class ValueFaultModel:
    """Draws value faults (silent corruptions) from seeded streams.

    One uniform variate per *eligible* event — a result delivery or a
    checkpoint ship — from per-category streams separate from the crash
    fault streams, so arming value faults never perturbs the existing
    fault sequences, and zero-probability profiles consume nothing.
    """

    def __init__(
        self,
        rng: RngRegistry,
        *,
        profiles: Optional[Dict[str, ValueFaultProfile]] = None,
        default: Optional[ValueFaultProfile] = None,
    ) -> None:
        self.rng = rng
        self.profiles = dict(profiles) if profiles else {}
        self.default = default if default is not None else ValueFaultProfile()
        self.draws = 0

    def profile_for(self, category: str) -> ValueFaultProfile:
        return self.profiles.get(category, self.default)

    def draw_result_corruption(self, task: Task) -> bool:
        """Is this attempt's delivered result silently corrupted?"""
        profile = self.profile_for(task.category)
        if profile.result_corruption_prob == 0.0:
            return False
        self.draws += 1
        u = float(
            self.rng.stream(f"faults.value.result.{task.category}").uniform(0.0, 1.0)
        )
        return u < profile.result_corruption_prob

    def draw_checkpoint_corruption(self, task: Task) -> bool:
        """Is this shipped checkpoint corrupted in cut or transit?"""
        profile = self.profile_for(task.category)
        if profile.checkpoint_corruption_prob == 0.0:
            return False
        self.draws += 1
        u = float(
            self.rng.stream(
                f"faults.value.checkpoint.{task.category}"
            ).uniform(0.0, 1.0)
        )
        return u < profile.checkpoint_corruption_prob


class TaskFaultModel:
    """Draws a fate for each execution attempt from seeded streams."""

    def __init__(
        self,
        rng: RngRegistry,
        *,
        profiles: Optional[Dict[str, CategoryFaultProfile]] = None,
        default: Optional[CategoryFaultProfile] = None,
    ) -> None:
        self.rng = rng
        self.profiles = dict(profiles) if profiles else {}
        self.default = default if default is not None else CategoryFaultProfile()
        self.draws = 0

    def profile_for(self, category: str) -> CategoryFaultProfile:
        return self.profiles.get(category, self.default)

    def draw(self, task: Task, allocation: ResourceVector) -> Optional[TaskFault]:
        """Fate of one attempt of ``task`` running under ``allocation``.

        One uniform variate is consumed per call — the draw count per
        category depends only on the attempt sequence, keeping replays
        bit-identical. An exhaustion draw survives (returns ``None``)
        when the attempt already runs under the escalated allocation:
        retries after escalation do not die again for the same spike.
        """
        profile = self.profile_for(task.category)
        if profile.failure_prob == 0.0 and profile.exhaustion_prob == 0.0:
            return None
        self.draws += 1
        u = float(self.rng.stream(f"faults.task.{task.category}").uniform(0.0, 1.0))
        if u < profile.failure_prob:
            return TaskFault(kind="transient", at_fraction=1.0)
        if u < profile.failure_prob + profile.exhaustion_prob:
            spike = task.footprint.scale(profile.exhaustion_factor)
            survives = (
                task.min_allocation is not None
                and spike.fits_in(task.min_allocation)
            ) or spike.fits_in(allocation)
            if survives:
                return None
            return TaskFault(
                kind="exhaustion",
                at_fraction=profile.exhaustion_at_fraction,
                escalate_to=spike,
            )
        return None
