"""Task-allocation policies: how much of a worker does a task get?

§III-A/§IV-A describe three regimes, each captured as an estimator the
master consults at dispatch:

* :class:`ConservativeEstimator` — resources unknown → one task occupies
  the **whole worker** (Work Queue's safe default; the fig-4
  coarse-grained-unknown configuration);
* :class:`DeclaredResourceEstimator` — trust the task's declaration (the
  fig-4 "resource requirements known in advance" configuration);
* :class:`MonitorEstimator` — the paper's scheme: declaration if present,
  else the per-category estimate from the resource monitor; a category
  with no completed sample yet gets a whole-worker **probe** so its first
  task "uses a worker-pod exclusively [and] has resource consumption
  measured" (§IV-A step ii).
"""

from __future__ import annotations

from typing import Optional, Protocol

from repro.cluster.resources import ResourceVector
from repro.wq.monitor import ResourceMonitor
from repro.wq.task import Task


class AllocationEstimator(Protocol):
    """Returns the allocation to reserve on ``worker_capacity`` for
    ``task``, or None to reserve the entire worker."""

    def allocation_for(
        self, task: Task, worker_capacity: ResourceVector
    ) -> Optional[ResourceVector]:
        ...  # pragma: no cover - protocol signature


class ConservativeEstimator:
    """Unknown resources → whole worker; declarations are ignored too
    (models a deployment that never trusts user declarations)."""

    def allocation_for(
        self, task: Task, worker_capacity: ResourceVector
    ) -> Optional[ResourceVector]:
        return None


class DeclaredResourceEstimator:
    """Use the task's declaration; fall back to whole worker if absent."""

    def allocation_for(
        self, task: Task, worker_capacity: ResourceVector
    ) -> Optional[ResourceVector]:
        return task.declared


class MonitorEstimator:
    """Declaration → monitor category estimate → whole-worker probe.

    ``probe_unknown`` keeps the §IV-A semantics: the first task of a
    category runs alone so the monitor gets a clean measurement. With it
    disabled the estimator degrades to :class:`DeclaredResourceEstimator`
    plus monitor feedback (useful in ablations).
    """

    def __init__(self, monitor: ResourceMonitor, *, probe_unknown: bool = True):
        self.monitor = monitor
        self.probe_unknown = probe_unknown

    def allocation_for(
        self, task: Task, worker_capacity: ResourceVector
    ) -> Optional[ResourceVector]:
        if task.declared is not None:
            return task.declared
        estimate = self.monitor.resource_estimate(task.category)
        if estimate is not None:
            # Never estimate above a whole worker; a too-large estimate
            # would make the task permanently unschedulable.
            if not estimate.fits_in(worker_capacity):
                return None
            return estimate
        if self.probe_unknown:
            return None  # whole-worker probe for a first-of-category task
        return None
