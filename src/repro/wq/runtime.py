"""Glue between Kubernetes pods and Work Queue workers.

"We align each worker container with an independent pod and manage the
life-cycle of each worker container directly through the Work Queue"
(§II-C). :class:`WorkerPodRuntime` watches pods carrying a label
(``app=<name>``) and, when one turns Running, starts a :class:`Worker`
inside it:

* the worker's capacity is the pod's resource request;
* its transfer rate is capped by the node's NIC;
* the pod's ``cpu_usage_fn`` is wired to the worker (so metrics-server →
  HPA observe real usage);
* deleting the pod **kills** the worker (tasks requeued) — HPA's path;
* a drained worker exiting gracefully completes its pod — HTA's path.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.cluster.api import KubeApiServer, WatchEvent, WatchEventType
from repro.cluster.kubelet import KubeletManager
from repro.cluster.pod import Pod, PodPhase
from repro.sim.engine import Engine, PeriodicTask
from repro.wq.master import Master
from repro.wq.worker import Worker, WorkerState


class WorkerPodRuntime:
    """Starts/stops workers as their pods come and go."""

    def __init__(
        self,
        engine: Engine,
        api: KubeApiServer,
        kubelets: KubeletManager,
        master: Master,
        *,
        app_label: str = "wq-worker",
        on_worker_started: Optional[Callable[[Worker], None]] = None,
        resync_period_s: Optional[float] = None,
        master_selector: Optional[Callable[[Pod], Master]] = None,
    ) -> None:
        self.engine = engine
        self.api = api
        self.kubelets = kubelets
        self.master = master
        #: Sharded data plane hook: picks the master a new worker pod
        #: connects to (e.g. ``Foreman.master_for_pod``). None — the
        #: single-master default — uses :attr:`master` for every pod.
        self.master_selector = master_selector
        self.app_label = app_label
        self.on_worker_started = on_worker_started
        self.workers: Dict[str, Worker] = {}  # pod name -> worker
        self.workers_started = 0
        self.workers_killed = 0
        self.resyncs = 0
        self.pods_adopted = 0
        #: Pod kind-version as of the last full resync scan. Every event
        #: that could create adoptable work (a pod turning Running, a
        #: worker's pod being deleted or completed) bumps the Pod
        #: version, so an unchanged head means the relist would find
        #: nothing to adopt and can be skipped.
        self._resync_version = -1
        self._resync_loop: Optional[PeriodicTask] = None
        api.watch("Pod", self._on_pod_event, replay_existing=True)
        if resync_period_s is not None:
            self._resync_loop = PeriodicTask(engine, resync_period_s, self.resync)

    def close(self) -> None:
        """Unsubscribe from the API server (end of an experiment run)."""
        self.api.unwatch("Pod", self._on_pod_event)
        if self._resync_loop is not None:
            self._resync_loop.stop()
            self._resync_loop = None

    def resync(self) -> int:
        """Relist worker pods and adopt any Running pod without a worker.

        A pod that turned Running during an API outage (or whose watch
        event was silently dropped) would otherwise burn capacity forever
        with no worker process inside — the runtime's one reconcile rule,
        the same role client-go's periodic resync plays for informers.
        Returns the number of pods adopted."""
        if not self.api.available:
            return 0  # a relist would fail too
        self.resyncs += 1
        version = self.api.kind_version("Pod")
        if version == self._resync_version:
            return 0  # no pod writes since the last scan; see __init__
        adopted = 0
        for pod in self.api.list("Pod"):
            if not isinstance(pod, Pod):
                continue
            if pod.meta.labels.get("app") != self.app_label:
                continue
            if pod.phase is PodPhase.RUNNING and pod.name not in self.workers:
                self._start_worker(pod)
                adopted += 1
        self._resync_version = version
        self.pods_adopted += adopted
        return adopted

    def __enter__(self) -> "WorkerPodRuntime":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # --------------------------------------------------------------- events
    def _on_pod_event(self, event: WatchEvent) -> None:
        pod = event.obj
        if not isinstance(pod, Pod) or pod.meta.labels.get("app") != self.app_label:
            return
        if event.type is WatchEventType.DELETED:
            # api._teardown_pod already invoked pod.on_stop → worker.kill();
            # nothing further needed, but drop our reference.
            self.workers.pop(pod.name, None)
            return
        if pod.phase is PodPhase.RUNNING and pod.name not in self.workers:
            self._start_worker(pod)

    # --------------------------------------------------------------- worker
    def _start_worker(self, pod: Pod) -> None:
        nic = pod.node.machine_type.nic_bandwidth_mbps if pod.node is not None else None
        master = (
            self.master_selector(pod)
            if self.master_selector is not None
            else self.master
        )
        worker = Worker(
            self.engine,
            master,
            name=f"worker@{pod.name}",
            capacity=pod.spec.request,
            pod=pod,
            nic_bandwidth_mbps=nic,
            on_exit=self._worker_exited,
        )
        self.workers[pod.name] = worker
        self.workers_started += 1
        pod.cpu_usage_fn = worker.cpu_usage
        pod.on_stop = lambda _pod, w=worker: self._pod_stopped(w)
        if self.on_worker_started is not None:
            self.on_worker_started(worker)

    def _pod_stopped(self, worker: Worker) -> None:
        """The pod was deleted while running: hard-kill the worker."""
        if worker.state not in (WorkerState.STOPPED, WorkerState.KILLED):
            self.workers_killed += 1
            worker.kill()

    def _worker_exited(self, worker: Worker) -> None:
        """Worker process ended. For a graceful stop, complete the pod so
        Kubernetes sees Succeeded (fig 9's final state)."""
        pod = worker.pod
        if pod is None:
            return
        self.workers.pop(pod.name, None)
        if worker.state is WorkerState.STOPPED and not pod.phase.terminal:
            kubelet = self.kubelets.for_pod(pod)
            if kubelet is not None:
                kubelet.stop_container(pod, succeeded=True)

    # ---------------------------------------------------------------- reads
    def worker_for(self, pod: Pod) -> Optional[Worker]:
        return self.workers.get(pod.name)

    def live_workers(self) -> List[Worker]:
        return [
            w
            for w in self.workers.values()
            if w.state in (WorkerState.CONNECTING, WorkerState.READY, WorkerState.DRAINING)
        ]
