"""DispatchCore — the master's pure queue/run-table/retry state machine.

The Work Queue master splits into two layers:

* :class:`DispatchCore` (this module) — the pure dispatch state machine:
  the FIFO queue with retry-to-front semantics, the run table, the
  retry/backoff/abandon ladder, speculation, health/integrity policy,
  completion acceptance, and every aggregate counter — each transition
  journalled through :class:`~repro.wq.journal.TransactionJournal` so
  replay (and the fixed-seed fidelity oracle) see one canonical history;
* :class:`~repro.wq.master.Master` — the thin session/connection shell
  over it: worker registration, partition liveness clocks, outage
  pause/resume, and crash recovery.

The split is behavior-preserving by construction: every method body
moved verbatim, so a fixed seed drives bit-identical journals through
either entry point. Sharding (:mod:`repro.wq.sharding`) builds on this
layer — N cores, each owning a disjoint task partition, aggregated by a
Foreman into the one logical view HTA consumes.

Dispatch protocol (the explicit surface a driver exercises):

``submit``    — a WAITING task enters the queue (journal: SUBMIT);
``dispatch``  — ``_schedule_dispatch`` drains the queue onto accepting
                workers (journal: DISPATCH, or MIGRATE_IN when resuming
                banked checkpoint progress);
``complete``  — ``task_finished`` delivers a result; acceptance is
                idempotent on ``(task_id, attempt)`` (journal: COMPLETE);
``retry``     — ``task_failed`` / ``worker_lost`` requeue at the front,
                burning an attempt (journal: RETRY, ABANDON past the
                retry budget);
``evacuate``  — ``evacuate_worker`` / ``migration_arrived`` pull runs
                off doomed workers without burning attempts (journal:
                RETRY / CHECKPOINT + MIGRATE_OUT).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.cluster.resources import ResourceVector
from repro.sim.engine import Engine, PeriodicTask
from repro.telemetry.events import NULL_TRACER, Tracer
from repro.telemetry.metrics import MetricsRegistry
from repro.wq.estimator import AllocationEstimator, MonitorEstimator
from repro.wq.faults import (
    RetryPolicy,
    SpeculationConfig,
    TaskFault,
    TaskFaultModel,
    ValueFaultModel,
)
from repro.wq.health import HealthConfig, HealthLedger
from repro.wq.journal import TransactionJournal
from repro.wq.link import Link
from repro.wq.monitor import ResourceMonitor
from repro.wq.task import Task, TaskResult, TaskState
from repro.wq.worker import Worker, WorkerState

CompletionCallback = Callable[[Task, TaskResult], None]


@dataclass(frozen=True, slots=True)
class MasterStats:
    """A point-in-time snapshot of queue state (HTA's reference input)."""

    time: float
    waiting: int
    running: int
    done: int
    workers_connected: int
    workers_idle: int
    workers_busy: int
    workers_draining: int

    @property
    def backlog(self) -> int:
        return self.waiting + self.running


@dataclass(frozen=True, slots=True)
class DispatchConfig:
    """The state-machine knobs of one :class:`DispatchCore`, grouped in
    a value object so shard masters can be stamped out of the same
    configuration (and so the legacy flat-keyword :class:`Master`
    constructor has one canonical home to assemble into)."""

    max_retries: int = 5
    #: Optional task-level fault injection (see :mod:`repro.wq.faults`).
    fault_model: Optional[TaskFaultModel] = None
    #: Optional value-fault injection (silent result/checkpoint
    #: corruption; see :class:`~repro.wq.faults.ValueFaultModel`).
    value_faults: Optional[ValueFaultModel] = None
    #: Content-digest verification on result and checkpoint delivery.
    verify: bool = True
    #: Per-worker health ledger driving quarantine + blame attribution;
    #: None disables the whole policy layer.
    health: Optional[HealthConfig] = None
    retry_policy: Optional[RetryPolicy] = None
    #: Straggler mitigation; None disables speculative re-execution.
    speculation: Optional[SpeculationConfig] = None
    #: Recover from the journal (True) or cold-restart (False).
    replay_journal: bool = True
    #: Post-recovery reconnect window before unclaimed tasks requeue.
    recovery_grace_s: float = 45.0
    #: Connected-but-unreachable grace before a worker is declared lost.
    liveness_timeout_s: float = 90.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")


class DispatchCore:
    """The pure queue/run-table/retry state machine behind the master.

    Dispatch policy (§II-B: "during runtime, the master finds available
    workers and assigns jobs to them"):

    1. Tasks leave the queue in FIFO order (retried tasks re-enter at
       the front so a worker loss doesn't starve them).
    2. Each task's allocation comes from the installed
       :class:`~repro.wq.estimator.AllocationEstimator`; ``None`` means
       the whole worker (the conservative / probing path).
    3. Among workers that fit, prefer one that already caches the
       task's cacheable inputs, then the one with least available
       capacity (best-fit, keeping large slots open for whole-worker
       probes).
    """

    def __init__(
        self,
        engine: Engine,
        link: Link,
        *,
        config: Optional[DispatchConfig] = None,
        estimator: Optional[AllocationEstimator] = None,
        monitor: Optional[ResourceMonitor] = None,
        name: str = "wq-master",
        start_available: bool = True,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        config = config if config is not None else DispatchConfig()
        #: The immutable knob bundle this core was built from; shard
        #: builders replicate masters off it.
        self.config = config
        self.engine = engine
        self.link = link
        #: Structured event stream (no-op sink unless telemetry is on).
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Per-category latency histograms; skipped entirely when no
        #: registry was supplied (tracing-off runs stay lean).
        self._h_queue_wait = (
            metrics.histogram(
                "wq_task_queue_wait_seconds",
                "submit-to-dispatch latency per category",
            )
            if metrics is not None
            else None
        )
        self._h_execute = (
            metrics.histogram(
                "wq_task_execute_seconds",
                "execution time of accepted results per category",
            )
            if metrics is not None
            else None
        )
        self.name = name
        self.max_retries = config.max_retries
        #: Optional task-level fault injection (see :mod:`repro.wq.faults`).
        self.fault_model = config.fault_model
        #: Optional value-fault injection (silent result/checkpoint
        #: corruption; see :class:`~repro.wq.faults.ValueFaultModel`).
        self.value_faults = config.value_faults
        #: Content-digest verification on result and checkpoint delivery.
        #: With no value faults armed it is pure policy (nothing can be
        #: corrupt), so the default True costs integrity-free runs nothing.
        self.verify = config.verify
        #: Per-worker health ledger driving quarantine + blame
        #: attribution; None disables the whole policy layer.
        self.health: Optional[HealthLedger] = (
            HealthLedger(config.health) if config.health is not None else None
        )
        self.retry_policy = (
            config.retry_policy if config.retry_policy is not None else RetryPolicy()
        )
        #: Straggler mitigation; None disables speculative re-execution.
        self.speculation = config.speculation
        self.monitor = monitor if monitor is not None else ResourceMonitor()
        self.estimator: AllocationEstimator = (
            estimator if estimator is not None else MonitorEstimator(self.monitor)
        )
        self.queue: List[Task] = []
        self.workers: Dict[str, Worker] = {}
        self.running: Dict[int, Task] = {}
        self.done: List[Task] = []
        # ------------------------------------------- dispatch-path indexes
        #: Mirror of the subset of ``workers`` whose ``accepting`` flag is
        #: true, maintained through :meth:`worker_status_changed`, so a
        #: dispatch pass touches only real candidates instead of scanning
        #: every connected worker. The best-fit key ends in the unique
        #: worker name, so the winner is independent of iteration order.
        self._accepting: Dict[str, Worker] = {}
        #: Last-seen (accepting, idle, busy, draining) per worker; the
        #: deltas keep the integer counters below exact.
        self._worker_flags: Dict[str, Tuple[bool, bool, bool, bool]] = {}
        self._n_idle = 0
        self._n_busy = 0
        self._n_draining = 0
        #: Ids of tasks currently in ``queue`` — O(1) membership for the
        #: completion/reconnect paths that used to scan the whole list.
        self._queued_ids: Set[int] = set()
        #: Queued tasks with nonzero priority; while zero (the default for
        #: every workload) the dispatch order is plain queue order and the
        #: per-pass sort is skipped.
        self._queued_priority = 0
        #: Bumped on every queue mutation; lets O(queue) aggregates such
        #: as :meth:`cores_waiting` memoize their fold between mutations
        #: (the recompute keeps the original iteration order, so the
        #: cached float is bit-identical to an on-demand fold).
        self._queue_rev = 0
        self._cores_waiting_cache: Tuple[int, float] = (-1, 0.0)
        #: Tasks given up on after max_retries worker losses.
        self.abandoned: List[Task] = []
        # Callback registries are tuples so notification loops iterate a
        # natural snapshot instead of copying a list per completion.
        self._abandoned_callbacks: Tuple[Callable[[Task], None], ...] = ()
        self._callbacks: Tuple[CompletionCallback, ...] = ()
        self._dispatch_pending = False
        self.tasks_submitted = 0
        self.tasks_requeued = 0
        # ------------------------------------------ fault-tolerance state
        #: Tasks waiting out a retry backoff (not in the queue yet).
        self._backoff_pending = 0
        #: Straggler speculation: original task id -> live clone, and the
        #: reverse map (clone id -> original).
        self._spec: Dict[int, Task] = {}
        self._spec_origin: Dict[int, Task] = {}
        self._spec_loop: Optional[PeriodicTask] = None
        self.tasks_failed = 0
        self.tasks_exhausted = 0
        self.escalations = 0
        self.tasks_speculated = 0
        self.speculation_wins = 0
        self.speculation_losses = 0
        # --------------------------------------------------- integrity state
        #: Result deliveries rejected by content-digest verification.
        self.verify_fails = 0
        #: Checkpoint deliveries whose snapshot failed verification.
        self.checkpoint_verify_fails = 0
        #: Corrupted results accepted as COMPLETE (only possible with
        #: verification off — the ground-truth damage counter the
        #: integrity experiment contrasts).
        self.corrupted_completes = 0
        #: Core-seconds of corrupt completed work, subtracted from
        #: :meth:`goodput_core_s` by :meth:`clean_goodput_core_s`.
        self.corrupted_goodput_core_s = 0.0
        #: Workers quarantined / re-admitted on probation by the ledger.
        self.quarantines = 0
        self.unquarantines = 0
        #: Tasks isolated by blame attribution (poison-task verdicts).
        self.tasks_poisoned = 0
        #: Deliveries rejected because the worker was quarantined.
        self.quarantined_rejected = 0
        #: Monotonic token per worker name; a probation timer fires only
        #: if no newer quarantine superseded it.
        self._quarantine_seq: Dict[str, int] = {}
        #: Worker names the replayed journal says were quarantined at
        #: crash time; re-applied as those workers reconnect.
        self._recovered_quarantined: Set[str] = set()
        #: Core-seconds burned by killed attempts and cancelled duplicates.
        self.wasted_core_s = 0.0
        #: False while the master process is down (its pod restarting).
        #: Dispatch pauses and completions buffer at the workers until
        #: the master resumes — the paper's StatefulSet + persistent
        #: volume design makes exactly this recovery possible (§V-A).
        #: Pass ``start_available=False`` when the master is hosted in a
        #: pod that has not started yet (MasterDeployment does).
        self.available = start_available
        self._buffered_completions: List[tuple[Worker, Task]] = []
        self.outages = 0
        # ------------------------------------------- crash-recovery state
        #: Append-only transaction log of state transitions; models the
        #: log Work Queue keeps on the master pod's persistent volume.
        #: Always written (appends are cheap); :attr:`replay_journal`
        #: decides whether recovery reads it.
        self.journal = TransactionJournal()
        #: Recover from the journal (True) or cold-restart (False — the
        #: ablation where the log is lost and completed work re-runs).
        self.replay_journal = config.replay_journal
        #: After recovery, tasks dispatched pre-crash whose workers have
        #: not reconnected get requeued once this window closes. Must
        #: exceed the workers' maximum reconnect-poll gap
        #: (:attr:`Worker.RECONNECT_MAX_S`) so surviving runs are adopted
        #: rather than duplicated.
        self.recovery_grace_s = config.recovery_grace_s
        self.crashed = False
        self.crashes = 0
        #: Completed tasks re-executed because recovery forgot them.
        self.tasks_rerun = 0
        #: Result deliveries dropped by the (task_id, attempt) idempotency
        #: check or because the recovered master no longer knows the attempt.
        self.duplicate_results = 0
        self.last_crash_at: Optional[float] = None
        self.last_recovered_at: Optional[float] = None
        self.first_completion_after_recovery_at: Optional[float] = None
        self.recovered_queue_depth = 0
        #: Dispatched-but-unresolved tasks reconstructed by replay, keyed
        #: by task id; re-adopted as their workers reconnect.
        self._unclaimed: Dict[int, Task] = {}
        #: ``(task_id, attempt)`` results already accepted.
        self._delivered: Set[Tuple[int, int]] = set()
        #: Bumped on every crash; callbacks scheduled pre-crash carry the
        #: old value and turn into no-ops.
        self._incarnation = 0
        # ---------------------------------------------- partition liveness
        #: How long a connected-but-unreachable worker keeps its runs on
        #: the books before being declared lost. Must exceed the workers'
        #: maximum reconnect-poll gap (:attr:`Worker.RECONNECT_MAX_S`) so
        #: a healed partition re-adopts runs instead of duplicating them.
        self.liveness_timeout_s = config.liveness_timeout_s
        #: Unreachable-since timestamps, keyed by worker name; cleared on
        #: reconnect (not on heal — only the worker's re-registration
        #: proves the link is back).
        self._unreachable: Dict[str, float] = {}
        self.partitions_detected = 0
        self.workers_declared_lost = 0
        #: In-flight runs proactively pulled off doomed (preemption-
        #: noticed) workers inside the grace window.
        self.tasks_evacuated = 0
        # ------------------------------------------------------- migration
        #: Checkpoints accepted (task requeued resuming from progress)
        #: and dropped as stale (attempt superseded while shipping).
        self.migrations_accepted = 0
        self.migrations_stale = 0
        #: Tasks adopted from a dead shard by the failover coordinator
        #: (queued and unclaimed both count; zero on unsharded masters).
        self.tasks_rehomed_in = 0
        #: Called on every checkpoint delivery with
        #: ``(worker, task, accepted, ship_s)`` — the migration
        #: coordinator paces its fluid policies off this.
        self._migration_listeners: Tuple[Callable, ...] = ()
        #: Called with the worker at the top of :meth:`worker_lost`, so
        #: the coordinator can write off in-flight checkpoints that died
        #: with their node.
        self._worker_lost_listeners: Tuple[Callable[[Worker], None], ...] = ()

    # ------------------------------------------------------------ callbacks
    def on_complete(self, fn: CompletionCallback) -> None:
        self._callbacks = self._callbacks + (fn,)

    def on_abandoned(self, fn: Callable[[Task], None]) -> None:
        """Register for tasks permanently given up after max_retries."""
        self._abandoned_callbacks = self._abandoned_callbacks + (fn,)

    def add_migration_listener(self, fn: Callable) -> None:
        """Register for checkpoint deliveries: called with
        ``(worker, task, accepted, ship_s)`` after every
        :meth:`migration_arrived`."""
        self._migration_listeners = self._migration_listeners + (fn,)

    def add_worker_lost_listener(self, fn: Callable[[Worker], None]) -> None:
        """Register for worker deaths (called before the requeue loop)."""
        self._worker_lost_listeners = self._worker_lost_listeners + (fn,)

    # ------------------------------------------------------- queue indexing
    # Every mutation of ``queue`` goes through these helpers so the id set
    # and the nonzero-priority count stay exact.
    def _enqueue_back(self, task: Task) -> None:
        self.queue.append(task)
        self._queued_ids.add(task.id)
        self._queue_rev += 1
        if task.priority:
            self._queued_priority += 1

    def _enqueue_front(self, task: Task) -> None:
        self.queue.insert(0, task)
        self._queued_ids.add(task.id)
        self._queue_rev += 1
        if task.priority:
            self._queued_priority += 1

    def _dequeue(self, task: Task) -> None:
        """Remove ``task`` from the queue if present (O(1) when absent —
        the common case on the completion path)."""
        if task.id not in self._queued_ids:
            return
        self.queue = [t for t in self.queue if t is not task]
        self._queued_ids.discard(task.id)
        self._queue_rev += 1
        if task.priority:
            self._queued_priority -= 1

    def _reset_queue(self, tasks: List[Task]) -> None:
        self.queue = tasks
        self._queued_ids = {t.id for t in tasks}
        self._queue_rev += 1
        self._queued_priority = sum(1 for t in tasks if t.priority)

    # ------------------------------------------------------------- submit
    def submit(self, task: Task) -> None:
        if task.state is not TaskState.WAITING:
            raise RuntimeError(f"cannot submit task in state {task.state}")
        if task.submit_time is None:
            task.submit_time = self.engine.now
        self.tasks_submitted += 1
        self.journal.record_submit(self.engine.now, task)
        if self.tracer.enabled:
            self.tracer.emit(
                "wq", "task.submit", task.category, task_id=task.id
            )
        self._enqueue_back(task)
        self._ensure_speculation_loop()
        self._schedule_dispatch()

    def submit_many(self, tasks: List[Task]) -> None:
        for t in tasks:
            self.submit(t)

    # ------------------------------------------------------- worker caches
    def _refresh_worker_cache(self, worker: Worker) -> None:
        """Reconcile the accepting index and stat counters with one
        worker's live flags. Exact by construction: the old contribution
        is retired, the new one recomputed from the worker itself, and a
        worker no longer registered under its name contributes nothing."""
        name = worker.name
        old = self._worker_flags.pop(name, None)
        if old is not None:
            was_accepting, was_idle, was_busy, was_draining = old
            if was_accepting:
                self._accepting.pop(name, None)
            if was_idle:
                self._n_idle -= 1
            if was_busy:
                self._n_busy -= 1
            if was_draining:
                self._n_draining -= 1
        if self.workers.get(name) is not worker:
            return
        accepting = worker.accepting
        idle = worker.idle
        draining = worker.state is WorkerState.DRAINING
        busy = bool(worker.runs) and (
            worker.state is WorkerState.READY or draining
        )
        self._worker_flags[name] = (accepting, idle, busy, draining)
        if accepting:
            self._accepting[name] = worker
        if idle:
            self._n_idle += 1
        if busy:
            self._n_busy += 1
        if draining:
            self._n_draining += 1

    def _reset_worker_caches(self) -> None:
        self._accepting.clear()
        self._worker_flags.clear()
        self._n_idle = 0
        self._n_busy = 0
        self._n_draining = 0

    # ------------------------------------------------------------ preemption
    def evacuate_worker(
        self, worker: Worker, tasks: Optional[List[Task]] = None
    ) -> List[Task]:
        """A preemption notice doomed this worker: proactively pull its
        in-flight runs and requeue them at the front, inside the grace
        window, before the node is killed. Unlike :meth:`worker_lost`
        this is a planned migration, not a failure — it does not burn a
        retry attempt. ``tasks`` restricts the evacuation to a subset of
        the worker's runs (a grace-aware caller leaves nearly-finished
        runs racing the clock); None evacuates everything. Returns the
        requeued tasks; the caller drains the worker afterwards."""
        if tasks is None:
            victims = [run.task for run in list(worker.runs.values())]
        else:
            victims = [t for t in tasks if t.id in worker.runs]
        return self.evacuate([(worker, t) for t in victims])

    def evacuate(self, pairs: List[Tuple[Worker, Task]]) -> List[Task]:
        """Evacuate ``(worker, task)`` runs — possibly spanning several
        workers (every pod on a preempted node). Requeues in submit
        (seq) order: front-inserting in descending id order leaves the
        queue front ascending by id no matter how many workers evacuate
        in the same tick — and matches what journal replay (one
        ``insert(0)`` per retry record) reconstructs, record for
        record."""
        ordered = sorted(pairs, key=lambda pair: pair[1].id, reverse=True)
        requeued: List[Task] = []
        for worker, task in ordered:
            if task.id not in worker.runs:
                continue
            if task.result is not None or (
                task.speculation_of is None
                and self.running.get(task.id) is not task
            ):
                # A stale local copy: the task already completed, or the
                # master's books no longer bind it to an execution (it
                # was requeued while this worker was unreachable). Drop
                # the run without touching the ledgers.
                worker.cancel_run(task)
                continue
            worker.cancel_run(task)
            self.running.pop(task.id, None)
            self._charge_waste(task)
            if task.speculation_of is not None:
                # A speculative copy on a doomed worker: just forget it.
                self._drop_speculation_entry(task)
                task.state = TaskState.FAILED
                continue
            self.tasks_evacuated += 1
            self.tasks_requeued += 1
            task.reset_for_retry()
            self.journal.record_retry(self.engine.now, task)
            if self.tracer.enabled:
                self.tracer.emit(
                    "wq",
                    "task.retry",
                    task.category,
                    task_id=task.id,
                    reason="preemption",
                    attempt=task.attempts,
                    worker=worker.name,
                )
            self._enqueue_front(task)
            requeued.append(task)
        if requeued:
            self._schedule_dispatch()
        return requeued

    # -------------------------------------------------------------- failover
    def failover_out(self, task: Task) -> None:
        """Journal-only marker on a *dead* shard's PV: the foreman's
        failover coordinator re-homed ``task`` to a survivor. The live
        tables were already wiped by the crash, so nothing folds here —
        the record exists so that a post-failover restart replays to a
        state without the task (see journal replay's OUT/IN pairing)."""
        self.journal.record_failover_out(self.engine.now, task)

    def failover_in(
        self, task: Task, *, placement: str = "ready"
    ) -> None:
        """Adopt a task re-homed from a dead shard.

        ``placement="ready"`` re-enters the queue front (the task was
        waiting on the dead shard; front insertion mirrors the
        ``insert(0)`` this shard's own replay would reconstruct).
        ``placement="unclaimed"`` parks it in the unclaimed set: its
        worker may still be running it and will be adopted on reconnect
        by the ordinary :meth:`worker_reconnected` rules — the caller
        schedules a :meth:`_requeue_unclaimed` grace sweep so nothing
        stays stranded if the worker never returns. Banked checkpoint
        progress rides on the task object and is journaled so a crash
        of *this* shard replays the resume point."""
        progress = task.progress_s if task.progress_s > 0 else None
        self.journal.record_failover_in(
            self.engine.now, task, placement=placement, progress=progress
        )
        self.tasks_rehomed_in += 1
        if placement == "unclaimed":
            self._unclaimed[task.id] = task
        else:
            self._enqueue_front(task)
            self._schedule_dispatch()
        if self.tracer.enabled:
            self.tracer.emit(
                "wq",
                "task.failover_in",
                task.category,
                task_id=task.id,
                placement=placement,
                progress_s=task.progress_s,
            )

    # ------------------------------------------------------------- migration
    def migration_arrived(
        self,
        worker: Worker,
        task: Task,
        new_progress: float,
        lost_s: float,
        started_at: Optional[float] = None,
    ) -> bool:
        """A shipped checkpoint reached the master. At-most-once resume:
        the snapshot is accepted only while this worker's attempt is
        still the canonical one — the same ``_running_elsewhere`` guard
        that protects result delivery. A stale checkpoint (the task
        completed, was requeued by a liveness expiry, or is a
        speculative copy) is dropped without touching the ledgers.

        An accepted checkpoint banks ``new_progress`` on the task,
        journals CHECKPOINT + MIGRATE_OUT, charges only the un-banked
        tail (``lost_s``) as waste, cancels any speculative clone (it
        would race the resumed attempt to a double-completion), and
        requeues the task at the front — no attempt burned."""
        # Canonical = the master's books still bind this execution to
        # the delivering worker: live in ``running``, or waiting in the
        # post-recovery unclaimed set (same rule reconnect adoption
        # uses). A task requeued by a liveness expiry is neither, a
        # re-dispatched copy elsewhere trips ``_running_elsewhere``, and
        # a delivery while the task is still in the delivering worker's
        # own run table is a replay of an already-consumed snapshot (the
        # ship removes the run before any legitimate delivery).
        canonical = (
            self.running.get(task.id) is task
            or self._unclaimed.get(task.id) is task
        )
        accepted = not (
            task.result is not None
            or task.speculation_of is not None
            or not canonical
            or self._running_elsewhere(task, worker)
            or task.id in worker.runs
        )
        ship_s = (
            self.engine.now - started_at if started_at is not None else 0.0
        )
        if not accepted:
            task.checkpoint_corrupt = False
            self.migrations_stale += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    "wq",
                    "task.migrate_stale",
                    task.category,
                    task_id=task.id,
                    worker=worker.name,
                )
            for fn in self._migration_listeners:
                fn(worker, task, False, ship_s)
            return False
        if task.checkpoint_corrupt and self.verify:
            # Content-digest verification rejected the snapshot: resuming
            # from it would poison the task, so discard it — the task
            # keeps its last *good* banked progress (at-most-once resume
            # holds: the rejected snapshot is consumed, never replayed)
            # and requeues at the front, no attempt burned. The execution
            # beyond the old bank is wasted along with the lost tail.
            task.checkpoint_corrupt = False
            self.checkpoint_verify_fails += 1
            self.journal.record_verify_fail(self.engine.now, task, worker.name)
            if self.tracer.enabled:
                self.tracer.emit(
                    "wq",
                    "task.checkpoint_verify_fail",
                    task.category,
                    task_id=task.id,
                    worker=worker.name,
                    discarded_progress_s=new_progress,
                )
            self._cancel_speculation_for(task)
            self.running.pop(task.id, None)
            self._unclaimed.pop(task.id, None)
            unbanked_s = max(0.0, new_progress - task.progress_s) + max(0.0, lost_s)
            if unbanked_s > 0:
                self.wasted_core_s += unbanked_s * self._billable_cores(task)
            task.reset_for_retry()
            self.journal.record_migrate_out(self.engine.now, task)
            self._enqueue_front(task)
            self._schedule_dispatch()
            for fn in self._migration_listeners:
                fn(worker, task, False, ship_s)
            return False
        task.checkpoint_corrupt = False
        self.migrations_accepted += 1
        # Satellite of the migration protocol: a live speculative clone
        # of the migrating task must die here — first-completion-wins
        # against a clone would complete the task while its resumed
        # attempt re-runs, double-completing the migrated attempt.
        self._cancel_speculation_for(task)
        self.running.pop(task.id, None)
        self._unclaimed.pop(task.id, None)
        if lost_s > 0:
            self.wasted_core_s += lost_s * self._billable_cores(task)
        task.progress_s = new_progress
        task.reset_for_retry()
        self.journal.record_checkpoint(self.engine.now, task, new_progress)
        self.journal.record_migrate_out(self.engine.now, task)
        if self.tracer.enabled:
            self.tracer.emit(
                "wq",
                "task.migrate_out",
                task.category,
                task_id=task.id,
                worker=worker.name,
                progress_s=new_progress,
                lost_s=lost_s,
                ship_s=ship_s,
            )
        self._enqueue_front(task)
        self._schedule_dispatch()
        for fn in self._migration_listeners:
            fn(worker, task, True, ship_s)
        return True

    def worker_lost(self, worker: Worker, lost_tasks: List[Task]) -> None:
        """A worker died (pod deleted). Requeue its tasks at the front;
        tasks that have already burned ``max_retries`` attempts are
        abandoned (reported through ``on_abandoned``)."""
        for fn in self._worker_lost_listeners:
            fn(worker)
        self.workers.pop(worker.name, None)
        self._refresh_worker_cache(worker)
        for task in reversed(lost_tasks):
            if task.result is not None:
                # Already completed (a requeued copy finished elsewhere,
                # or this worker's held result was delivered): nothing to
                # requeue, and bumping attempts would corrupt the ledger.
                continue
            self.running.pop(task.id, None)
            self._charge_waste(task)
            if task.speculation_of is not None:
                # A speculative copy died with its worker: drop it
                # silently; the original is still in flight.
                self._drop_speculation_entry(task)
                continue
            task.attempts += 1
            if task.attempts > self.max_retries:
                self._abandon(task)
                continue
            self.tasks_requeued += 1
            task.reset_for_retry()
            self.journal.record_retry(self.engine.now, task)
            if self.tracer.enabled:
                self.tracer.emit(
                    "wq",
                    "task.retry",
                    task.category,
                    task_id=task.id,
                    reason="worker_lost",
                    attempt=task.attempts,
                    worker=worker.name,
                )
            self._enqueue_front(task)
        if lost_tasks:
            self._schedule_dispatch()

    # ------------------------------------------------------------- failures
    def draw_fault(self, task: Task, allocation: ResourceVector):
        """Worker hook: the fate of this execution attempt (None = runs
        to successful completion)."""
        if self.fault_model is None:
            return None
        return self.fault_model.draw(task, allocation)

    def draw_result_corruption(self, task: Task) -> bool:
        """Worker hook: is this attempt's delivered payload silently
        corrupted? Always False without a value-fault model (and then no
        variate is consumed — integrity-free runs stay bit-identical)."""
        if self.value_faults is None:
            return False
        return self.value_faults.draw_result_corruption(task)

    def draw_checkpoint_corruption(self, task: Task) -> bool:
        """Worker hook: is this shipped checkpoint corrupted?"""
        if self.value_faults is None:
            return False
        return self.value_faults.draw_checkpoint_corruption(task)

    def task_failed(self, worker: Worker, task: Task, fault: TaskFault) -> None:
        """A task-level failure: nonzero exit (transient) or killed by
        the worker's allocation enforcement (exhaustion). Exhaustion
        escalates the task's and its category's allocation — Work
        Queue's first-allocation/max-allocation retry — then the task
        re-enters the queue after an exponential backoff."""
        self.running.pop(task.id, None)
        self.tasks_failed += 1
        self._charge_waste(task)
        # Time-to-outcome for the fast-fail detector, taken before the
        # retry reset clears the attempt's timing.
        runtime_s = (
            self.engine.now - task.start_time
            if task.start_time is not None
            else None
        )
        if self.tracer.enabled:
            self.tracer.emit(
                "wq",
                "task.failed",
                task.category,
                task_id=task.id,
                kind=fault.kind,
                worker=worker.name,
                attempt=task.attempts,
            )
        if task.speculation_of is not None:
            # A speculative copy crashed: forget it, never retry it —
            # but the outcome still scores against the worker.
            self._drop_speculation_entry(task)
            self._health_failure(worker, task, runtime_s=runtime_s)
            return
        if fault.kind == "exhaustion" and fault.escalate_to is not None:
            self.tasks_exhausted += 1
            self.escalations += 1
            floor = task.min_allocation or ResourceVector.zero()
            task.min_allocation = floor.max_with(fault.escalate_to)
            self.monitor.observe_exhaustion(task.category, fault.escalate_to)
            self.journal.record_escalate(self.engine.now, task, fault.escalate_to)
        if self._health_failure(worker, task, runtime_s=runtime_s):
            return  # ruled poison and isolated; no retry
        task.attempts += 1
        if task.attempts > self.max_retries:
            self._abandon(task)
            return
        self.tasks_requeued += 1
        delay = self.retry_policy.backoff_s(task.attempts)
        task.reset_for_retry()
        if delay <= 0:
            self.journal.record_retry(self.engine.now, task)
            if self.tracer.enabled:
                self.tracer.emit(
                    "wq",
                    "task.retry",
                    task.category,
                    task_id=task.id,
                    reason=fault.kind,
                    attempt=task.attempts,
                )
            self._enqueue_front(task)
            self._schedule_dispatch()
        else:
            self._backoff_pending += 1
            self.engine.call_in(
                delay, self._requeue_after_backoff, task, self._incarnation
            )

    def _requeue_after_backoff(self, task: Task, incarnation: Optional[int] = None) -> None:
        if incarnation is not None and incarnation != self._incarnation:
            return  # scheduled before a crash; recovery re-owns the task
        self._backoff_pending -= 1
        if task.state is not TaskState.WAITING:
            return  # resolved meanwhile (e.g. its speculative copy won)
        self.journal.record_retry(self.engine.now, task)
        if self.tracer.enabled:
            self.tracer.emit(
                "wq",
                "task.retry",
                task.category,
                task_id=task.id,
                reason="backoff",
                attempt=task.attempts,
            )
        self._enqueue_front(task)
        self._schedule_dispatch()

    # ---------------------------------------------------- health / integrity
    def _health_failure(
        self, worker: Worker, task: Task, *, runtime_s: Optional[float]
    ) -> bool:
        """Score a failed (or verification-failed) attempt against the
        health ledger and act on its verdict. Returns True when the task
        was ruled poison and isolated — the caller must not retry it."""
        if self.health is None:
            return False
        verdict = self.health.record_failure(
            worker.name, task.id, runtime_s=runtime_s, now=self.engine.now
        )
        if verdict.quarantine_worker:
            self._quarantine_worker(worker)
        if verdict.poison_task and task.speculation_of is None:
            self._poison_task(task)
            return True
        return False

    def _poison_task(self, task: Task) -> None:
        """Blame attribution ruled this task poison: it failed on
        ``poison_k`` distinct healthy workers, so the input — not the
        pool — is at fault. Isolate it through the existing exhaustion
        escalation path (abandon + raise its category floor so HTA's
        planner prices its kin realistically) instead of letting it burn
        retries forever."""
        self.tasks_poisoned += 1
        self.escalations += 1
        floor = task.min_allocation or ResourceVector.zero()
        escalate_to = floor.max_with(task.footprint)
        task.min_allocation = escalate_to
        self.monitor.observe_exhaustion(task.category, escalate_to)
        self.journal.record_escalate(self.engine.now, task, escalate_to)
        if self.tracer.enabled:
            self.tracer.emit(
                "wq",
                "task.poisoned",
                task.category,
                task_id=task.id,
                attempts=task.attempts,
            )
        self._abandon(task)

    def _quarantine_worker(self, worker: Worker) -> None:
        """The health ledger condemned this worker: stop dispatching to
        it, evacuate its in-flight runs (deterministic id order, same as
        preemption evacuation), and schedule its probation re-entry."""
        if worker.quarantined:
            return
        worker.quarantined = True
        self.quarantines += 1
        self.journal.record_quarantine(self.engine.now, worker.name)
        if self.tracer.enabled:
            self.tracer.emit(
                "wq",
                "worker.quarantine",
                worker=worker.name,
            )
        self._refresh_worker_cache(worker)
        self.evacuate_worker(worker)
        probation_after = (
            self.health.config.probation_after_s if self.health else 0.0
        )
        if probation_after > 0:
            seq = self._quarantine_seq.get(worker.name, 0) + 1
            self._quarantine_seq[worker.name] = seq
            self.engine.call_in(
                probation_after,
                self._probation_due,
                worker,
                seq,
                self._incarnation,
            )

    def _probation_due(self, worker: Worker, seq: int, incarnation: int) -> None:
        """Quarantine aged out: re-admit the worker on probation. The
        ``seq`` token voids timers from superseded quarantines (the
        worker was re-quarantined, restarting the clock)."""
        if incarnation != self._incarnation or self.crashed:
            return
        if self._quarantine_seq.get(worker.name) != seq:
            return
        if not worker.quarantined:
            return
        if self.health is None or not self.health.begin_probation(worker.name):
            return
        worker.quarantined = False
        self.unquarantines += 1
        self.journal.record_unquarantine(self.engine.now, worker.name)
        if self.tracer.enabled:
            self.tracer.emit("wq", "worker.probation", worker=worker.name)
        if self.workers.get(worker.name) is worker:
            self._refresh_worker_cache(worker)
            self._schedule_dispatch()

    def _verification_failed(self, worker: Worker, task: Task) -> None:
        """Content-digest verification rejected a delivered result: the
        payload never reaches COMPLETE. The attempt is treated as a
        task-level failure — it burns an attempt, scores against the
        worker's health, and retries with the standard backoff — and is
        journalled as VERIFY_FAIL so replay carries the audit trail."""
        self.verify_fails += 1
        self.tasks_failed += 1
        runtime_s = (
            self.engine.now - task.start_time
            if task.start_time is not None
            else None
        )
        self.journal.record_verify_fail(self.engine.now, task, worker.name)
        if self.tracer.enabled:
            self.tracer.emit(
                "wq",
                "task.verify_fail",
                task.category,
                task_id=task.id,
                worker=worker.name,
                attempt=task.attempts,
            )
        if task.id in self._spec:
            # Satellite fix: a canonical result failing verification must
            # not leak its speculative clone — the clone still races, but
            # the books below reset the task to WAITING, so a later clone
            # completion would hit the stale-delivery guard and be
            # wasted. Cancel it and let the retry own the task.
            self.speculation_losses += 1
            self._cancel_speculation_for(task)
        self.running.pop(task.id, None)
        self._unclaimed.pop(task.id, None)
        self._dequeue(task)
        self._charge_waste(task)
        poisoned = self._health_failure(worker, task, runtime_s=runtime_s)
        task.payload_corrupt = False
        if poisoned:
            return
        task.attempts += 1
        if task.attempts > self.max_retries:
            self._abandon(task)
            return
        self.tasks_requeued += 1
        delay = self.retry_policy.backoff_s(task.attempts)
        task.reset_for_retry()
        if delay <= 0:
            self.journal.record_retry(self.engine.now, task)
            if self.tracer.enabled:
                self.tracer.emit(
                    "wq",
                    "task.retry",
                    task.category,
                    task_id=task.id,
                    reason="verify_fail",
                    attempt=task.attempts,
                )
            self._enqueue_front(task)
            self._schedule_dispatch()
        else:
            self._backoff_pending += 1
            self.engine.call_in(
                delay, self._requeue_after_backoff, task, self._incarnation
            )

    def _speculative_verify_failed(self, worker: Worker, clone: Task) -> None:
        """A speculative clone's result failed verification. Clones are
        never journalled, so no VERIFY_FAIL record — just drop the clone
        (the original is still in flight) and score the worker."""
        self.verify_fails += 1
        runtime_s = (
            self.engine.now - clone.start_time
            if clone.start_time is not None
            else None
        )
        if self.tracer.enabled:
            self.tracer.emit(
                "wq",
                "task.verify_fail",
                clone.category,
                task_id=clone.id,
                worker=worker.name,
                speculative=True,
            )
        self.running.pop(clone.id, None)
        self._charge_waste(clone)
        self._drop_speculation_entry(clone)
        clone.state = TaskState.FAILED
        self._health_failure(worker, clone, runtime_s=runtime_s)

    def _abandon(self, task: Task) -> None:
        self._cancel_speculation_for(task)
        self.journal.record_abandon(self.engine.now, task)
        if self.tracer.enabled:
            self.tracer.emit(
                "wq",
                "task.abandon",
                task.category,
                task_id=task.id,
                attempts=task.attempts,
            )
        self.abandoned.append(task)
        for fn in self._abandoned_callbacks:
            fn(task)

    def _billable_cores(self, task: Task) -> float:
        """The core count an attempt of ``task`` is billed at: its true
        footprint, capped by the allocation it actually ran under. The
        single accounting rule behind every waste charge — the historical
        Master recomputed it inline at each call site, and the copies had
        already begun to drift apart before they were folded here."""
        cores = task.footprint.cores
        if task.allocation is not None:
            cores = min(cores, task.allocation.cores)
        return cores

    def _charge_waste(self, task: Task) -> None:
        """Account execution time burned by an attempt that will never
        produce a result (killed, failed, or a losing duplicate)."""
        if task.start_time is None or task.state is TaskState.DONE:
            return
        # A resumed attempt only ever executes the un-banked remainder,
        # so that is all a kill can waste (identical to ``execute_s``
        # while progress is zero).
        elapsed = min(self.engine.now - task.start_time, task.remaining_execute_s())
        if elapsed <= 0:
            return
        self.wasted_core_s += elapsed * self._billable_cores(task)

    def _worker_running(self, task_id: int) -> Optional[Worker]:
        for worker in self.workers.values():
            if task_id in worker.runs:
                return worker
        return None

    # ------------------------------------------------------------- dispatch
    def _schedule_dispatch(self) -> None:
        if not self._dispatch_pending:
            self._dispatch_pending = True
            self.engine.call_soon(self._dispatch)

    def _running_elsewhere(self, task: Task, worker: Worker) -> bool:
        """Is another registered worker currently executing this task?"""
        return any(
            task.id in w.runs for w in self.workers.values() if w is not worker
        )

    def _dispatch(self) -> None:
        self._dispatch_pending = False
        if not self.queue or not self.available or not self._accepting:
            return
        # Higher priority first; FIFO (stable sort over queue order)
        # within a priority level. Requeued tasks sit at the queue front
        # already, keeping retry-first semantics among equal priorities.
        # When every queued priority is the default 0 (tracked by the
        # queue helpers) the sorted order IS the queue order, so the
        # per-pass sort is skipped.
        if self._queued_priority:
            ordered = sorted(self.queue, key=lambda t: -t.priority)
        else:
            ordered = self.queue
        # Within one synchronous pass worker capacity only shrinks, so a
        # task that found no seat proves the same for every later task
        # with the same placement inputs (category drives the estimate;
        # footprint/min_allocation/declared drive the sizing). Memoizing
        # the failures turns the tail of a saturated pass into O(1) per
        # task instead of a full candidate scan each.
        unplaceable: Set[Tuple] = set()
        placed: List[Task] = []
        for task in ordered:
            sig = (task.category, task.footprint, task.min_allocation, task.declared)
            if sig in unplaceable:
                continue
            if self._try_place(task):
                placed.append(task)
            else:
                unplaceable.add(sig)
        if placed:
            placed_ids = {t.id for t in placed}
            self.queue = [t for t in self.queue if t.id not in placed_ids]
            self._queued_ids -= placed_ids
            self._queue_rev += 1
            if self._queued_priority:
                self._queued_priority -= sum(1 for t in placed if t.priority)

    #: Sentinel distinguishing "capacity not sized yet" from "sized to
    #: None (task cannot fit this capacity at all)" in the dispatch memo.
    _UNSIZED = object()

    def _try_place(self, task: Task, exclude: Optional[Worker] = None) -> bool:
        best: Optional[Worker] = None
        best_alloc: Optional[ResourceVector] = None
        best_key = None
        estimator = self.estimator
        footprint = task.footprint
        min_allocation = task.min_allocation
        # The sized allocation depends on the task and the *capacity*, not
        # the worker; in the (typical) homogeneous fleet it is computed
        # once instead of once per candidate. None marks a capacity the
        # task can never fit.
        alloc_by_capacity: Dict[ResourceVector, Optional[ResourceVector]] = {}
        for worker in self._accepting.values():
            if worker is exclude or not worker.accepting:
                continue
            capacity = worker.capacity
            alloc = alloc_by_capacity.get(capacity, DispatchCore._UNSIZED)
            if alloc is DispatchCore._UNSIZED:
                alloc = estimator.allocation_for(task, capacity)
                if alloc is None:
                    alloc = capacity  # whole-worker (conservative/probe)
                else:
                    # Never allocate less than the task actually needs,
                    # and never more than the worker has in total.
                    alloc = alloc.max_with(footprint)
                    if min_allocation is not None:
                        # Escalated retry: grant the post-escalation
                        # size, capped at the whole worker so the task
                        # can still be placed somewhere.
                        alloc = (
                            alloc.max_with(min_allocation)
                            .min_with(capacity)
                            .max_with(footprint)
                        )
                    if not alloc.fits_in(capacity):
                        alloc = None
                alloc_by_capacity[capacity] = alloc
            if alloc is None:
                continue
            available = worker.available()
            if not alloc.fits_in(available):
                continue
            # Prefer cache hits; then best-fit by remaining cores. The
            # unique name tiebreak makes the winner independent of the
            # order the index is walked in.
            key = (worker.has_cached(task), -available.cores, worker.name)
            if best_key is None or key > best_key:
                best, best_alloc, best_key = worker, alloc, key
        if best is None or best_alloc is None:
            return False
        self.running[task.id] = task
        best.assign(task, best_alloc)
        if task.speculation_of is None:
            # Speculative copies are a master-local optimization; the
            # journal only tracks the canonical attempt. A dispatch
            # resuming from banked checkpoint progress journals
            # MIGRATE_IN so replay reconstructs the resumed progress.
            if task.progress_s > 0:
                self.journal.record_migrate_in(
                    self.engine.now, task, task.progress_s
                )
            else:
                self.journal.record_dispatch(self.engine.now, task)
        if self._h_queue_wait is not None and task.submit_time is not None:
            self._h_queue_wait.observe(
                self.engine.now - task.submit_time, category=task.category
            )
        if self.tracer.enabled:
            self.tracer.emit(
                "wq",
                "task.dispatch",
                task.category,
                task_id=task.id,
                worker=best.name,
                attempt=task.attempts,
                speculative=task.speculation_of is not None,
                cores=best_alloc.cores,
            )
        return True

    # ---------------------------------------------------------- speculation
    def _ensure_speculation_loop(self) -> None:
        """Arm the straggler scan while work is in flight; the loop stops
        itself when the queue drains so an idle master leaves the event
        queue empty (drivers rely on that to detect completion)."""
        if self.speculation is None or self._spec_loop is not None:
            return
        self._spec_loop = PeriodicTask(
            self.engine, self.speculation.check_period_s, self._speculation_scan
        )

    def _speculation_scan(self):
        cfg = self.speculation
        assert cfg is not None
        if not self.running and not self.queue and not self._backoff_pending:
            self._spec_loop = None
            return False  # drained; re-armed by the next submit
        if not self.available:
            return None
        if self.queue:
            # Real work is waiting; speculation only uses capacity that
            # would otherwise sit idle (Hadoop's backup-task rule).
            return None
        for task in list(self.running.values()):
            if len(self._spec) >= cfg.max_live:
                break
            if task.speculation_of is not None or task.id in self._spec:
                continue
            if task.state is not TaskState.RUNNING or task.start_time is None:
                continue
            stats = self.monitor.category(task.category)
            if stats is None or stats.count < cfg.min_samples:
                continue
            mean = stats.mean_execute_s
            if mean <= 0:
                continue
            elapsed = self.engine.now - task.start_time
            if elapsed < max(cfg.min_age_s, cfg.slowdown_factor * mean):
                continue
            self._launch_speculative(task, mean)
        return None

    def _launch_speculative(self, original: Task, predicted_runtime: float) -> bool:
        """Re-execute a straggler on another worker, first-completion-wins.
        The copy is sized like the original but runs for the category's
        expected time (a healthy re-execution)."""
        clone = Task(
            original.category,
            execute_s=predicted_runtime,
            footprint=original.footprint,
            declared=original.declared,
            cpu_fraction=original.cpu_fraction,
            inputs=original.inputs,
            outputs=original.outputs,
            command=f"speculative:{original.command}",
            tag="speculative",
            priority=original.priority,
        )
        clone.speculation_of = original.id
        clone.min_allocation = original.min_allocation
        clone.submit_time = original.submit_time
        if not self._try_place(clone, exclude=self._worker_running(original.id)):
            return False
        self._spec[original.id] = clone
        self._spec_origin[clone.id] = original
        self.tasks_speculated += 1
        return True

    def _drop_speculation_entry(self, clone: Task) -> None:
        """Forget a speculative copy that died; the original continues."""
        original = self._spec_origin.pop(clone.id, None)
        if original is not None:
            self._spec.pop(original.id, None)

    def _cancel_speculation_for(self, original: Task) -> None:
        """The original resolved (completed or abandoned): abort its copy."""
        clone = self._spec.pop(original.id, None)
        if clone is None:
            return
        self._spec_origin.pop(clone.id, None)
        self.running.pop(clone.id, None)
        host = self._worker_running(clone.id)
        if host is not None:
            self._charge_waste(clone)
            host.cancel_run(clone)
        clone.state = TaskState.FAILED

    # ----------------------------------------------------------- completion
    def task_finished(self, worker: Worker, task: Task) -> None:
        if not self.available:
            # The worker holds the outputs until the master returns.
            self._buffered_completions.append((worker, task))
            return
        self._finalize_completion(worker, task)

    def _finalize_completion(self, worker: Worker, task: Task) -> None:
        if worker.quarantined:
            # Results from a quarantined worker are untrusted wholesale —
            # including ones held across a partition and redelivered
            # after the quarantine landed. Reject, and put the canonical
            # attempt (if this was it) back in the queue; the quarantine
            # evacuation already requeued anything it could see, so this
            # branch only fires for deliveries the evacuation could not
            # reach (held results, in-flight returns).
            self.quarantined_rejected += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    "wq",
                    "task.quarantine_reject",
                    task.category,
                    task_id=task.id,
                    worker=worker.name,
                )
            if task.speculation_of is not None:
                self.running.pop(task.id, None)
                self._charge_waste(task)
                self._drop_speculation_entry(task)
                task.state = TaskState.FAILED
                return
            if (
                task.result is None
                and self.running.get(task.id) is task
                and not self._running_elsewhere(task, worker)
                and task.id not in worker.runs
            ):
                # Still the canonical attempt: requeue it, no attempt
                # burned (the worker is at fault, not the task).
                self.running.pop(task.id, None)
                self._charge_waste(task)
                self.tasks_requeued += 1
                task.reset_for_retry()
                self.journal.record_retry(self.engine.now, task)
                self._enqueue_front(task)
                self._schedule_dispatch()
            return
        if task.speculation_of is not None:
            self._finalize_speculative_win(worker, task)
            return
        key = (task.id, task.attempts)
        if task.result is not None or key in self._delivered:
            # Already accepted — a redelivery after recovery, or the
            # second half of a speculative pair. Idempotent drop.
            self._suppress_duplicate(task)
            return
        if task.dispatch_time is None or task.start_time is None:
            # A delivery for an attempt the recovered master no longer
            # recognises (a cold restart reset the task): drop it and
            # let the queued copy re-run.
            self.duplicate_results += 1
            self.running.pop(task.id, None)
            return
        if task.payload_corrupt:
            if self.verify:
                # Content-digest verification: a corrupted result never
                # reaches COMPLETE.
                self._verification_failed(worker, task)
                return
            # Verification off: the corruption sails through to COMPLETE
            # (the experiment's attribution-off baseline). Track it so
            # goodput can be split into clean and corrupted shares.
            self.corrupted_completes += 1
            self.corrupted_goodput_core_s += task.execute_s * task.footprint.cores
        # First-completion-wins: the original beat its speculative copy.
        if task.id in self._spec:
            self.speculation_losses += 1
            self._cancel_speculation_for(task)
        self.running.pop(task.id, None)
        self._unclaimed.pop(task.id, None)
        self._dequeue(task)
        task.state = TaskState.DONE
        task.finish_time = self.engine.now
        assert task.submit_time is not None
        assert task.dispatch_time is not None
        assert task.start_time is not None
        result = TaskResult(
            task_id=task.id,
            category=task.category,
            worker_name=worker.name,
            submit_time=task.submit_time,
            dispatch_time=task.dispatch_time,
            start_time=task.start_time,
            finish_time=task.finish_time,
            execute_seconds=task.execute_s,
            measured_resources=task.footprint,
            attempts=task.attempts,
        )
        task.result = result
        self._record_acceptance(task, result)
        self.done.append(task)
        self.monitor.record(result)
        for fn in self._callbacks:
            fn(task, result)
        self._schedule_dispatch()

    def _record_acceptance_telemetry(self, task: Task, result: TaskResult) -> None:
        if self._h_execute is not None:
            self._h_execute.observe(result.execute_seconds, category=result.category)
        if self.tracer.enabled:
            self.tracer.emit(
                "wq",
                "task.complete",
                result.category,
                task_id=task.id,
                worker=result.worker_name,
                attempts=result.attempts,
                execute_s=result.execute_seconds,
                # A speculative win completes the original with the
                # clone's timings and a bumped attempt count.
                speculative=result.attempts != task.attempts,
            )

    def _record_acceptance(self, task: Task, result: TaskResult) -> None:
        """Write-ahead bookkeeping for an accepted result: journal it,
        remember its (task_id, attempt) key, and stamp the first
        post-recovery completion (the recovery-latency marker)."""
        if self.health is not None:
            self.health.record_success(result.worker_name, task.id)
        self._delivered.add((task.id, result.attempts))
        self.journal.record_complete(self.engine.now, task, result)
        self._record_acceptance_telemetry(task, result)
        if (
            self.last_recovered_at is not None
            and self.first_completion_after_recovery_at is None
        ):
            self.first_completion_after_recovery_at = self.engine.now

    def _suppress_duplicate(self, task: Task) -> None:
        """A result arrived for a (task, attempt) the master has already
        accepted. Count it, release the bookkeeping, and drop it."""
        self.duplicate_results += 1
        self.running.pop(task.id, None)
        self._unclaimed.pop(task.id, None)
        if task.state is not TaskState.DONE:
            self.tasks_rerun += 1
            self._charge_waste(task)
            task.state = TaskState.DONE
        self._schedule_dispatch()

    def _finalize_speculative_win(self, worker: Worker, clone: Task) -> None:
        """A speculative copy finished first: cancel the straggling
        original wherever it is and complete *the original* with the
        copy's timings (the workflow manager only knows the original)."""
        if clone.payload_corrupt and self.verify:
            # A corrupt clone result must not win the race: drop the
            # clone and leave the original in flight.
            self._speculative_verify_failed(worker, clone)
            return
        self.running.pop(clone.id, None)
        original = self._spec_origin.pop(clone.id, None)
        if original is None:
            return  # already resolved (stale copy)
        self._spec.pop(original.id, None)
        self.speculation_wins += 1
        self.running.pop(original.id, None)
        self._dequeue(original)
        host = self._worker_running(original.id)
        if host is not None:
            self._charge_waste(original)
            host.cancel_run(original)
        clone.state = TaskState.DONE
        original.state = TaskState.DONE
        original.finish_time = self.engine.now
        assert original.submit_time is not None
        assert clone.dispatch_time is not None
        assert clone.start_time is not None
        result = TaskResult(
            task_id=original.id,
            category=original.category,
            worker_name=worker.name,
            submit_time=original.submit_time,
            dispatch_time=clone.dispatch_time,
            start_time=clone.start_time,
            finish_time=self.engine.now,
            execute_seconds=clone.execute_s,
            measured_resources=original.footprint,
            attempts=original.attempts + 1,
        )
        if clone.payload_corrupt:
            # Verification off: the fake completion wins the race and
            # its corrupted payload is accepted as the task's result.
            self.corrupted_completes += 1
            self.corrupted_goodput_core_s += (
                result.execute_seconds * result.measured_resources.cores
            )
        original.result = result
        self._unclaimed.pop(original.id, None)
        self._record_acceptance(original, result)
        self.done.append(original)
        self.monitor.record(result)
        for fn in self._callbacks:
            fn(original, result)
        self._schedule_dispatch()

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release periodic machinery (the speculation scan loop) so a
        finished run leaves the engine's event queue empty."""
        if self._spec_loop is not None:
            self._spec_loop.stop()
            self._spec_loop = None

    # ----------------------------------------------------------------- stats
    def stats(self) -> MasterStats:
        # O(1): the counters are maintained exactly by the worker status
        # hooks (see _refresh_worker_cache) instead of recounted over
        # every connected worker per accounting sample.
        return MasterStats(
            time=self.engine.now,
            waiting=len(self.queue),
            running=len(self.running),
            done=len(self.done),
            workers_connected=len(self.workers),
            workers_idle=self._n_idle,
            workers_busy=self._n_busy,
            workers_draining=self._n_draining,
        )

    def waiting_tasks(self) -> List[Task]:
        return list(self.queue)

    def running_tasks(self) -> List[Task]:
        return list(self.running.values())

    def connected_workers(self) -> List[Worker]:
        return list(self.workers.values())

    def idle_workers(self) -> List[Worker]:
        return [w for w in self.workers.values() if w.idle]

    @property
    def all_done(self) -> bool:
        return (
            not self.crashed
            and not self.queue
            and not self.running
            and self._backoff_pending == 0
            and not self._unclaimed
        )

    # ----------------------------------------------------------- accounting
    def goodput_core_s(self) -> float:
        """Core-seconds of completed, kept work (execution time only —
        the complement of :attr:`wasted_core_s`)."""
        return sum(
            t.result.execute_seconds * t.result.measured_resources.cores
            for t in self.done
            if t.result is not None
        )

    def cores_in_use(self) -> float:
        """RIU in cores: footprint cores of currently executing tasks."""
        return sum(w.cores_in_use() for w in self.workers.values())

    def cores_waiting(self) -> float:
        """RSH ingredient: cores desired by queued tasks (true footprints;
        the evaluation measures actual shortage, per §VI).

        Memoized against :attr:`_queue_rev`: metric samplers and the
        forecast scaler poll this between queue mutations, and the fold
        is O(queue). The recompute preserves queue order, so the cached
        float is bit-identical to the unmemoized sum.
        """
        rev, value = self._cores_waiting_cache
        if rev != self._queue_rev:
            value = sum(t.footprint.cores for t in self.queue)
            self._cores_waiting_cache = (self._queue_rev, value)
        return value

    def clean_goodput_core_s(self) -> float:
        """Goodput minus the corrupted share: completed work whose
        results actually verify. Equal to :meth:`goodput_core_s` under
        verification (a corrupted result never completes); strictly
        smaller when verification is off and corruption slips through."""
        return self.goodput_core_s() - self.corrupted_goodput_core_s

    def supplied_cores(self) -> float:
        """RS in cores: capacity of connected, accepting workers.
        Quarantined workers are excluded — their capacity is untrusted,
        and counting it would let HTA's estimator see supply the
        dispatcher refuses to use."""
        return sum(
            w.capacity.cores
            for w in self.workers.values()
            if w.state in (WorkerState.READY, WorkerState.DRAINING)
            and not w.quarantined
        )
