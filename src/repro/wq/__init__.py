"""A Work Queue-like master/worker job scheduler (simulated).

Mirrors the pieces of CCTools' Work Queue that the paper's evaluation
exercises:

* :mod:`~repro.wq.task` — tasks with declared/actual resources, category
  tags, and input/output file lists;
* :mod:`~repro.wq.link` — the master's egress network link with max-min
  fair sharing across concurrent transfers (the fig-4 bottleneck);
* :mod:`~repro.wq.worker` — workers that fetch inputs (with a per-worker
  cache for the shareable 1.4 GB BLAST input), run tasks concurrently
  within their resource capacity, and support graceful *drain* (finish
  running tasks, then exit — HTA's non-disruptive scale-down);
* :mod:`~repro.wq.dispatch` — the pure queue/run-table/retry state
  machine (:class:`DispatchCore`) behind the master's dispatch policy
  (declared resources → measured category estimate → conservative
  whole-worker), completion callbacks, live queue statistics for HTA;
* :mod:`~repro.wq.master` — the session/connection shell over the core:
  worker registration, partition liveness, outages, crash recovery;
* :mod:`~repro.wq.sharding` — the sharded data plane: a seeded
  :class:`TaskPartitioner` splitting a workflow across N masters and
  the :class:`Foreman` tier aggregating them into one logical view;
* :mod:`~repro.wq.monitor` — the resource monitor recording per-category
  runtime/consumption of completed tasks (paper ref. [25]);
* :mod:`~repro.wq.runtime` — glue binding workers to Kubernetes pods;
* :mod:`~repro.wq.estimator` — task-size policies used by the master.
"""

from repro.wq.task import FileSpec, Task, TaskState, TaskResult
from repro.wq.link import Link, Transfer
from repro.wq.journal import JournalRecord, ReplayedState, TransactionJournal
from repro.wq.migration import (
    CheckpointSpec,
    MigrationConfig,
    MigrationCoordinator,
)
from repro.wq.monitor import CategoryStats, ResourceMonitor
from repro.wq.estimator import (
    AllocationEstimator,
    ConservativeEstimator,
    DeclaredResourceEstimator,
    MonitorEstimator,
)
from repro.wq.worker import Worker, WorkerState
from repro.wq.dispatch import DispatchConfig, DispatchCore
from repro.wq.master import Master, MasterStats
from repro.wq.sharding import (
    FailoverConfig,
    FailoverCoordinator,
    Foreman,
    TaskPartitioner,
    merge_journals,
)
from repro.wq.runtime import WorkerPodRuntime
from repro.wq.factory import FactoryConfig, WorkerFactory

__all__ = [
    "FileSpec",
    "Task",
    "TaskState",
    "TaskResult",
    "Link",
    "Transfer",
    "JournalRecord",
    "ReplayedState",
    "TransactionJournal",
    "CheckpointSpec",
    "MigrationConfig",
    "MigrationCoordinator",
    "CategoryStats",
    "ResourceMonitor",
    "AllocationEstimator",
    "ConservativeEstimator",
    "DeclaredResourceEstimator",
    "MonitorEstimator",
    "Worker",
    "WorkerState",
    "DispatchConfig",
    "DispatchCore",
    "Master",
    "MasterStats",
    "FailoverConfig",
    "FailoverCoordinator",
    "Foreman",
    "TaskPartitioner",
    "merge_journals",
    "WorkerPodRuntime",
    "FactoryConfig",
    "WorkerFactory",
]
