"""Workers: fetch inputs, execute tasks concurrently, return outputs.

A worker owns a resource capacity (its pod's request) and runs any number
of tasks whose allocations fit simultaneously — "a worker may run
multiple jobs simultaneously, as long as the sum of their declared
resources does not exceed the machine's capacity" (§II-B). Cacheable
input files persist in the worker's cache across tasks.

Scale-down paths (the crux of §II-C):

* :meth:`drain` — graceful: accept no new work, finish running tasks,
  then exit; HTA always uses this;
* :meth:`kill` — the pod was deleted under the worker (HPA's scale-down
  does this): in-flight transfers are aborted and running tasks go back
  to the master's queue, losing their progress.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set

from repro.cluster.resources import ResourceVector
from repro.sim.engine import Engine, ScheduledEvent
from repro.wq.cache import WorkerCache
from repro.wq.link import Link, Transfer
from repro.wq.task import Task, TaskState

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.pod import Pod
    from repro.wq.master import Master


class WorkerState(enum.Enum):
    CONNECTING = "connecting"
    READY = "ready"
    DRAINING = "draining"
    STOPPED = "stopped"   # graceful exit (drain complete)
    KILLED = "killed"     # pod deleted underneath us


class _TaskRun:
    """Book-keeping for one task in flight on this worker."""

    __slots__ = ("task", "allocation", "transfers", "pending_inputs", "exec_event")

    def __init__(self, task: Task, allocation: ResourceVector):
        self.task = task
        self.allocation = allocation
        #: Transfers owned by this run (its own inputs + its outputs).
        self.transfers: List[Transfer] = []
        #: Input files (own or joined single-flight) still in flight.
        self.pending_inputs = 0
        self.exec_event: Optional[ScheduledEvent] = None


class Worker:
    """One Work Queue worker process (usually hosted in a pod)."""

    #: Seconds between the worker process starting and the master
    #: accepting its registration (TCP connect + handshake).
    CONNECT_LATENCY = 1.0
    #: Reconnect-poll backoff after the master connection drops (a
    #: crashed master pod): first retry after the base, then doubling up
    #: to the cap — `work_queue_worker` keeps polling the catalog the
    #: same way. The master's recovery grace window must exceed the cap.
    RECONNECT_BASE_S = 2.0
    RECONNECT_MAX_S = 30.0

    def __init__(
        self,
        engine: Engine,
        master: "Master",
        name: str,
        capacity: ResourceVector,
        *,
        pod: Optional["Pod"] = None,
        nic_bandwidth_mbps: Optional[float] = None,
        on_exit: Optional[Callable[["Worker"], None]] = None,
        connect_latency: Optional[float] = None,
    ) -> None:
        if not capacity.any_positive():
            raise ValueError(f"worker {name!r}: capacity must be positive, got {capacity}")
        self.engine = engine
        self.master = master
        self.name = name
        self.capacity = capacity
        self.pod = pod
        self.nic_bandwidth_mbps = nic_bandwidth_mbps
        self.on_exit = on_exit
        self.state = WorkerState.CONNECTING
        #: Set by the master's health ledger: an untrusted worker takes
        #: no new work and its result deliveries are rejected.
        self.quarantined = False
        #: Chaos-injected sickness (a :class:`~repro.wq.faults.BlackHoleProfile`):
        #: every task started here fast-fails or fast-fake-completes.
        self.black_hole = None
        #: LRU file cache bounded by the worker's disk capacity.
        self.cache = WorkerCache(capacity.disk_mb)
        #: Single-flight table: cacheable file name -> runs waiting for it.
        #: The first task to need a cacheable file fetches it once; later
        #: concurrent tasks join the in-flight transfer instead of
        #: duplicating it (Work Queue's per-worker file semantics).
        self._inflight_cacheable: Dict[str, List[_TaskRun]] = {}
        self.runs: Dict[int, _TaskRun] = {}
        #: Cached fold of the live runs' allocations plus the matching
        #: remainder. ``allocated()`` used to refold on every read and
        #: the master's best-fit scan reads it O(workers) times per
        #: dispatch pass, which made it the simulator's hottest
        #: function; instead it is recomputed once per runs-set
        #: mutation. The recompute keeps the original fold order so the
        #: cached floats are bit-identical to the on-demand values.
        self._allocated = ResourceVector.zero()
        self._available = (capacity - self._allocated).clamp_floor(0.0)
        self.tasks_completed = 0
        self.tasks_failed = 0
        #: True while the master connection is down (its pod crashed);
        #: running tasks continue and finished outputs are held locally.
        self._detached = False
        #: True while the network path to the master is partitioned: the
        #: master may be perfectly healthy, we just can't reach it. The
        #: worker behaves exactly as if detached (keep executing, hold
        #: results) but reconnect polls fail until :meth:`heal`.
        self._partitioned = False
        self._held_results: List[Task] = []
        #: Shipped checkpoints the partition kept from the master:
        #: (task, banked progress, lost seconds, migrate-out start) —
        #: re-delivered on reconnect exactly like held results.
        self._held_migrations: List[tuple] = []
        #: Tasks that died when the worker was killed while detached —
        #: there was no master to tell, so the ids are kept for the
        #: liveness expiry to requeue (see :meth:`unfinished_task_ids`).
        self._lost_detached_ids: Set[int] = set()
        self._reconnect_attempt = 0
        self.reconnects = 0
        self.connected_time: Optional[float] = None
        latency = self.CONNECT_LATENCY if connect_latency is None else connect_latency
        engine.call_in(latency, self._connect)

    # ------------------------------------------------------------ lifecycle
    def _connect(self) -> None:
        if self.state is not WorkerState.CONNECTING:
            return  # killed before the handshake finished
        if self._partitioned:
            # Can't reach the master yet; keep trying like a reconnect.
            self.engine.call_in(self.RECONNECT_BASE_S, self._connect)
            return
        self.state = WorkerState.READY
        self.connected_time = self.engine.now
        self.master.register_worker(self)

    # ------------------------------------------------------------ partitions
    @property
    def partitioned(self) -> bool:
        return self._partitioned

    def unfinished_task_ids(self) -> Set[int]:
        """Every task the master should still consider bound to this
        worker: live runs, locally-finished results not yet delivered,
        and anything that died in a kill while detached. The master's
        liveness expiry requeues exactly this set — ``runs`` alone
        misses held results and is empty after a kill."""
        ids: Set[int] = set(self.runs)
        ids.update(t.id for t in self._held_results)
        ids.update(t.id for t, _p, _l, _s in self._held_migrations)
        ids.update(self._lost_detached_ids)
        return ids

    def partition(self) -> None:
        """The network path to the master went dark (the master itself may
        be fine). Enter the detached regime: keep executing, hold
        finished results, poll for reconnection — polls fail until
        :meth:`heal` restores the link."""
        if self._partitioned or self.state in (
            WorkerState.STOPPED,
            WorkerState.KILLED,
        ):
            return
        self._partitioned = True
        self.master_lost()

    def heal(self) -> None:
        """The partition ended; the next reconnect poll will succeed."""
        self._partitioned = False

    def master_lost(self) -> None:
        """The master connection dropped (its pod crashed). Keep running
        what we have, hold finished outputs, and poll for the
        replacement with exponential backoff."""
        if self.state in (WorkerState.STOPPED, WorkerState.KILLED):
            return
        if self._detached:
            return
        self._detached = True
        # Models the master's side of the dropped connection: its dispatch
        # view stops offering this worker the moment the link dies (the
        # live ``accepting`` read did the same before the index existed).
        self.master.worker_status_changed(self)
        self._reconnect_attempt = 0
        self.engine.call_in(self.RECONNECT_BASE_S, self._try_reconnect)

    def _try_reconnect(self) -> None:
        if not self._detached or self.state in (
            WorkerState.STOPPED,
            WorkerState.KILLED,
        ):
            return
        if self.master.available and not self._partitioned:
            self._detached = False
            self.reconnects += 1
            self.master.worker_reconnected(self)
            held, self._held_results = self._held_results, []
            for task in held:
                self.master.task_finished(self, task)
            shipped, self._held_migrations = self._held_migrations, []
            for task, progress, lost_s, started_at in shipped:
                self.master.migration_arrived(
                    self, task, progress, lost_s, started_at
                )
            if self.state is WorkerState.DRAINING and not self.runs:
                self._stop()
            return
        self._reconnect_attempt += 1
        delay = min(
            self.RECONNECT_BASE_S * (2.0 ** self._reconnect_attempt),
            self.RECONNECT_MAX_S,
        )
        self.engine.call_in(delay, self._try_reconnect)

    def drain(self) -> None:
        """Stop accepting tasks; exit once running tasks complete."""
        if self.state in (WorkerState.STOPPED, WorkerState.KILLED):
            return
        if self.state is WorkerState.CONNECTING:
            # Never registered; just exit.
            self.state = WorkerState.STOPPED
            self._exited()
            return
        self.state = WorkerState.DRAINING
        self.master.worker_status_changed(self)
        if self._detached:
            # The master is unreachable (partition or crash): we cannot
            # unregister, and held results must not die with us. The
            # reconnect poll finishes the drain protocol — deliver held
            # outputs, then stop.
            return
        self.master.worker_draining(self)
        if not self.runs:
            self._stop()

    def kill(self) -> None:
        """Abrupt termination: abort transfers, lose running tasks."""
        if self.state in (WorkerState.STOPPED, WorkerState.KILLED):
            return
        was_registered = self.state in (WorkerState.READY, WorkerState.DRAINING)
        self.state = WorkerState.KILLED
        lost: List[Task] = []
        for run in list(self.runs.values()):
            for transfer in run.transfers:
                if not transfer.done:
                    self.master.link.cancel(transfer)
            if run.exec_event is not None:
                run.exec_event.cancel()
            run.task.state = TaskState.FAILED
            lost.append(run.task)
        self.runs.clear()
        self._runs_changed()
        self._inflight_cacheable.clear()
        if was_registered and not self._detached:
            self.master.worker_lost(self, lost)
        elif was_registered:
            # A detached worker has no master to tell. After a master
            # crash the recovered master's grace window requeues the
            # unclaimed tasks; after a partition the master is healthy
            # and its liveness expiry asks :meth:`unfinished_task_ids`,
            # so remember exactly what died here — in-flight runs and
            # held results whose outputs are now gone.
            self._lost_detached_ids = {t.id for t in lost}
            self._lost_detached_ids.update(t.id for t in self._held_results)
            # Shipped-but-undelivered checkpoints die with us too; the
            # liveness expiry requeues the tasks at their last progress
            # the master actually accepted.
            self._lost_detached_ids.update(
                t.id for t, _p, _l, _s in self._held_migrations
            )
        self._held_results.clear()
        self._held_migrations.clear()
        self._exited()

    def _stop(self) -> None:
        self.state = WorkerState.STOPPED
        self.master.unregister_worker(self)
        self._exited()

    def _exited(self) -> None:
        if self.on_exit is not None:
            self.on_exit(self)

    # ------------------------------------------------------------- capacity
    def _runs_changed(self) -> None:
        """The runs set mutated: refold the allocation cache and tell the
        master its dispatch-side caches for this worker are stale."""
        total = ResourceVector.zero()
        for run in self.runs.values():
            total = total + run.allocation
        self._allocated = total
        self._available = (self.capacity - total).clamp_floor(0.0)
        self.master.worker_status_changed(self)

    def allocated(self) -> ResourceVector:
        return self._allocated

    def available(self) -> ResourceVector:
        return self._available

    @property
    def idle(self) -> bool:
        return self.state is WorkerState.READY and not self.runs

    @property
    def accepting(self) -> bool:
        return (
            self.state is WorkerState.READY
            and not self._detached
            and not self.quarantined
        )

    def can_fit(self, allocation: ResourceVector) -> bool:
        return self.accepting and allocation.fits_in(self.available())

    def has_cached(self, task: Task) -> bool:
        """True iff every cacheable input of ``task`` is already here."""
        return all(f.name in self.cache for f in task.inputs if f.cacheable)

    # ------------------------------------------------------------ execution
    def assign(self, task: Task, allocation: ResourceVector) -> None:
        """Called by the master: start the fetch→execute→return pipeline."""
        if not self.can_fit(allocation):
            raise RuntimeError(
                f"worker {self.name}: cannot fit {allocation} "
                f"(available {self.available()})"
            )
        run = _TaskRun(task, allocation)
        self.runs[task.id] = run
        self._runs_changed()
        task.allocation = allocation
        task.dispatch_time = self.engine.now
        task.state = TaskState.FETCHING
        self._start_fetches(run)
        if run.pending_inputs == 0:
            self._begin_execution(run)

    def _start_fetches(self, run: _TaskRun) -> None:
        """Arrange delivery of every input file, single-flighting
        cacheable ones shared with concurrent tasks."""
        noncacheable_mb = 0.0
        for f in run.task.inputs:
            if f.name in self.cache:
                self.cache.touch(f.name, self.engine.now)
                continue
            if f.cacheable:
                waiters = self._inflight_cacheable.get(f.name)
                if waiters is not None:
                    waiters.append(run)  # join the in-flight fetch
                    run.pending_inputs += 1
                else:
                    self._inflight_cacheable[f.name] = [run]
                    run.pending_inputs += 1
                    t = self.master.link.start_transfer(
                        f"{self.name}:in:{f.name}",
                        f.size_mb,
                        rate_cap_mbps=self.nic_bandwidth_mbps,
                        on_complete=lambda _t, name=f.name, size=f.size_mb: (
                            self._cacheable_arrived(name, size)
                        ),
                    )
                    run.transfers.append(t)
            else:
                noncacheable_mb += f.size_mb
        if noncacheable_mb > 0:
            run.pending_inputs += 1
            t = self.master.link.start_transfer(
                f"{self.name}:in:{run.task.id}",
                noncacheable_mb,
                rate_cap_mbps=self.nic_bandwidth_mbps,
                on_complete=lambda _t, r=run: self._input_arrived(r),
            )
            run.transfers.append(t)

    def _cacheable_arrived(self, file_name: str, size_mb: float) -> None:
        self.cache.add(
            file_name, size_mb, self.engine.now, pinned=self._pinned_files()
        )
        waiters = self._inflight_cacheable.pop(file_name, [])
        for run in waiters:
            self._input_arrived(run)

    def _pinned_files(self) -> Set[str]:
        """Cacheable inputs of tasks currently on this worker: never
        evicted while those tasks might still need them."""
        return {
            f.name
            for run in self.runs.values()
            for f in run.task.inputs
            if f.cacheable
        }

    def _input_arrived(self, run: _TaskRun) -> None:
        if run.task.id not in self.runs:
            return  # killed while fetching
        run.pending_inputs -= 1
        if run.pending_inputs == 0:
            self._begin_execution(run)

    def _begin_execution(self, run: _TaskRun) -> None:
        task = run.task
        task.state = TaskState.RUNNING
        task.start_time = self.engine.now
        task.payload_corrupt = False
        run.transfers.clear()
        # Resume from banked checkpoint progress: only the remaining
        # execute-seconds run here (the full execute_s when progress is
        # zero, which keeps migration-free runs bit-identical).
        remaining = task.remaining_execute_s()
        bh = self.black_hole
        if bh is not None:
            # A black-hole node resolves every task in seconds: either a
            # fast failure or a fake completion whose payload can never
            # pass the master's content-digest verification. No fault
            # stream is consumed — the sickness is the node's, not the
            # task's, so arming it never perturbs the seeded sequences.
            delay = min(bh.latency_s, remaining)
            if bh.mode == "fast-fail":
                from repro.wq.faults import TaskFault

                fault = TaskFault(
                    kind="black-hole",
                    at_fraction=(delay / remaining) if remaining > 0 else 0.0,
                )
                run.exec_event = self.engine.call_in(
                    delay, self._execution_failed, run, fault
                )
            else:  # fast-fake
                task.payload_corrupt = True
                run.exec_event = self.engine.call_in(
                    delay, self._execution_done, run
                )
            return
        fault = self.master.draw_fault(task, run.allocation)
        if fault is not None:
            delay = max(0.0, fault.at_fraction * remaining)
            run.exec_event = self.engine.call_in(
                delay, self._execution_failed, run, fault
            )
            return
        # The attempt will complete; draw whether its payload is
        # silently corrupted in flight (zero-cost when value faults
        # are off — the model consumes no variate then).
        task.payload_corrupt = self.master.draw_result_corruption(task)
        run.exec_event = self.engine.call_in(remaining, self._execution_done, run)

    def _execution_failed(self, run: _TaskRun, fault) -> None:
        """The attempt died (nonzero exit or allocation enforcement)."""
        if run.task.id not in self.runs:
            return
        task = run.task
        run.exec_event = None
        del self.runs[task.id]
        self._runs_changed()
        task.state = TaskState.FAILED
        self.tasks_failed += 1
        if self._detached:
            # Nobody to report to; the recovered master's grace requeue
            # re-runs the task. Don't stop a draining worker yet — the
            # reconnect poll finishes the drain protocol.
            return
        self.master.task_failed(self, task, fault)
        if self.state is WorkerState.DRAINING and not self.runs:
            self._stop()

    def _execution_done(self, run: _TaskRun) -> None:
        if run.task.id not in self.runs:
            return
        task = run.task
        task.state = TaskState.RETURNING
        run.exec_event = None
        t = self.master.link.start_transfer(
            f"{self.name}:out:{task.id}",
            task.output_bytes_mb(),
            rate_cap_mbps=self.nic_bandwidth_mbps,
            on_complete=lambda _t, r=run: self._outputs_delivered(r),
        )
        run.transfers.append(t)

    # ------------------------------------------------------------ migration
    def migrate_out(self, task: Task) -> bool:
        """Checkpoint a running task and ship the snapshot to the master
        (pause → cut → ship → ``Master.migration_arrived``). Returns
        False when the task cannot migrate here: not on this worker, not
        executing yet (nothing to bank), or not checkpointable.

        The run keeps its seat (allocation) until the checkpoint is off
        the node; a kill mid-snapshot or mid-ship loses the cut and the
        task falls back to the plain worker-lost requeue at whatever
        progress the master last accepted."""
        run = self.runs.get(task.id)
        if run is None or task.state is not TaskState.RUNNING:
            return False
        spec = task.checkpoint
        if spec is None:
            return False
        started_at = self.engine.now
        elapsed = started_at - task.start_time
        banked = spec.banked_progress(elapsed)
        new_progress = min(task.execute_s, task.progress_s + banked)
        lost_s = max(0.0, elapsed - banked)
        if run.exec_event is not None:
            run.exec_event.cancel()
        task.state = TaskState.MIGRATING  # paused: burns no CPU
        run.exec_event = self.engine.call_in(
            spec.cost_s, self._checkpoint_cut, run, new_progress, lost_s, started_at
        )
        return True

    def _checkpoint_cut(
        self, run: _TaskRun, new_progress: float, lost_s: float, started_at: float
    ) -> None:
        """The snapshot is on local disk; ship it over the master link."""
        task = run.task
        if task.id not in self.runs:
            return  # killed or cancelled mid-snapshot
        run.exec_event = None
        assert task.checkpoint is not None
        # Draw whether this snapshot is damaged in cut or transit; the
        # master's digest check on arrival decides whether to resume
        # from it (consumes nothing while value faults are off).
        task.checkpoint_corrupt = self.master.draw_checkpoint_corruption(task)
        t = self.master.link.start_transfer(
            f"{self.name}:ckpt:{task.id}",
            task.checkpoint.size_mb,
            rate_cap_mbps=self.nic_bandwidth_mbps,
            on_complete=lambda _t, r=run: self._checkpoint_shipped(
                r, new_progress, lost_s, started_at
            ),
        )
        run.transfers.append(t)

    def _checkpoint_shipped(
        self, run: _TaskRun, new_progress: float, lost_s: float, started_at: float
    ) -> None:
        task = run.task
        if task.id not in self.runs:
            return
        del self.runs[task.id]
        self._runs_changed()
        if self._detached:
            # No master to deliver to; hold the checkpoint like a held
            # result and re-deliver on reconnect. The master's
            # at-most-once guard drops it if the task was requeued
            # meanwhile.
            self._held_migrations.append((task, new_progress, lost_s, started_at))
            return
        self.master.migration_arrived(self, task, new_progress, lost_s, started_at)
        if self.state is WorkerState.DRAINING and not self.runs:
            self._stop()

    def cancel_run(self, task: Task) -> bool:
        """Abort one task without touching the rest of the worker (the
        master cancels the losing copy of a speculative pair this way).
        Returns False if the task is not on this worker. The master is
        *not* notified — the caller owns the bookkeeping."""
        run = self.runs.pop(task.id, None)
        if run is None:
            return False
        self._runs_changed()
        if run.exec_event is not None:
            run.exec_event.cancel()
            run.exec_event = None
        # Drop out of any single-flight fetch we merely joined...
        for name, waiters in list(self._inflight_cacheable.items()):
            if run in waiters:
                waiters.remove(run)
            if not waiters:
                # Nobody is left waiting; forget the fetch (its transfer,
                # if this run owned it, is cancelled just below).
                del self._inflight_cacheable[name]
        # ...but keep cacheable fetches other live runs still wait on.
        keep = {f"{self.name}:in:{name}" for name in self._inflight_cacheable}
        for transfer in run.transfers:
            if not transfer.done and transfer.label not in keep:
                self.master.link.cancel(transfer)
        if self.state is WorkerState.DRAINING and not self.runs and not self._detached:
            self._stop()
        return True

    def _outputs_delivered(self, run: _TaskRun) -> None:
        if run.task.id not in self.runs:
            return
        task = run.task
        del self.runs[task.id]
        self._runs_changed()
        self.tasks_completed += 1
        if self._detached:
            # No master to report to; hold the outputs until reconnect.
            self._held_results.append(task)
            return
        self.master.task_finished(self, task)
        if self.state is WorkerState.DRAINING and not self.runs:
            self._stop()

    # --------------------------------------------------------------- gauges
    def cpu_usage(self) -> float:
        """Instantaneous CPU (cores) — what the pod reports to metrics."""
        return sum(run.task.current_cpu_cores() for run in self.runs.values())

    def cores_in_use(self) -> float:
        """Cores consumed by *executing* tasks (footprint, not allocation);
        the RIU ingredient for the evaluation accounting."""
        return sum(
            min(run.task.footprint.cores, run.allocation.cores)
            for run in self.runs.values()
            if run.task.state is TaskState.RUNNING
        )

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Worker {self.name!r} {self.state.value} tasks={len(self.runs)}>"
