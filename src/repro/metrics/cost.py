"""Pay-as-you-go cost accounting.

The paper's motivation is economic: "One of the public cloud platform's
critical characteristics is the pay-as-you-go pricing model" (§I) — the
bill is node-hours, so resource waste is literally money. This module
converts an experiment's node-count series into dollars and expresses
HTA's waste reduction as cost savings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover — avoid a metrics→experiments cycle
    from repro.experiments.runner import ExperimentResult

#: On-demand us-central1 hourly prices (2019-era, USD), matching the
#: paper's GCE instance generation. Keys are MachineType names.
DEFAULT_HOURLY_PRICES: Dict[str, float] = {
    "n1-standard-4": 0.1900,
    "n1-standard-4-reserved": 0.1900,  # same VM; reservation is internal
    "gke-small-3cpu": 0.1420,
    "gke-3cpu-12gb": 0.1420,
}

#: Preemptible prices per pool name (GCE sold preemptible n1-standard-4
#: at a flat ~79% discount in the same era). Keys are pool names, the
#: second axis of the price lookup: the same machine shape bills
#: differently depending on which pool it came from.
DEFAULT_POOL_PRICES: Dict[str, float] = {
    "spot": 0.0400,
}


@dataclass(frozen=True, slots=True)
class CostBreakdown:
    """Dollars for one experiment run."""

    node_hours: float
    hourly_price: float

    @property
    def total_usd(self) -> float:
        return self.node_hours * self.hourly_price

    def __str__(self) -> str:
        return f"${self.total_usd:.2f} ({self.node_hours:.2f} node-hours)"


@dataclass(frozen=True, slots=True)
class MixedCostBreakdown:
    """Dollars for a run on mixed on-demand + spot pools."""

    on_demand: CostBreakdown
    spot: CostBreakdown

    @property
    def total_usd(self) -> float:
        return self.on_demand.total_usd + self.spot.total_usd

    @property
    def node_hours(self) -> float:
        return self.on_demand.node_hours + self.spot.node_hours

    def __str__(self) -> str:
        return (
            f"${self.total_usd:.2f} "
            f"({self.on_demand.node_hours:.2f} on-demand + "
            f"{self.spot.node_hours:.2f} spot node-hours)"
        )


class CostModel:
    """Prices an experiment's node usage."""

    def __init__(
        self,
        hourly_prices: Mapping[str, float] = DEFAULT_HOURLY_PRICES,
        *,
        default_hourly_price: Optional[float] = None,
        pool_prices: Mapping[str, float] = DEFAULT_POOL_PRICES,
    ):
        for name, price in hourly_prices.items():
            if price < 0:
                raise ValueError(f"negative price for {name!r}")
        for name, price in pool_prices.items():
            if price < 0:
                raise ValueError(f"negative price for pool {name!r}")
        if default_hourly_price is not None and default_hourly_price < 0:
            raise ValueError("negative default_hourly_price")
        self.hourly_prices = dict(hourly_prices)
        #: Pool-name → hourly price overrides: a node billed against a
        #: named pool (e.g. ``"spot"``) uses the pool's rate regardless
        #: of machine type.
        self.pool_prices = dict(pool_prices)
        self.default_hourly_price = default_hourly_price

    def price_for(self, machine_type_name: str, *, pool: Optional[str] = None) -> float:
        if pool is not None:
            try:
                return self.pool_prices[pool]
            except KeyError:
                raise KeyError(
                    f"no price for pool {pool!r}; known pools: "
                    f"{sorted(self.pool_prices)}"
                ) from None
        try:
            return self.hourly_prices[machine_type_name]
        except KeyError:
            if self.default_hourly_price is not None:
                return self.default_hourly_price
            raise KeyError(
                f"no price for machine type {machine_type_name!r}; "
                f"known: {sorted(self.hourly_prices)} "
                f"(set default_hourly_price for a catch-all rate)"
            ) from None

    def spot_discount(self, machine_type_name: str, *, pool: str = "spot") -> float:
        """Fraction saved per node-hour by buying from ``pool`` instead
        of on-demand (0 when spot is not actually cheaper)."""
        on_demand = self.price_for(machine_type_name)
        if on_demand <= 0:
            return 0.0
        return max(0.0, 1.0 - self.price_for(machine_type_name, pool=pool) / on_demand)

    def cost_of(
        self, result: "ExperimentResult", machine_type_name: str
    ) -> CostBreakdown:
        """Integrate the run's node-count series into node-hours × price.

        Uses the accountant's exact step series, so partial-lifetime
        nodes (provisioned mid-run, reclaimed before the end) are billed
        for precisely the time they existed.
        """
        t0, t1 = result.accountant.window()
        node_seconds = result.series("nodes").integrate(t0, t1)
        return CostBreakdown(
            node_hours=node_seconds / 3600.0,
            hourly_price=self.price_for(machine_type_name),
        )

    def cost_of_mixed(
        self,
        result: "ExperimentResult",
        machine_type_name: str,
        *,
        pool: str = "spot",
        spot_series: str = "nodes_spot",
    ) -> MixedCostBreakdown:
        """Price a run whose cluster mixed on-demand and spot nodes.

        The accountant's ``nodes`` series counts every ready node and
        ``nodes_spot`` the preemptible subset; the difference bills at
        the on-demand rate, the subset at the pool's spot rate.
        """
        t0, t1 = result.accountant.window()
        total_s = result.series("nodes").integrate(t0, t1)
        spot_s = result.series(spot_series).integrate(t0, t1)
        spot_s = min(spot_s, total_s)
        return MixedCostBreakdown(
            on_demand=CostBreakdown(
                node_hours=(total_s - spot_s) / 3600.0,
                hourly_price=self.price_for(machine_type_name),
            ),
            spot=CostBreakdown(
                node_hours=spot_s / 3600.0,
                hourly_price=self.price_for(machine_type_name, pool=pool),
            ),
        )

    def savings(
        self,
        cheaper: "ExperimentResult",
        baseline: "ExperimentResult",
        machine_type_name: str,
    ) -> float:
        """Fractional cost saved by ``cheaper`` relative to ``baseline``."""
        a = self.cost_of(cheaper, machine_type_name).total_usd
        b = self.cost_of(baseline, machine_type_name).total_usd
        if b <= 0:
            return 0.0
        return 1.0 - a / b
