"""Evaluation metrics: the paper's resource-relationship accounting.

§IV-B defines five quantities — Resource In-Use (RIU), Resource Shortage
(RSH), Resource Demand (RD = RIU + RSH), Resource Supply (RS), and
Resource Waste (RW = RS − RIU) — and the evaluation reports their
integrals over the workload runtime ("accumulated waste/shortage",
core×seconds). :class:`~repro.metrics.accounting.ResourceAccountant`
samples these as exact step series and computes the integrals; summaries
feed the fig 10c / fig 11c tables.
"""

from repro.metrics.accounting import AccountingSummary, ResourceAccountant
from repro.metrics.summary import comparison_factors, format_summary_table
from repro.metrics.cost import CostBreakdown, CostModel, DEFAULT_HOURLY_PRICES
from repro.metrics.export import (
    export_series_csv,
    export_summary_json,
    series_rows,
    summary_dict,
)
from repro.metrics.recovery import RecoverySummary, format_recovery_table
from repro.metrics.resilience import ResilienceSummary, format_resilience_table

__all__ = [
    "RecoverySummary",
    "format_recovery_table",
    "ResilienceSummary",
    "format_resilience_table",
    "ResourceAccountant",
    "AccountingSummary",
    "comparison_factors",
    "format_summary_table",
    "CostBreakdown",
    "CostModel",
    "DEFAULT_HOURLY_PRICES",
    "export_series_csv",
    "export_summary_json",
    "series_rows",
    "summary_dict",
]
