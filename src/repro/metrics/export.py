"""Export experiment traces for external plotting/analysis.

Library consumers who want real figures (matplotlib, gnuplot, a
spreadsheet) need the raw series. This module dumps an
:class:`~repro.experiments.runner.ExperimentResult`'s step series to CSV
(uniform resampling grid) and its summary/extras to JSON.
"""

from __future__ import annotations

import csv
import json
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.runner import ExperimentResult

DEFAULT_SERIES = ("supply", "in_use", "shortage", "waste", "demand", "nodes")


def series_rows(
    result: "ExperimentResult",
    series_names: Sequence[str] = DEFAULT_SERIES,
    *,
    dt: float = 10.0,
) -> List[Dict[str, float]]:
    """Resample the named series onto a shared grid of ``dt`` seconds."""
    if dt <= 0:
        raise ValueError("dt must be positive")
    t0, t1 = result.accountant.window()
    series = {name: result.series(name) for name in series_names}
    rows: List[Dict[str, float]] = []
    t = t0
    while True:
        row: Dict[str, float] = {"time_s": round(t - t0, 6)}
        for name, s in series.items():
            row[name] = s.value_at(t)
        rows.append(row)
        if t >= t1:
            break
        t = min(t + dt, t1)
    return rows


def export_series_csv(
    result: "ExperimentResult",
    path: str,
    series_names: Sequence[str] = DEFAULT_SERIES,
    *,
    dt: float = 10.0,
) -> int:
    """Write the resampled series to ``path``; returns the row count."""
    rows = series_rows(result, series_names, dt=dt)
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)
    return len(rows)


def summary_dict(result: "ExperimentResult") -> Dict[str, object]:
    """A JSON-serializable record of the run's headline numbers."""
    a = result.accounting
    return {
        "name": result.name,
        "makespan_s": result.makespan_s,
        "runtime_s": a.runtime_s,
        "accumulated_waste_core_s": a.accumulated_waste_core_s,
        "accumulated_shortage_core_s": a.accumulated_shortage_core_s,
        "utilization": a.utilization,
        "mean_supply_cores": a.mean_supply_cores,
        "peak_supply_cores": a.peak_supply_cores,
        "tasks_total": result.tasks_total,
        "tasks_completed": result.tasks_completed,
        "tasks_requeued": result.tasks_requeued,
        "nodes_peak": result.nodes_peak,
        "workers_started": result.workers_started,
        "extras": dict(result.extras),
    }


def export_summary_json(result: "ExperimentResult", path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(summary_dict(result), fh, indent=2, sort_keys=True)
        fh.write("\n")
