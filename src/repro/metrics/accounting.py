"""RIU / RSH / RD / RS / RW accounting over a running experiment.

The accountant polls a set of gauges every ``period`` seconds (and on
demand), building step series of:

* ``supply``   (RS)  — cores of connected, accepting workers;
* ``in_use``   (RIU) — footprint cores of executing tasks;
* ``shortage`` (RSH) — footprint cores of ready-but-waiting tasks;
* ``waste``    (RW)  — ``max(0, supply − in_use)``;
* ``demand``   (RD)  — ``in_use + shortage``;
* ``nodes``    — cluster nodes (fig 2's cluster-size series).

Shortage uses tasks' *true* footprints: the evaluation measures actual
shortage, independent of what any estimator believed (§VI). Integrals
(core×s) are exact over the recorded step functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.sim.engine import Engine
from repro.sim.tracing import Sampler, StepSeries

Gauge = Callable[[], float]


@dataclass(frozen=True, slots=True)
class AccountingSummary:
    """The fig 10c / fig 11c row for one experiment."""

    runtime_s: float
    accumulated_waste_core_s: float
    accumulated_shortage_core_s: float
    mean_supply_cores: float
    mean_in_use_cores: float
    peak_supply_cores: float
    peak_shortage_cores: float

    @property
    def utilization(self) -> float:
        """Time-averaged RIU / RS (0..1); the paper's CPU-usage numbers."""
        if self.mean_supply_cores <= 0:
            return 0.0
        return self.mean_in_use_cores / self.mean_supply_cores

    def row(self) -> Dict[str, float]:
        return {
            "runtime_s": self.runtime_s,
            "waste_core_s": self.accumulated_waste_core_s,
            "shortage_core_s": self.accumulated_shortage_core_s,
            "utilization": self.utilization,
        }


class ResourceAccountant:
    """Samples the five resource series for one experiment run."""

    def __init__(
        self,
        engine: Engine,
        *,
        supply: Gauge,
        in_use: Gauge,
        shortage: Gauge,
        nodes: Optional[Gauge] = None,
        period: float = 1.0,
    ) -> None:
        self.engine = engine
        self._supply = supply
        self._in_use = in_use
        self._shortage = shortage
        self._nodes = nodes
        self.sampler = Sampler(engine, period)
        self.sampler.add_gauge("supply", supply)
        self.sampler.add_gauge("in_use", in_use)
        self.sampler.add_gauge("shortage", shortage)
        self.sampler.add_gauge("waste", lambda: max(0.0, supply() - in_use()))
        self.sampler.add_gauge("demand", lambda: in_use() + shortage())
        if nodes is not None:
            self.sampler.add_gauge("nodes", nodes)
        self.start_time: Optional[float] = None
        self.stop_time: Optional[float] = None

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        self.start_time = self.engine.now
        self.sampler.start()

    def stop(self) -> None:
        self.stop_time = self.engine.now
        self.sampler.sample_now()
        self.sampler.stop()

    # ---------------------------------------------------------------- reads
    def series(self, name: str) -> StepSeries:
        return self.sampler.series[name]

    def window(self) -> tuple[float, float]:
        t0 = self.start_time if self.start_time is not None else 0.0
        t1 = self.stop_time if self.stop_time is not None else self.engine.now
        return t0, t1

    def accumulated(self, name: str) -> float:
        t0, t1 = self.window()
        return self.series(name).integrate(t0, t1)

    def summarize(self) -> AccountingSummary:
        t0, t1 = self.window()
        runtime = t1 - t0
        supply = self.series("supply")
        return AccountingSummary(
            runtime_s=runtime,
            accumulated_waste_core_s=self.accumulated("waste"),
            accumulated_shortage_core_s=self.accumulated("shortage"),
            mean_supply_cores=supply.mean(t0, t1),
            mean_in_use_cores=self.series("in_use").mean(t0, t1),
            peak_supply_cores=supply.maximum(t0, t1),
            peak_shortage_cores=self.series("shortage").maximum(t0, t1),
        )
