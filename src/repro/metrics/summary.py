"""Tabular rendering and paper-vs-measured comparison helpers.

The experiment harnesses print fig-10c/11c-style tables with these
functions; the same formatting is reused by EXPERIMENTS.md generation and
the example scripts, so every surface shows identical numbers.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from repro.metrics.accounting import AccountingSummary


def format_summary_table(
    rows: Mapping[str, AccountingSummary],
    *,
    title: str = "Performance Summary",
) -> str:
    """Render the paper's summary-table layout (runtime / waste /
    shortage / utilization) for a set of named autoscaler runs."""
    header = (
        f"{'Resource Autoscaler':<22} {'Runtime (s)':>12} "
        f"{'Waste (core*s)':>16} {'Shortage (core*s)':>18} {'CPU Util':>9}"
    )
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for name, s in rows.items():
        lines.append(
            f"{name:<22} {s.runtime_s:>12.0f} "
            f"{s.accumulated_waste_core_s:>16.0f} "
            f"{s.accumulated_shortage_core_s:>18.0f} "
            f"{s.utilization:>8.1%}"
        )
    return "\n".join(lines)


def comparison_factors(
    hta: AccountingSummary, baseline: AccountingSummary
) -> Dict[str, float]:
    """The paper's headline ratios, HTA relative to a baseline.

    * ``waste_reduction`` — baseline waste / HTA waste (paper: 5.6×
      vs HPA-20 on BLAST);
    * ``runtime_increase`` — HTA runtime / baseline runtime − 1
      (paper: ~12.5-16.6% on BLAST);
    * ``speedup`` — baseline runtime / HTA runtime (paper: up to 3.66×
      on the I/O-bound workload).
    """

    def ratio(a: float, b: float) -> float:
        return a / b if b > 0 else float("inf")

    return {
        "waste_reduction": ratio(
            baseline.accumulated_waste_core_s, hta.accumulated_waste_core_s
        ),
        "runtime_increase": ratio(hta.runtime_s, baseline.runtime_s) - 1.0,
        "speedup": ratio(baseline.runtime_s, hta.runtime_s),
        "shortage_ratio": ratio(
            hta.accumulated_shortage_core_s, baseline.accumulated_shortage_core_s
        ),
    }


def format_series_table(
    times: Sequence[float],
    columns: Mapping[str, Sequence[float]],
    *,
    max_rows: int = 24,
    title: Optional[str] = None,
) -> str:
    """Render time series as aligned columns, downsampled to ``max_rows``
    (the textual stand-in for the paper's supply/demand plots)."""
    names = list(columns)
    n = len(times)
    if any(len(columns[c]) != n for c in names):
        raise ValueError("all columns must have the same length as times")
    stride = max(1, n // max_rows)
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join([f"{'t(s)':>8}"] + [f"{c:>12}" for c in names]))
    for i in range(0, n, stride):
        row = [f"{times[i]:>8.0f}"] + [f"{columns[c][i]:>12.1f}" for c in names]
        lines.append("  ".join(row))
    return "\n".join(lines)
