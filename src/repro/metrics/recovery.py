"""Recovery metrics: what a master crash and an API outage cost.

The resilience module (:mod:`repro.metrics.resilience`) measures *data
plane* faults — task failures, node crashes, provisioning stalls. This
module measures *control plane* faults: the Work Queue master dying
mid-run and the Kubernetes API server going dark. The headline numbers:

* **re-run work** — completed tasks executed a second time because the
  restarted master forgot them (zero under journal replay, the whole
  completed prefix under a cold restart);
* **recovery latency** — crash to first accepted completion after the
  master comes back (reconnect + adoption + dispatch latency);
* **makespan degradation** — fractional slowdown vs the fault-free twin
  (same seed, same workload, faults off).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence


@dataclass(frozen=True, slots=True)
class RecoverySummary:
    """One recovery strategy's behaviour under a control-plane fault."""

    strategy: str
    #: Makespan of the faulty run and its fault-free twin.
    makespan_s: float
    baseline_makespan_s: float
    #: Completed tasks executed again after the crash (journal replay
    #: keeps this at zero; a cold restart re-runs the completed prefix).
    tasks_rerun: int
    #: Results delivered more than once and suppressed idempotently.
    duplicate_results: int
    #: Crash → first accepted completion after recovery, in seconds.
    recovery_latency_s: float
    master_crashes: int
    api_outages: int
    dropped_watch_events: int
    #: Operator cycles spent in degraded mode (scale-down frozen).
    degraded_cycles: int
    scale_downs_frozen: int
    informer_resyncs: int
    tasks_completed: int
    tasks_total: int
    wasted_core_s: float

    @property
    def makespan_degradation(self) -> float:
        """Fractional slowdown vs the fault-free twin (0.0 = unharmed)."""
        if self.baseline_makespan_s <= 0:
            return 0.0
        return self.makespan_s / self.baseline_makespan_s - 1.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "makespan_s": self.makespan_s,
            "baseline_makespan_s": self.baseline_makespan_s,
            "makespan_degradation": self.makespan_degradation,
            "tasks_rerun": float(self.tasks_rerun),
            "duplicate_results": float(self.duplicate_results),
            "recovery_latency_s": self.recovery_latency_s,
            "master_crashes": float(self.master_crashes),
            "api_outages": float(self.api_outages),
            "dropped_watch_events": float(self.dropped_watch_events),
            "degraded_cycles": float(self.degraded_cycles),
            "scale_downs_frozen": float(self.scale_downs_frozen),
            "informer_resyncs": float(self.informer_resyncs),
            "tasks_completed": float(self.tasks_completed),
            "tasks_total": float(self.tasks_total),
            "wasted_core_s": self.wasted_core_s,
        }


def format_recovery_table(
    summaries: Sequence[RecoverySummary],
    *,
    title: str = "Master crash + API outage recovery",
) -> str:
    """Fixed-width table, one row per recovery strategy."""
    header = (
        f"{'strategy':<16} {'makespan':>9} {'degrade':>8} {'rerun':>6} "
        f"{'dupes':>6} {'recover':>8} {'degr.cyc':>8} {'resyncs':>8}"
    )
    lines = [title, header, "-" * len(header)]
    for s in summaries:
        lines.append(
            f"{s.strategy:<16} {s.makespan_s:>8.0f}s {s.makespan_degradation:>7.1%} "
            f"{s.tasks_rerun:>6d} {s.duplicate_results:>6d} "
            f"{s.recovery_latency_s:>7.0f}s {s.degraded_cycles:>8d} "
            f"{s.informer_resyncs:>8d}"
        )
    return "\n".join(lines)
