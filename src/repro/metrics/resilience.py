"""Resilience metrics: goodput, waste, and fault-induced degradation.

The paper's accounting (§IV-B) assumes every executed core-second is
useful. Under injected faults that stops being true: failed attempts,
killed stragglers, and losing speculative copies all burn supply without
producing results. This module splits executed work into **goodput**
(core×seconds of completed tasks' final attempts) and **wasted**
core×seconds (everything else charged by the master), and relates a
faulty run back to its fault-free twin through **makespan degradation**
— the fractional slowdown attributable to the fault profile, the
headline number of the resilience benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence


@dataclass(frozen=True, slots=True)
class ResilienceSummary:
    """One policy's behaviour under a fault profile, vs its fault-free twin."""

    policy: str
    #: Makespan of the faulty run and its fault-free twin (same seed,
    #: same workload, faults off).
    makespan_s: float
    baseline_makespan_s: float
    #: Core x seconds of completed tasks' winning attempts.
    goodput_core_s: float
    #: Core x seconds burned on failed / killed / losing attempts.
    wasted_core_s: float
    tasks_completed: int
    tasks_total: int
    tasks_failed: int
    tasks_exhausted: int
    escalations: int
    tasks_speculated: int
    speculation_wins: int
    tasks_abandoned: int
    nodes_killed: int
    boot_failures: int

    @property
    def makespan_degradation(self) -> float:
        """Fractional slowdown vs the fault-free twin (0.0 = unharmed)."""
        if self.baseline_makespan_s <= 0:
            return 0.0
        return self.makespan_s / self.baseline_makespan_s - 1.0

    @property
    def goodput_fraction(self) -> float:
        """Share of executed core x seconds that produced results."""
        executed = self.goodput_core_s + self.wasted_core_s
        if executed <= 0:
            return 1.0
        return self.goodput_core_s / executed

    def as_dict(self) -> Dict[str, float]:
        return {
            "makespan_s": self.makespan_s,
            "baseline_makespan_s": self.baseline_makespan_s,
            "makespan_degradation": self.makespan_degradation,
            "goodput_core_s": self.goodput_core_s,
            "wasted_core_s": self.wasted_core_s,
            "goodput_fraction": self.goodput_fraction,
            "tasks_completed": float(self.tasks_completed),
            "tasks_total": float(self.tasks_total),
            "tasks_failed": float(self.tasks_failed),
            "tasks_exhausted": float(self.tasks_exhausted),
            "escalations": float(self.escalations),
            "tasks_speculated": float(self.tasks_speculated),
            "speculation_wins": float(self.speculation_wins),
            "tasks_abandoned": float(self.tasks_abandoned),
            "nodes_killed": float(self.nodes_killed),
            "boot_failures": float(self.boot_failures),
        }


def format_resilience_table(
    summaries: Sequence[ResilienceSummary],
    *,
    title: str = "Resilience under injected faults",
) -> str:
    """Fixed-width table, one row per policy."""
    header = (
        f"{'policy':<12} {'makespan':>9} {'degrade':>8} {'goodput':>10} "
        f"{'wasted':>9} {'good%':>6} {'failed':>6} {'abandoned':>9}"
    )
    lines = [title, header, "-" * len(header)]
    for s in summaries:
        lines.append(
            f"{s.policy:<12} {s.makespan_s:>8.0f}s {s.makespan_degradation:>7.1%} "
            f"{s.goodput_core_s:>10.0f} {s.wasted_core_s:>9.0f} "
            f"{s.goodput_fraction:>6.1%} {s.tasks_failed:>6d} {s.tasks_abandoned:>9d}"
        )
    return "\n".join(lines)
