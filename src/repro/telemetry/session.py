"""Per-run telemetry wiring: config, session, and the multi-run sink.

:class:`TelemetryConfig` is the single knob an experiment passes (on the
:class:`~repro.experiments.runner.ExperimentSpec`); the runner turns it
into a :class:`TelemetrySession` — one tracer plus one metrics registry
bound to the run's engine clock — and threads those two handles through
every layer of the stack. Telemetry is **off by default**: a disabled
session hands out :data:`~repro.telemetry.events.NULL_TRACER` so the
instrumented hot paths cost one early-returning call.

:class:`TraceSink` aggregates several runs (the CLI's ``--trace-out``
drives one figure = many runs) and writes a single combined file —
JSONL when the path ends in ``.jsonl``, Chrome trace JSON otherwise.
A module-level default lets ``python -m repro.experiments`` arm tracing
without threading flags through every figure harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.telemetry.events import NULL_TRACER, TraceEvent, Tracer
from repro.telemetry.exporters import write_chrome_trace, write_events_jsonl
from repro.telemetry.metrics import MetricsRegistry


@dataclass(frozen=True, slots=True)
class TelemetryConfig:
    """What a run should record.

    ``maxlen`` bounds the tracer's event buffer (ring semantics, oldest
    dropped); ``None`` keeps every event. ``trace_out`` exports the
    run's events on completion (suffix selects the format).
    """

    enabled: bool = False
    maxlen: Optional[int] = None
    trace_out: Optional[str] = None


class TelemetrySession:
    """One run's tracer + metrics registry, bound to a clock."""

    def __init__(
        self, clock: Callable[[], float], config: Optional[TelemetryConfig] = None
    ) -> None:
        self.config = config if config is not None else TelemetryConfig()
        self.tracer = (
            Tracer(clock, maxlen=self.config.maxlen)
            if self.config.enabled
            else NULL_TRACER
        )
        #: Always real (instruments are cheap dicts): registry-backed
        #: counters in the cluster layer need a home even when tracing
        #: is off, and a per-run registry keeps runs isolated.
        self.metrics = MetricsRegistry()

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    def export(self, run_name: str) -> Optional[str]:
        """Write this run's trace to ``config.trace_out`` (if set).

        Returns the path written, or ``None`` when no export was asked
        for or tracing is disabled.
        """
        path = self.config.trace_out
        if path is None or not self.enabled:
            return None
        _write_trace(path, [(run_name, self.tracer.events)])
        return path


class TraceSink:
    """Collects (run name, events) pairs and writes one combined file."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.runs: List[Tuple[str, List[TraceEvent]]] = []

    def record(self, run_name: str, events: Sequence[TraceEvent]) -> None:
        self.runs.append((run_name, list(events)))

    @property
    def event_count(self) -> int:
        return sum(len(evts) for _, evts in self.runs)

    def flush(self) -> str:
        """Write everything recorded so far; returns the path."""
        _write_trace(self.path, self.runs)
        return self.path


def _write_trace(path: str, runs: Sequence[Tuple[str, Sequence[TraceEvent]]]) -> None:
    if str(path).endswith(".jsonl"):
        with open(path, "w", encoding="utf-8") as fp:
            for run_name, events in runs:
                write_events_jsonl(events, fp, run=run_name)
    else:
        write_chrome_trace(runs, path)


# ------------------------------------------------- ambient default (CLI)
_default_config: Optional[TelemetryConfig] = None
_default_sink: Optional[TraceSink] = None


def set_default_telemetry(
    config: Optional[TelemetryConfig], sink: Optional[TraceSink] = None
) -> None:
    """Install a process-wide default telemetry config (the CLI's
    ``--trace-out`` path). ``run_experiment`` consults it only when the
    spec does not carry its own :class:`TelemetryConfig`."""
    global _default_config, _default_sink
    _default_config = config
    _default_sink = sink


def default_telemetry() -> Optional[TelemetryConfig]:
    return _default_config


def default_sink() -> Optional[TraceSink]:
    return _default_sink
