"""Structured event tracing: typed events with time, layer, and attributes.

The simulation's evaluation story hinges on explaining *why* the
autoscaler acted. Resource step-series (:mod:`repro.sim.tracing`) show
*what* happened to supply and demand; the tracer records the causal
events behind them — task submits and retries, scheduler binds, kubelet
phase transitions, chaos injections, and one decision-audit record per
operator resize cycle.

Design rules:

* **zero-cost when disabled** — every instrumented component calls
  ``tracer.emit(...)`` unconditionally; a disabled tracer returns before
  touching the clock or building an event. Components that would do
  extra work *preparing* attributes guard on :attr:`Tracer.enabled`.
* **no engine interaction** — emitting never schedules simulation
  events, so enabling tracing cannot perturb a seeded run: the same
  seed produces the same trajectory with tracing on or off.
* **bounded or unbounded** — a ``maxlen`` turns the buffer into a ring
  (oldest events dropped, counted in :attr:`Tracer.dropped`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterable, Iterator, List, Mapping, Optional, Union

#: Attribute values must stay JSON-representable so every exporter
#: round-trips losslessly (see :mod:`repro.telemetry.exporters`).
AttrValue = Union[str, int, float, bool, None]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One structured event: when, which layer, what, and details.

    ``layer`` names the emitting subsystem (``wq``, ``sched``,
    ``kubelet``, ``cloud``, ``api``, ``informer``, ``chaos``, ``hta``);
    ``name`` is the event type within it (``task.submit``,
    ``pod.bind``, ``decision`` …); ``category`` optionally carries the
    task category or object name the event is about.
    """

    time: float
    layer: str
    name: str
    category: Optional[str] = None
    attrs: Mapping[str, AttrValue] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        d: Dict[str, object] = {
            "time": self.time,
            "layer": self.layer,
            "name": self.name,
        }
        if self.category is not None:
            d["category"] = self.category
        if self.attrs:
            d["attrs"] = dict(self.attrs)
        return d

    @classmethod
    def from_dict(cls, d: Mapping[str, object]) -> "TraceEvent":
        return cls(
            time=float(d["time"]),  # type: ignore[arg-type]
            layer=str(d["layer"]),
            name=str(d["name"]),
            category=(None if d.get("category") is None else str(d["category"])),
            attrs=dict(d.get("attrs", {})),  # type: ignore[arg-type]
        )


class Tracer:
    """Collects :class:`TraceEvent` records against a simulation clock.

    ``clock`` is any zero-argument callable returning the current time
    (experiments pass ``lambda: engine.now``). A disabled tracer is the
    shared no-op sink — :data:`NULL_TRACER` — so instrumentation never
    needs ``if tracer is not None`` checks.
    """

    __slots__ = ("_clock", "enabled", "_events", "emitted", "maxlen")

    def __init__(
        self,
        clock: Callable[[], float],
        *,
        enabled: bool = True,
        maxlen: Optional[int] = None,
    ) -> None:
        if maxlen is not None and maxlen <= 0:
            raise ValueError(f"maxlen must be positive, got {maxlen}")
        self._clock = clock
        self.enabled = enabled
        self.maxlen = maxlen
        self._events: Union[List[TraceEvent], Deque[TraceEvent]] = (
            [] if maxlen is None else deque(maxlen=maxlen)
        )
        #: Total events emitted, including any evicted from a ring buffer.
        self.emitted = 0

    # ------------------------------------------------------------------ emit
    def emit(
        self,
        layer: str,
        name: str,
        category: Optional[str] = None,
        **attrs: AttrValue,
    ) -> None:
        """Record one event (no-op when disabled)."""
        if not self.enabled:
            return
        self.emitted += 1
        self._events.append(
            TraceEvent(self._clock(), layer, name, category, attrs)
        )

    # ----------------------------------------------------------------- reads
    @property
    def events(self) -> List[TraceEvent]:
        """The retained events, oldest first."""
        return list(self._events)

    @property
    def dropped(self) -> int:
        """Events evicted by the ring buffer (0 when unbounded)."""
        return self.emitted - len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def select(
        self,
        layer: Optional[str] = None,
        name: Optional[str] = None,
        category: Optional[str] = None,
    ) -> List[TraceEvent]:
        """Retained events matching every given filter."""
        return [
            e
            for e in self._events
            if (layer is None or e.layer == layer)
            and (name is None or e.name == name)
            and (category is None or e.category == category)
        ]

    def clear(self) -> None:
        self._events.clear()
        self.emitted = 0

    def __repr__(self) -> str:  # pragma: no cover
        state = "on" if self.enabled else "off"
        return f"<Tracer {state} n={len(self._events)} dropped={self.dropped}>"


#: Shared disabled sink: components default to this so ``tracer.emit``
#: is always safe to call and costs one early-returning method call.
NULL_TRACER = Tracer(lambda: 0.0, enabled=False)


def layers(events: Iterable[TraceEvent]) -> List[str]:
    """Distinct layers in first-appearance order (exporter helper)."""
    seen: Dict[str, None] = {}
    for e in events:
        seen.setdefault(e.layer, None)
    return list(seen)
