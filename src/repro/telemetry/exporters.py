"""Trace and metrics exporters: JSONL, Chrome trace, Prometheus text.

Three interchange formats, all dependency-free:

* **JSONL** — one :class:`~repro.telemetry.events.TraceEvent` per line;
  lossless (``read_events_jsonl(write_events_jsonl(evts)) == evts``)
  because event attributes are restricted to JSON scalars;
* **Chrome trace** — the ``chrome://tracing`` / Perfetto JSON format:
  each simulation layer becomes a thread, each run a process, and every
  trace event an instant event at microsecond resolution;
* **Prometheus text** — the exposition format v0.0.4 rendering of a
  :class:`~repro.telemetry.metrics.MetricsRegistry`, plus a tiny parser
  (:func:`parse_prometheus_text`) used by tests and CI to prove the
  output is well-formed.
"""

from __future__ import annotations

import json
from typing import IO, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.telemetry.events import TraceEvent, layers
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry

PathOrFile = Union[str, "os.PathLike[str]", IO[str]]  # noqa: F821


# ------------------------------------------------------------------- JSONL
def events_to_jsonl(
    events: Iterable[TraceEvent], *, run: Optional[str] = None
) -> str:
    """Serialize events one-per-line; ``run`` tags every line (so several
    runs can share one file and still be teased apart)."""
    lines = []
    for event in events:
        d = event.to_dict()
        if run is not None:
            d["run"] = run
        lines.append(json.dumps(d, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")

def write_events_jsonl(
    events: Iterable[TraceEvent], path: PathOrFile, *, run: Optional[str] = None
) -> None:
    text = events_to_jsonl(events, run=run)
    if hasattr(path, "write"):
        path.write(text)  # type: ignore[union-attr]
    else:
        with open(path, "w", encoding="utf-8") as fp:  # type: ignore[arg-type]
            fp.write(text)


def read_events_jsonl(path: PathOrFile) -> List[TraceEvent]:
    """Parse a JSONL trace back into events (``run`` tags are dropped —
    use :func:`read_runs_jsonl` to keep them)."""
    return [event for _run, event in read_runs_jsonl(path)]


def read_runs_jsonl(path: PathOrFile) -> List[Tuple[Optional[str], TraceEvent]]:
    if hasattr(path, "read"):
        text = path.read()  # type: ignore[union-attr]
    else:
        with open(path, "r", encoding="utf-8") as fp:  # type: ignore[arg-type]
            text = fp.read()
    out: List[Tuple[Optional[str], TraceEvent]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        d = json.loads(line)
        run = d.pop("run", None)
        out.append((run, TraceEvent.from_dict(d)))
    return out


# ------------------------------------------------------------ Chrome trace
def chrome_trace(
    runs: Sequence[Tuple[str, Sequence[TraceEvent]]],
) -> Dict[str, object]:
    """Build a ``chrome://tracing`` JSON object.

    ``runs`` is a list of ``(run_name, events)`` pairs; each run maps to
    one process (pid), each layer within it to one thread (tid), and
    each event to a thread-scoped instant event with ``ts`` in
    microseconds of simulated time. Metadata records name the processes
    and threads so the viewer shows ``run / layer`` lanes.
    """
    trace_events: List[Dict[str, object]] = []
    for pid, (run_name, events) in enumerate(runs, start=1):
        trace_events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "ts": 0,
                "args": {"name": run_name},
            }
        )
        tids = {layer: tid for tid, layer in enumerate(layers(events), start=1)}
        for layer, tid in tids.items():
            trace_events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "ts": 0,
                    "args": {"name": layer},
                }
            )
        for event in events:
            args: Dict[str, object] = dict(event.attrs)
            if event.category is not None:
                args.setdefault("category", event.category)
            trace_events.append(
                {
                    "ph": "i",
                    "s": "t",  # thread-scoped instant
                    "name": event.name,
                    "cat": event.layer,
                    "pid": pid,
                    "tid": tids[event.layer],
                    "ts": round(event.time * 1e6, 3),
                    "args": args,
                }
            )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    runs: Sequence[Tuple[str, Sequence[TraceEvent]]], path: PathOrFile
) -> None:
    doc = chrome_trace(runs)
    if hasattr(path, "write"):
        json.dump(doc, path)  # type: ignore[arg-type]
    else:
        with open(path, "w", encoding="utf-8") as fp:  # type: ignore[arg-type]
            json.dump(doc, fp)


# -------------------------------------------------------- Prometheus text
def _render_labels(key: Tuple[Tuple[str, str], ...]) -> str:
    if not key:
        return ""
    inner = ",".join(
        '{}="{}"'.format(k, v.replace("\\", "\\\\").replace('"', '\\"'))
        for k, v in key
    )
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render every instrument in Prometheus exposition format."""
    lines: List[str] = []
    for instrument in registry.instruments():
        if instrument.help:
            lines.append(f"# HELP {instrument.name} {instrument.help}")
        lines.append(f"# TYPE {instrument.name} {instrument.kind}")
        if isinstance(instrument, (Counter, Gauge)):
            samples = instrument.samples()
            if not samples:
                lines.append(f"{instrument.name} 0")
            for key, value in samples:
                lines.append(
                    f"{instrument.name}{_render_labels(key)} {_fmt(value)}"
                )
        elif isinstance(instrument, Histogram):
            for key, snap in instrument.samples():
                base = dict(key)
                for bound, cumulative in snap.buckets:
                    bkey = tuple(sorted({**base, "le": _fmt(bound)}.items()))
                    lines.append(
                        f"{instrument.name}_bucket{_render_labels(bkey)} {cumulative}"
                    )
                inf_key = tuple(sorted({**base, "le": "+Inf"}.items()))
                lines.append(
                    f"{instrument.name}_bucket{_render_labels(inf_key)} {snap.count}"
                )
                lines.append(
                    f"{instrument.name}_sum{_render_labels(key)} {_fmt(snap.sum)}"
                )
                lines.append(
                    f"{instrument.name}_count{_render_labels(key)} {snap.count}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus_text(registry: MetricsRegistry, path: PathOrFile) -> None:
    text = prometheus_text(registry)
    if hasattr(path, "write"):
        path.write(text)  # type: ignore[union-attr]
    else:
        with open(path, "w", encoding="utf-8") as fp:  # type: ignore[arg-type]
            fp.write(text)


def parse_prometheus_text(
    text: str,
) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]:
    """Minimal exposition-format parser: ``{(name, labels): value}``.

    Supports exactly what :func:`prometheus_text` emits (no escapes in
    label values beyond ``\\"`` and ``\\\\``); raises ``ValueError`` on
    malformed lines so tests and CI can use it as a validator.
    """
    out: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise ValueError(f"malformed sample line: {raw!r}")
        value = float("inf") if value_part == "+Inf" else float(value_part)
        labels: Tuple[Tuple[str, str], ...] = ()
        name = name_part
        if "{" in name_part:
            if not name_part.endswith("}"):
                raise ValueError(f"malformed labels in line: {raw!r}")
            name, _, label_blob = name_part[:-1].partition("{")
            pairs = []
            for item in _split_labels(label_blob):
                k, _, v = item.partition("=")
                if not (v.startswith('"') and v.endswith('"')):
                    raise ValueError(f"malformed label value in line: {raw!r}")
                pairs.append(
                    (k, v[1:-1].replace('\\"', '"').replace("\\\\", "\\"))
                )
            labels = tuple(sorted(pairs))
        if not name:
            raise ValueError(f"malformed sample line: {raw!r}")
        out[(name, labels)] = value
    return out


def _split_labels(blob: str) -> List[str]:
    """Split ``a="x",b="y"`` on commas outside quotes."""
    items: List[str] = []
    current: List[str] = []
    in_quotes = False
    escaped = False
    for ch in blob:
        if escaped:
            current.append(ch)
            escaped = False
            continue
        if ch == "\\":
            current.append(ch)
            escaped = True
            continue
        if ch == '"':
            in_quotes = not in_quotes
        if ch == "," and not in_quotes:
            items.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        items.append("".join(current))
    return [i for i in (s.strip() for s in items) if i]
