"""Unified telemetry: event tracing, metrics registry, decision audit.

The observability layer behind ``run_experiment``:

* :mod:`repro.telemetry.events` — :class:`Tracer` and the typed
  :class:`TraceEvent` stream (zero-cost when disabled);
* :mod:`repro.telemetry.metrics` — :class:`MetricsRegistry` with
  labelled counters, gauges, and histograms;
* :mod:`repro.telemetry.exporters` — JSONL, Chrome ``chrome://tracing``,
  and Prometheus text formats (plus parsers used as validators);
* :mod:`repro.telemetry.explain` — the operator decision-audit timeline;
* :mod:`repro.telemetry.session` — per-run wiring
  (:class:`TelemetryConfig`, :class:`TelemetrySession`) and the CLI's
  multi-run :class:`TraceSink`.

See DESIGN.md §9 for the event taxonomy and the overhead stance.
"""

from repro.telemetry.events import NULL_TRACER, TraceEvent, Tracer
from repro.telemetry.explain import decision_events, explain_decisions
from repro.telemetry.exporters import (
    chrome_trace,
    events_to_jsonl,
    parse_prometheus_text,
    prometheus_text,
    read_events_jsonl,
    read_runs_jsonl,
    write_chrome_trace,
    write_events_jsonl,
    write_prometheus_text,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.session import (
    TelemetryConfig,
    TelemetrySession,
    TraceSink,
    default_sink,
    default_telemetry,
    set_default_telemetry,
)

__all__ = [
    "NULL_TRACER",
    "TraceEvent",
    "Tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TelemetryConfig",
    "TelemetrySession",
    "TraceSink",
    "chrome_trace",
    "decision_events",
    "default_sink",
    "default_telemetry",
    "events_to_jsonl",
    "explain_decisions",
    "parse_prometheus_text",
    "prometheus_text",
    "read_events_jsonl",
    "read_runs_jsonl",
    "set_default_telemetry",
    "write_chrome_trace",
    "write_events_jsonl",
    "write_prometheus_text",
]
