"""A metrics registry: counters, gauges, histograms with labels.

Replaces the ad-hoc ``self.pods_killed += 1``-style integers scattered
through the fault-injection and control-plane layers with named,
labelled instruments that one registry can enumerate — which is what
makes a uniform Prometheus text export possible (see
:mod:`repro.telemetry.exporters`). Components that predate the registry
keep their attribute API by backing the attribute with a counter (e.g.
``ChaosInjector.pods_killed`` is now a property over
``chaos_pods_killed_total``).

Instruments are cheap plain-dict machines — no locks, no background
threads — so they are safe to create unconditionally even in runs that
never export anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram buckets (seconds-oriented, wide dynamic range).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1800.0,
)


def _label_key(labels: Mapping[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Instrument:
    """Shared naming/help plumbing for all instrument types."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        if not name or any(c in name for c in " \t\n{}\""):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help


class Counter(_Instrument):
    """A monotonically-increasing value, optionally per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(_label_key(labels), 0.0)

    @property
    def total(self) -> float:
        """Sum across every label set."""
        return sum(self._values.values())

    def samples(self) -> List[Tuple[LabelKey, float]]:
        return sorted(self._values.items())


class Gauge(_Instrument):
    """A value that can go up and down; settable or callback-backed."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: Dict[LabelKey, float] = {}
        self._functions: Dict[LabelKey, Callable[[], float]] = {}

    def set(self, value: float, **labels: str) -> None:
        self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def set_function(self, fn: Callable[[], float], **labels: str) -> None:
        """Read the gauge from ``fn`` at sample time (live values like
        queue depth are cheaper to poll than to event out)."""
        self._functions[_label_key(labels)] = fn

    def value(self, **labels: str) -> float:
        key = _label_key(labels)
        if key in self._functions:
            return float(self._functions[key]())
        return self._values.get(key, 0.0)

    def samples(self) -> List[Tuple[LabelKey, float]]:
        out = dict(self._values)
        for key, fn in self._functions.items():
            out[key] = float(fn())
        return sorted(out.items())


@dataclass(frozen=True, slots=True)
class HistogramSnapshot:
    """Cumulative bucket counts plus sum/count for one label set."""

    buckets: Tuple[Tuple[float, int], ...]  # (upper_bound, cumulative count)
    sum: float
    count: int


class Histogram(_Instrument):
    """Observations bucketed by fixed upper bounds (Prometheus-style)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket")
        self.bounds = bounds
        self._counts: Dict[LabelKey, List[int]] = {}
        self._sums: Dict[LabelKey, float] = {}
        self._totals: Dict[LabelKey, int] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        counts = self._counts.get(key)
        if counts is None:
            counts = self._counts[key] = [0] * len(self.bounds)
            self._sums[key] = 0.0
            self._totals[key] = 0
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                counts[i] += 1
                break
        self._sums[key] += value
        self._totals[key] += 1

    def snapshot(self, **labels: str) -> HistogramSnapshot:
        key = _label_key(labels)
        counts = self._counts.get(key, [0] * len(self.bounds))
        cumulative: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, counts):
            running += n
            cumulative.append((bound, running))
        return HistogramSnapshot(
            buckets=tuple(cumulative),
            sum=self._sums.get(key, 0.0),
            count=self._totals.get(key, 0),
        )

    def samples(self) -> List[Tuple[LabelKey, HistogramSnapshot]]:
        return sorted(
            (key, self.snapshot(**dict(key))) for key in self._counts
        )


class MetricsRegistry:
    """Named home for every instrument; the exporters' entry point.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same name returns the same instrument (so a component can be
    constructed before or after its peers without ordering rules), and
    asking with a conflicting type raises.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, _Instrument] = {}

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> _Instrument:
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        instrument = cls(name, help, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(  # type: ignore[return-value]
            Histogram, name, help, buckets=buckets
        )

    def get(self, name: str) -> Optional[_Instrument]:
        return self._instruments.get(name)

    def instruments(self) -> Iterable[_Instrument]:
        return [self._instruments[k] for k in sorted(self._instruments)]

    def names(self) -> List[str]:
        return sorted(self._instruments)
