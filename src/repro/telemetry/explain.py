"""Post-run decision audit: render why the autoscaler did what it did.

The HTA operator emits one ``hta/decision`` trace event per resize
cycle, carrying the full audit record: the inputs it saw (queue state,
worker counts, init-time estimate, informer staleness), the raw
estimate Algorithm 1 produced, any clamps or degraded-mode overrides
applied, and the action actually taken. :func:`explain_decisions`
renders that stream as a human-readable timeline — the "why did it
scale here?" answer the paper's evaluation narrates by hand.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.telemetry.events import TraceEvent

#: The (layer, name) pair identifying a decision-audit record.
DECISION_LAYER = "hta"
DECISION_EVENT = "decision"


def decision_events(events: Iterable[TraceEvent]) -> List[TraceEvent]:
    """The decision-audit records within an event stream, in order."""
    return [
        e
        for e in events
        if e.layer == DECISION_LAYER and e.name == DECISION_EVENT
    ]


def _action_phrase(attrs) -> str:
    mode = attrs.get("mode", "normal")
    if mode == "warmup":
        return "warm-up hold"
    delta = int(attrs.get("delta", 0))
    parts: List[str] = []
    if int(attrs.get("created", 0)):
        parts.append(f"+{int(attrs['created'])} pods")
    if int(attrs.get("cancelled", 0)):
        parts.append(f"cancelled {int(attrs['cancelled'])} pending")
    if int(attrs.get("drained", 0)):
        parts.append(f"drained {int(attrs['drained'])}")
    if mode == "degraded" and bool(attrs.get("scale_down_frozen", False)):
        parts.append("scale-down FROZEN")
    if not parts:
        parts.append("hold" if delta == 0 else f"delta {delta:+d} (not applied)")
    return ", ".join(parts)


def _reason_phrase(attrs) -> str:
    mode = attrs.get("mode", "normal")
    if mode == "degraded":
        reasons = []
        if not attrs.get("api_available", True):
            reasons.append("API down")
        if not attrs.get("master_available", True):
            reasons.append("master down")
        if attrs.get("staleness_exceeded", False):
            reasons.append(f"informer stale ({int(attrs.get('staleness', 0))})")
        return "DEGRADED: " + (", ".join(reasons) or "inputs untrusted")
    if mode == "warmup":
        return "no jobs submitted yet"
    clamped = attrs.get("clamp")
    if clamped:
        return f"clamped by {clamped}"
    return ""


def explain_decisions(
    events: Iterable[TraceEvent], *, title: Optional[str] = None
) -> str:
    """Render the operator decision timeline as an aligned text table."""
    decisions = decision_events(events)
    header = title if title is not None else "HTA decision timeline"
    if not decisions:
        return f"{header}: no decision-audit events (tracing disabled, or no HTA run)"
    rows: List[Sequence[str]] = [
        (
            "t(s)", "mode", "wait", "run", "held", "live", "idle", "pend",
            "init(s)", "delta", "action", "notes",
        )
    ]
    for e in decisions:
        a = e.attrs
        rows.append(
            (
                f"{e.time:.0f}",
                str(a.get("mode", "normal")),
                str(int(a.get("waiting", 0))),
                str(int(a.get("running", 0))),
                str(int(a.get("held", 0))),
                str(int(a.get("live_workers", 0))),
                str(int(a.get("idle_workers", 0))),
                str(int(a.get("pending_pods", 0))),
                f"{float(a.get('init_time_s', 0.0)):.0f}",
                f"{int(a.get('delta', 0)):+d}",
                _action_phrase(a),
                _reason_phrase(a),
            )
        )
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    lines = [header, ""]
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[j]) for j, cell in enumerate(row)).rstrip())
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    n_degraded = sum(1 for e in decisions if e.attrs.get("mode") == "degraded")
    lines.append("")
    lines.append(
        f"{len(decisions)} decision cycles ({n_degraded} degraded); "
        f"window t={decisions[0].time:.0f}s..{decisions[-1].time:.0f}s"
    )
    return "\n".join(lines)
