"""Render a :class:`WorkflowGraph` back to Makeflow-dialect text.

The inverse of :mod:`repro.makeflow.parser`: programmatically generated
workflows (the BLAST generators, synthetic shapes) can be exported to a
human-readable Makeflow file, inspected, versioned, and re-parsed. The
round-trip ``parse(render(g))`` preserves the DAG structure, categories,
resources, runtimes, and file sizes — property-tested in
``tests/property/test_properties_parser.py``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.makeflow.dag import WorkflowGraph
from repro.wq.task import FileSpec, Task


def render_makeflow(graph: WorkflowGraph, *, header_comment: str = "") -> str:
    """Serialize ``graph`` to Makeflow text parseable by
    :func:`repro.makeflow.parser.parse_makeflow`."""
    lines: List[str] = []
    if header_comment:
        for row in header_comment.splitlines():
            lines.append(f"# {row}")
        lines.append("")

    # File-size annotations, one per distinct file, sorted for stability.
    sizes: Dict[str, FileSpec] = {}
    for task in graph.tasks:
        for f in (*task.inputs, *task.outputs):
            sizes.setdefault(f.name, f)
    for name in sorted(sizes):
        spec = sizes[name]
        cache = " CACHE" if spec.cacheable else ""
        lines.append(f".SIZE {name} {float(spec.size_mb)!r}{cache}")
    if sizes:
        lines.append("")

    # Rules in topological order, grouped under sticky attribute blocks.
    current: Tuple = ()
    for task in graph.topological_order():
        attrs = _attributes_of(task)
        if attrs != current:
            lines.extend(_attribute_block(task))
            lines.append("")
            current = attrs
        targets = " ".join(f.name for f in task.outputs)
        sources = " ".join(f.name for f in task.inputs)
        lines.append(f"{targets}: {sources}".rstrip())
        lines.append(f"\t{task.command}")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def _attributes_of(task: Task) -> Tuple:
    declared = task.declared if task.declared is not None else task.footprint
    return (
        task.category,
        declared.cores,
        declared.memory_mb,
        declared.disk_mb,
        task.execute_s,
        task.cpu_fraction,
    )


def _attribute_block(task: Task) -> List[str]:
    declared = task.declared if task.declared is not None else task.footprint
    # repr() is the shortest decimal that round-trips through float():
    # the parse(render(g)) property tests depend on exact values.
    return [
        f"CATEGORY={task.category}",
        f"CORES={float(declared.cores)!r}",
        f"MEMORY={float(declared.memory_mb)!r}",
        f"DISK={float(declared.disk_mb)!r}",
        f"RUNTIME={float(task.execute_s)!r}",
        f"CPUFRACTION={float(task.cpu_fraction)!r}",
    ]


def write_makeflow_file(graph: WorkflowGraph, path: str, **kwargs) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_makeflow(graph, **kwargs))
