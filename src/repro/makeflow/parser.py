"""Parser for the Makeflow dialect.

"Makeflow's syntax is similar to that of GNU Make" (§II-A). The subset
implemented here covers what the paper's workloads need, plus the
simulation annotations that make a parsed file *runnable* (a real
Makeflow learns runtimes by executing binaries; a simulation must be told
them):

* comments (``#``), blank lines, and backslash line continuation;
* variable assignment ``NAME=value`` and substitution ``$(NAME)``;
* sticky per-rule attributes, set as variables exactly like Makeflow's:
  ``CATEGORY``, ``CORES``, ``MEMORY`` (MB), ``DISK`` (MB), plus the
  simulation-only ``RUNTIME`` (seconds) and ``CPUFRACTION`` (0..1);
* rules::

      target1 target2 : source1 source2
          command to run

  (the command line must be indented); and
* file-size annotations ``.SIZE name size_mb [CACHE]`` declaring the
  size (and cacheability) of files; files without a declared size default
  to ``DEFAULT_FILE_MB`` (1.0).

Rules become :class:`~repro.wq.task.Task` objects: sources are inputs,
targets are outputs, ``CORES/MEMORY/DISK`` form the declared resources
(and, absent a separate measurement, the footprint).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.resources import ResourceVector
from repro.makeflow.dag import WorkflowGraph
from repro.wq.task import FileSpec, Task

DEFAULT_FILE_MB = 1.0

_VAR_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)\s*=\s*(.*)$")
_SUBST_RE = re.compile(r"\$\(([A-Za-z_][A-Za-z0-9_]*)\)")
_SIZE_RE = re.compile(r"^\.SIZE\s+(\S+)\s+([0-9.]+)(\s+CACHE)?\s*$")

#: Variables that set sticky rule attributes rather than plain macros.
_ATTR_VARS = {"CATEGORY", "CORES", "MEMORY", "DISK", "RUNTIME", "CPUFRACTION"}


class MakeflowParseError(ValueError):
    """A syntax or semantic error, with the offending line number."""

    def __init__(self, message: str, line_no: int):
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


@dataclass
class _ParsedRule:
    targets: List[str]
    sources: List[str]
    command: str
    category: str
    cores: float
    memory_mb: float
    disk_mb: float
    runtime_s: float
    cpu_fraction: float
    line_no: int


@dataclass
class _ParserState:
    variables: Dict[str, str] = field(default_factory=dict)
    file_sizes: Dict[str, Tuple[float, bool]] = field(default_factory=dict)
    rules: List[_ParsedRule] = field(default_factory=list)
    category: str = "default"
    cores: float = 1.0
    memory_mb: float = 1024.0
    disk_mb: float = 1024.0
    runtime_s: float = 60.0
    cpu_fraction: float = 1.0


def parse_makeflow(text: str) -> WorkflowGraph:
    """Parse Makeflow source text into a :class:`WorkflowGraph`."""
    state = _ParserState()
    lines = _join_continuations(text.splitlines())
    i = 0
    while i < len(lines):
        line_no, raw = lines[i]
        stripped = _strip_comment(raw)
        i += 1
        if not stripped.strip():
            continue
        if raw[:1] in (" ", "\t"):
            raise MakeflowParseError("command line without a preceding rule", line_no)
        if stripped.startswith(".SIZE"):
            _parse_size(stripped, line_no, state)
            continue
        m = _VAR_RE.match(stripped)
        if m and ":" not in stripped.split("=", 1)[0]:
            _assign(m.group(1), _substitute(m.group(2).strip(), state, line_no), state, line_no)
            continue
        if ":" in stripped:
            # A rule header; the command is the following indented line.
            if i >= len(lines) or lines[i][1][:1] not in (" ", "\t"):
                raise MakeflowParseError("rule is missing an indented command line", line_no)
            cmd_no, cmd_raw = lines[i]
            i += 1
            _parse_rule(stripped, cmd_raw.strip(), line_no, state)
            continue
        raise MakeflowParseError(f"unrecognized line: {stripped!r}", line_no)

    if not state.rules:
        raise MakeflowParseError("no rules found", 0)
    return _build_graph(state)


def parse_makeflow_file(path: str) -> WorkflowGraph:
    with open(path, "r", encoding="utf-8") as fh:
        return parse_makeflow(fh.read())


# ----------------------------------------------------------------- internals
def _join_continuations(raw_lines: List[str]) -> List[Tuple[int, str]]:
    out: List[Tuple[int, str]] = []
    buffer = ""
    start_no = 0
    for idx, line in enumerate(raw_lines, start=1):
        if not buffer:
            start_no = idx
        if line.rstrip().endswith("\\"):
            buffer += line.rstrip()[:-1] + " "
            continue
        out.append((start_no, buffer + line))
        buffer = ""
    if buffer:
        out.append((start_no, buffer))
    return out


def _strip_comment(line: str) -> str:
    # No escaped-# support needed for this dialect.
    pos = line.find("#")
    return line if pos < 0 else line[:pos]


def _substitute(text: str, state: _ParserState, line_no: int) -> str:
    def repl(m: "re.Match[str]") -> str:
        name = m.group(1)
        if name not in state.variables:
            raise MakeflowParseError(f"undefined variable $({name})", line_no)
        return state.variables[name]

    # Iterate to support nested definitions like A=$(B) with B=$(C).
    for _ in range(10):
        new = _SUBST_RE.sub(repl, text)
        if new == text:
            return new
        text = new
    raise MakeflowParseError("variable substitution did not converge (cycle?)", line_no)


def _assign(name: str, value: str, state: _ParserState, line_no: int) -> None:
    state.variables[name] = value
    if name not in _ATTR_VARS:
        return
    try:
        if name == "CATEGORY":
            state.category = value.strip("\"'") or "default"
        elif name == "CORES":
            state.cores = float(value)
        elif name == "MEMORY":
            state.memory_mb = float(value)
        elif name == "DISK":
            state.disk_mb = float(value)
        elif name == "RUNTIME":
            state.runtime_s = float(value)
        elif name == "CPUFRACTION":
            state.cpu_fraction = float(value)
    except ValueError:
        raise MakeflowParseError(f"{name} expects a number, got {value!r}", line_no) from None


def _parse_size(line: str, line_no: int, state: _ParserState) -> None:
    m = _SIZE_RE.match(line)
    if not m:
        raise MakeflowParseError(".SIZE expects: .SIZE <file> <size_mb> [CACHE]", line_no)
    name, size, cache = m.group(1), float(m.group(2)), bool(m.group(3))
    state.file_sizes[name] = (size, cache)


def _parse_rule(header: str, command: str, line_no: int, state: _ParserState) -> None:
    header = _substitute(header, state, line_no)
    command = _substitute(command, state, line_no)
    left, _, right = header.partition(":")
    targets = left.split()
    sources = right.split()
    if not targets:
        raise MakeflowParseError("rule has no targets", line_no)
    if not command:
        raise MakeflowParseError("rule has an empty command", line_no)
    state.rules.append(
        _ParsedRule(
            targets=targets,
            sources=sources,
            command=command,
            category=state.category,
            cores=state.cores,
            memory_mb=state.memory_mb,
            disk_mb=state.disk_mb,
            runtime_s=state.runtime_s,
            cpu_fraction=state.cpu_fraction,
            line_no=line_no,
        )
    )


def _build_graph(state: _ParserState) -> WorkflowGraph:
    def spec_for(name: str) -> FileSpec:
        size, cache = state.file_sizes.get(name, (DEFAULT_FILE_MB, False))
        return FileSpec(name, size, cacheable=cache)

    tasks: List[Task] = []
    for rule in state.rules:
        resources = ResourceVector(rule.cores, rule.memory_mb, rule.disk_mb)
        tasks.append(
            Task(
                rule.category,
                execute_s=rule.runtime_s,
                footprint=resources,
                declared=resources,
                cpu_fraction=rule.cpu_fraction,
                inputs=tuple(spec_for(s) for s in rule.sources),
                outputs=tuple(spec_for(t) for t in rule.targets),
                command=rule.command,
            )
        )
    try:
        return WorkflowGraph(tasks)
    except ValueError as exc:
        raise MakeflowParseError(str(exc), state.rules[-1].line_no) from exc
