"""The workflow DAG: tasks as nodes, file dependencies as edges.

"The nodes of the graph are jobs to execute, and the edges of the graph
represent dependencies between jobs" (§II-A). Dependencies are derived
from files: task B depends on task A iff A produces (one of its outputs)
a file B consumes. Files no task produces are *initial* inputs assumed
present at the master.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Dict, Iterable, List, Sequence, Set

from repro.wq.task import Task


class CycleError(ValueError):
    """The rules form a dependency cycle; not a DAG."""


class WorkflowGraph:
    """An immutable DAG over :class:`~repro.wq.task.Task` objects."""

    def __init__(self, tasks: Sequence[Task]):
        if not tasks:
            raise ValueError("a workflow needs at least one task")
        self.tasks: List[Task] = list(tasks)
        ids = [t.id for t in self.tasks]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate task objects in workflow")

        # Producer map: file name -> producing task id.
        self.producer: Dict[str, int] = {}
        for t in self.tasks:
            for f in t.outputs:
                if f.name in self.producer:
                    raise ValueError(
                        f"file {f.name!r} produced by two tasks "
                        f"(#{self.producer[f.name]} and #{t.id})"
                    )
                self.producer[f.name] = t.id

        # Edges: dependencies[task id] = set of prerequisite task ids.
        self.dependencies: Dict[int, Set[int]] = {t.id: set() for t in self.tasks}
        self.dependents: Dict[int, Set[int]] = {t.id: set() for t in self.tasks}
        for t in self.tasks:
            for f in t.inputs:
                producer = self.producer.get(f.name)
                if producer is not None and producer != t.id:
                    self.dependencies[t.id].add(producer)
                    self.dependents[producer].add(t.id)

        self._by_id: Dict[int, Task] = {t.id: t for t in self.tasks}
        self._assert_acyclic()

    # ------------------------------------------------------------ structure
    def _assert_acyclic(self) -> None:
        order = self.topological_order()
        if len(order) != len(self.tasks):
            in_cycle = set(self._by_id) - {t.id for t in order}
            raise CycleError(f"workflow has a dependency cycle involving tasks {sorted(in_cycle)}")

    def topological_order(self) -> List[Task]:
        """Kahn's algorithm; stable by task id among ready candidates."""
        indegree = {tid: len(deps) for tid, deps in self.dependencies.items()}
        ready = deque(sorted(tid for tid, d in indegree.items() if d == 0))
        order: List[Task] = []
        while ready:
            tid = ready.popleft()
            order.append(self._by_id[tid])
            for dep in sorted(self.dependents[tid]):
                indegree[dep] -= 1
                if indegree[dep] == 0:
                    ready.append(dep)
        return order

    def task(self, task_id: int) -> Task:
        return self._by_id[task_id]

    def roots(self) -> List[Task]:
        """Tasks with no prerequisites — runnable immediately."""
        return [t for t in self.tasks if not self.dependencies[t.id]]

    def initial_files(self) -> Set[str]:
        """Input files no task produces (present at the master at t=0)."""
        consumed = {f.name for t in self.tasks for f in t.inputs}
        return consumed - set(self.producer)

    def final_outputs(self) -> Set[str]:
        """Output files no task consumes — the workflow's products."""
        consumed = {f.name for t in self.tasks for f in t.inputs}
        return set(self.producer) - consumed

    # ------------------------------------------------------------- analysis
    def category_counts(self) -> Dict[str, int]:
        """Tasks per category — the stage structure of fig 10a."""
        return dict(Counter(t.category for t in self.tasks))

    def categories(self) -> List[str]:
        """Categories in first-appearance (typically stage) order."""
        seen: List[str] = []
        for t in self.tasks:
            if t.category not in seen:
                seen.append(t.category)
        return seen

    def depth(self) -> int:
        """Length of the longest dependency chain (levels of the DAG)."""
        level: Dict[int, int] = {}
        for t in self.topological_order():
            deps = self.dependencies[t.id]
            level[t.id] = 1 + max((level[d] for d in deps), default=0)
        return max(level.values())

    def width_by_level(self) -> Dict[int, int]:
        """Task count per DAG level — the available parallelism profile."""
        level: Dict[int, int] = {}
        for t in self.topological_order():
            deps = self.dependencies[t.id]
            level[t.id] = 1 + max((level[d] for d in deps), default=0)
        return dict(Counter(level.values()))

    def total_execute_seconds(self) -> float:
        """Serial work in the DAG (sum of execute times)."""
        return sum(t.execute_s for t in self.tasks)

    def critical_path_seconds(self) -> float:
        """Lower bound on makespan with infinite resources (no transfers)."""
        finish: Dict[int, float] = {}
        for t in self.topological_order():
            deps = self.dependencies[t.id]
            start = max((finish[d] for d in deps), default=0.0)
            finish[t.id] = start + t.execute_s
        return max(finish.values())

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterable[Task]:
        return iter(self.tasks)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<WorkflowGraph tasks={len(self.tasks)} depth={self.depth()}>"
