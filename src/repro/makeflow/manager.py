"""The workflow manager: releases ready tasks, tracks completion.

Makeflow "dispatches ready jobs to the underlying system" (§I). The
manager is agnostic to *what* it submits to — anything satisfying
:class:`Submitter` works: the Work Queue :class:`~repro.wq.master.Master`
directly, or HTA's operator sitting in between (the paper's architecture,
fig 8, where Makeflow talks to HTA's TCP server and HTA forwards to the
master).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Protocol, Set

from repro.makeflow.dag import WorkflowGraph
from repro.sim.engine import Engine
from repro.sim.process import Signal
from repro.sim.tracing import MetricRecorder
from repro.wq.task import Task, TaskResult


class Submitter(Protocol):
    """Where the manager sends ready tasks (Master or HTA operator)."""

    def submit(self, task: Task) -> None:
        ...  # pragma: no cover - protocol signature

    def on_complete(self, fn: Callable[[Task, TaskResult], None]) -> None:
        ...  # pragma: no cover - protocol signature


class WorkflowManager:
    """Drives one workflow DAG to completion through a submitter."""

    def __init__(
        self,
        engine: Engine,
        graph: WorkflowGraph,
        submitter: Submitter,
        *,
        recorder: Optional[MetricRecorder] = None,
    ) -> None:
        self.engine = engine
        self.graph = graph
        self.submitter = submitter
        self.recorder = recorder
        self._remaining_deps: Dict[int, Set[int]] = {
            tid: set(deps) for tid, deps in graph.dependencies.items()
        }
        self._submitted: Set[int] = set()
        self._completed: Set[int] = set()
        self.started = False
        self.start_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        #: Latched signal fired with the manager when the DAG completes.
        self.done_signal = Signal(engine, "workflow.done")
        self.completed_by_category: Dict[str, int] = {}
        #: Set when a task is permanently abandoned: the DAG can never
        #: finish, and drivers should stop waiting.
        self.failed_task_ids: Set[int] = set()
        submitter.on_complete(self._task_completed)
        on_abandoned = getattr(submitter, "on_abandoned", None)
        if callable(on_abandoned):
            on_abandoned(self._task_abandoned)

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Submit all root tasks; idempotent."""
        if self.started:
            return
        self.started = True
        self.start_time = self.engine.now
        self._record_progress()
        for task in self.graph.roots():
            self._submit(task)

    @property
    def done(self) -> bool:
        return len(self._completed) == len(self.graph)

    @property
    def failed(self) -> bool:
        return bool(self.failed_task_ids)

    @property
    def makespan(self) -> Optional[float]:
        if self.start_time is None or self.finish_time is None:
            return None
        return self.finish_time - self.start_time

    def progress(self) -> float:
        return len(self._completed) / len(self.graph)

    # ------------------------------------------------------------- internal
    def _submit(self, task: Task) -> None:
        if task.id in self._submitted:
            return
        self._submitted.add(task.id)
        self.submitter.submit(task)

    def _task_completed(self, task: Task, result: TaskResult) -> None:
        if task.id not in self._remaining_deps or task.id in self._completed:
            return  # not ours (several workflows can share a master)
        self._completed.add(task.id)
        self.completed_by_category[task.category] = (
            self.completed_by_category.get(task.category, 0) + 1
        )
        self._record_progress()
        for dependent_id in sorted(self.graph.dependents[task.id]):
            deps = self._remaining_deps[dependent_id]
            deps.discard(task.id)
            if not deps and dependent_id not in self._submitted:
                self._submit(self.graph.task(dependent_id))
        if self.done and self.finish_time is None:
            self.finish_time = self.engine.now
            self.done_signal.fire_once(self)

    def _task_abandoned(self, task: Task) -> None:
        if task.id in self._remaining_deps:
            self.failed_task_ids.add(task.id)

    def _record_progress(self) -> None:
        if self.recorder is None:
            return
        self.recorder.set("workflow.completed", len(self._completed))
        self.recorder.set("workflow.submitted", len(self._submitted))
        for category, count in self.completed_by_category.items():
            self.recorder.set(f"workflow.completed.{category}", count)
