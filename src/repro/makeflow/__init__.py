"""A Makeflow-like workflow manager (simulated).

Makeflow "parses the description and generates an in-memory
representation of the workload's DAG structure and parcels it out to an
underlying execution framework" (§II-A). This package provides:

* :mod:`~repro.makeflow.dag` — the DAG over tasks, with dependencies
  derived from file producer/consumer relationships, cycle detection,
  and per-category stage structure (fig 10a);
* :mod:`~repro.makeflow.parser` — a GNU-Make-style parser for the
  Makeflow dialect (variables, rules, category/resource directives,
  ``.SIZE`` file annotations) producing runnable
  :class:`~repro.wq.task.Task` objects;
* :mod:`~repro.makeflow.manager` — the workflow manager: submits ready
  tasks to any submitter (the Work Queue master directly, or HTA's
  operator in between), releases dependents as inputs are produced, and
  reports progress.
"""

from repro.makeflow.dag import WorkflowGraph, CycleError
from repro.makeflow.parser import MakeflowParseError, parse_makeflow, parse_makeflow_file
from repro.makeflow.manager import WorkflowManager, Submitter
from repro.makeflow.render import render_makeflow, write_makeflow_file

__all__ = [
    "WorkflowGraph",
    "CycleError",
    "MakeflowParseError",
    "parse_makeflow",
    "parse_makeflow_file",
    "WorkflowManager",
    "Submitter",
    "render_makeflow",
    "write_makeflow_file",
]
