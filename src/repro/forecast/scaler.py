"""The predictive autoscaling policy: provision for *forecast* demand.

Reactive policies (HPA, the KEDA-style queue scaler, HTA itself) size the
pool for work already visible, so a burst of arrivals always pays one
full resource-initialization cycle of latency before capacity lands.
:class:`PredictiveScaler` closes that gap: it samples aggregate resource
demand from the master, forecasts it one initialization cycle ahead (the
horizon comes live from the init-time tracker, so it tightens as real
cold-start measurements arrive), and sizes the pool for the *predicted*
demand — pre-provisioning before bursts the models anticipate.

Scale-down uses HTA's drain-not-delete semantics through the worker
provisioner: pending pods are cancelled first (they cost nothing yet),
then live workers are drained idlest-first — running tasks are never
killed, unlike the replica-controller shrink path of the baselines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Protocol

from repro.forecast.selector import OnlineModelSelector
from repro.forecast.series import DemandSample, MasterDemandSampler
from repro.hta.provisioner import WorkerProvisioner
from repro.sim.engine import Engine, PeriodicTask
from repro.sim.tracing import MetricRecorder
from repro.wq.master import Master
from repro.wq.worker import WorkerState


class InitTimeSource(Protocol):
    """Anything serving a current init-time estimate (tracker or fixed)."""

    def current(self) -> float: ...


@dataclass(frozen=True, slots=True)
class PredictiveScalerConfig:
    """Tunables for the predictive policy."""

    min_workers: int = 1
    max_workers: int = 20
    #: Demand sampling cadence (feeds the forecasters).
    sample_interval_s: float = 15.0
    #: Scaling decision cadence.
    decision_interval_s: float = 30.0
    #: Forecast horizon as a multiple of the live init-time estimate.
    horizon_margin: float = 1.0
    #: Lead times sampled across the horizon when sizing the pool. The
    #: pool is sized for the *envelope* (max) of these predictions, not
    #: the single point at the horizon: a burst predicted anywhere inside
    #: the init cycle must hold capacity, otherwise the point forecast
    #: slides past the spike between decisions and the scaler drains pods
    #: that are still cold-starting for it.
    horizon_samples: int = 4
    #: Multiplier on predicted demand cores before sizing the pool.
    headroom: float = 1.0
    #: Rolling error window for the model pool.
    error_window: int = 32
    #: Consecutive decisions the recommendation must stay below the
    #: current pool before draining (guards against forecast flicker;
    #: far shorter than KEDA's cooldown because drains are harmless).
    scale_down_patience: int = 2

    def __post_init__(self) -> None:
        if self.min_workers < 0 or self.max_workers < self.min_workers:
            raise ValueError("invalid worker bounds")
        if self.sample_interval_s <= 0 or self.decision_interval_s <= 0:
            raise ValueError("intervals must be positive")
        if self.horizon_margin <= 0:
            raise ValueError("horizon_margin must be positive")
        if self.horizon_samples < 1:
            raise ValueError("horizon_samples must be at least 1")
        if self.headroom <= 0:
            raise ValueError("headroom must be positive")
        if self.scale_down_patience < 1:
            raise ValueError("scale_down_patience must be at least 1")


class PredictiveScaler:
    """Sizes a drained worker pool from forecast resource demand."""

    def __init__(
        self,
        engine: Engine,
        master: Master,
        provisioner: WorkerProvisioner,
        init_source: InitTimeSource,
        config: PredictiveScalerConfig = PredictiveScalerConfig(),
        recorder: Optional[MetricRecorder] = None,
        selector: Optional[OnlineModelSelector] = None,
    ) -> None:
        self.engine = engine
        self.master = master
        self.provisioner = provisioner
        self.init_source = init_source
        self.config = config
        self.recorder = recorder
        self.selector = selector if selector is not None else OnlineModelSelector()
        self.sampler = MasterDemandSampler(
            engine, master, interval_s=config.sample_interval_s
        )
        self.sampler.on_sample(self._on_sample)
        self.decisions = 0
        self.scale_events = 0
        self.last_forecast_cores = 0.0
        self.last_desired = 0
        self._below_streak = 0
        self._decision_loop = PeriodicTask(
            engine,
            config.decision_interval_s,
            self._decide,
            start_after=config.decision_interval_s,
        )
        if self.pool_size() < config.min_workers:
            provisioner.create_workers(config.min_workers - self.pool_size())

    # ------------------------------------------------------------ lifecycle
    def stop(self) -> None:
        self.sampler.stop()
        self._decision_loop.stop()

    # ---------------------------------------------------------------- state
    def pool_size(self) -> int:
        """Workers the pool will converge to with no further action:
        pending pods plus live, non-draining workers."""
        pending = len(self.provisioner.pending_pods())
        live = sum(
            1
            for w in self.provisioner.runtime.live_workers()
            if w.state in (WorkerState.CONNECTING, WorkerState.READY)
        )
        return pending + live

    # ------------------------------------------------------------- feedback
    def _on_sample(self, sample: DemandSample) -> None:
        self.selector.observe(sample.time, sample.demand_cores)

    # ------------------------------------------------------------- decision
    def desired_workers(self) -> int:
        """Forecast demand one init cycle out; convert to whole workers."""
        horizon = self.init_source.current() * self.config.horizon_margin
        samples = self.config.horizon_samples
        forecast = max(
            self.selector.predict(horizon * k / samples)
            for k in range(1, samples + 1)
        )
        # Never provision below demand that is already visible: the
        # forecast layer adds anticipation, it must not subtract facts.
        visible = self.master.cores_waiting() + self.master.cores_in_use()
        cores = max(forecast, visible) * self.config.headroom
        self.last_forecast_cores = forecast
        per_worker = max(self.provisioner.worker_request.cores, 1e-9)
        desired = math.ceil(cores / per_worker)
        return max(self.config.min_workers, min(self.config.max_workers, desired))

    def _decide(self) -> None:
        self.decisions += 1
        desired = self.desired_workers()
        self.last_desired = desired
        current = self.pool_size()
        if self.recorder is not None:
            self.recorder.set("forecast.demand_cores", self.last_forecast_cores)
            self.recorder.set("forecast.desired", desired)
            self.recorder.set("forecast.pool", current)
        if desired > current:
            self._below_streak = 0
            self.provisioner.create_workers(desired - current)
            self.scale_events += 1
            return
        if desired < current:
            self._below_streak += 1
            if self._below_streak < self.config.scale_down_patience:
                return
            shrink = current - desired
            shrink -= self.provisioner.cancel_pending(shrink)
            if shrink > 0:
                self.provisioner.drain_workers(shrink)
            self.scale_events += 1
            self._below_streak = 0
            return
        self._below_streak = 0
