"""Online model selection: route predictions to the best-tracking model.

No single forecast model wins everywhere — last-value is unbeatable on
flat demand, Holt on ramps, the AR model on recurring bursts. Instead of
picking one upfront, :class:`OnlineModelSelector` feeds every registered
model each observation and routes ``predict`` to the one with the lowest
*rolling* forecast error, so the routing itself adapts as the workload's
character changes mid-run.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.forecast.models import Forecaster, default_forecasters


class OnlineModelSelector:
    """Fan observations out to a model pool; route predicts to the best.

    Selection metric is rolling MAE (``metric="mae"``) or sMAPE
    (``metric="smape"``). Models that have not yet been scored carry
    infinite error; ties (including the everything-unscored cold start)
    break by registration order, so routing is fully deterministic.
    """

    def __init__(
        self,
        forecasters: Optional[Sequence[Forecaster]] = None,
        *,
        metric: str = "mae",
    ) -> None:
        if metric not in ("mae", "smape"):
            raise ValueError(f"unknown metric {metric!r}")
        pool = list(forecasters) if forecasters is not None else list(default_forecasters())
        if not pool:
            raise ValueError("need at least one forecaster")
        names = [f.name for f in pool]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate forecaster names: {names}")
        self.forecasters: List[Forecaster] = pool
        self.metric = metric
        self.selections: Dict[str, int] = {f.name: 0 for f in pool}

    # ------------------------------------------------------------- protocol
    def observe(self, t: float, y: float) -> None:
        for model in self.forecasters:
            model.observe(t, y)

    def predict(self, horizon_s: float) -> float:
        best = self.best()
        self.selections[best.name] += 1
        return best.predict(horizon_s)

    # ---------------------------------------------------------------- reads
    def _error_of(self, model: Forecaster) -> float:
        if self.metric == "smape":
            return model.rolling_smape()  # type: ignore[attr-defined]
        return model.rolling_mae()

    def best(self) -> Forecaster:
        """The registered model with the lowest rolling error (stable)."""
        best = self.forecasters[0]
        best_err = self._error_of(best)
        for model in self.forecasters[1:]:
            err = self._error_of(model)
            if err < best_err:
                best, best_err = model, err
        return best

    def errors(self) -> Dict[str, float]:
        return {f.name: self._error_of(f) for f in self.forecasters}

    @property
    def names(self) -> List[str]:
        return [f.name for f in self.forecasters]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{name}={err:.3f}" if math.isfinite(err) else f"{name}=inf"
            for name, err in self.errors().items()
        )
        return f"<OnlineModelSelector best={self.best().name!r} errors=[{parts}]>"
