"""Bounded demand time series sampled from Work Queue master events.

The forecasting layer needs a compact, replayable view of demand as it
evolved: task arrivals, backlog, and the aggregate resource demand in
cores. :class:`DemandSeries` is the storage — a bounded, right-continuous
step series (same semantics as :class:`repro.sim.tracing.StepSeries`,
plus a hard sample cap so a week-long facility run cannot grow memory
without bound). :class:`MasterDemandSampler` is the producer — a periodic
probe of one :class:`~repro.wq.master.Master` that feeds three series and
fans each sample out to registered listeners (forecasters, selectors).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.sim.engine import Engine, PeriodicTask
from repro.wq.master import Master


class DemandSeries:
    """A bounded, step-integrable time series of demand observations.

    ``observe(t, y)`` appends a sample; times must be non-decreasing and
    finite, values finite. When the sample count exceeds ``max_samples``
    the oldest samples are dropped — integrals over windows that reach
    before the retained history are clamped to it.
    """

    __slots__ = ("name", "max_samples", "times", "values", "dropped")

    def __init__(self, name: str = "demand", max_samples: int = 4096):
        if max_samples <= 0:
            raise ValueError("max_samples must be positive")
        self.name = name
        self.max_samples = max_samples
        self.times: List[float] = []
        self.values: List[float] = []
        #: Samples discarded by the bound (diagnostic).
        self.dropped = 0

    # --------------------------------------------------------------- writes
    def observe(self, t: float, y: float) -> None:
        if not (math.isfinite(t) and math.isfinite(y)):
            raise ValueError(f"non-finite sample ({t!r}, {y!r})")
        if self.times and t < self.times[-1]:
            raise ValueError(
                f"DemandSeries {self.name!r}: time {t} precedes last {self.times[-1]}"
            )
        if self.times and self.times[-1] == t:
            self.values[-1] = float(y)  # same-instant update supersedes
            return
        self.times.append(float(t))
        self.values.append(float(y))
        excess = len(self.times) - self.max_samples
        if excess > 0:
            del self.times[:excess]
            del self.values[:excess]
            self.dropped += excess

    # ---------------------------------------------------------------- reads
    def __len__(self) -> int:
        return len(self.times)

    @property
    def latest(self) -> Optional[Tuple[float, float]]:
        if not self.times:
            return None
        return self.times[-1], self.values[-1]

    def value_at(self, t: float) -> float:
        """Step-function value at ``t`` (0.0 before the retained history)."""
        idx = bisect.bisect_right(self.times, t) - 1
        return 0.0 if idx < 0 else self.values[idx]

    def samples(self) -> List[Tuple[float, float]]:
        return list(zip(self.times, self.values))

    def tail(self, n: int) -> List[Tuple[float, float]]:
        """The most recent ``n`` samples, oldest first."""
        if n <= 0:
            return []
        return list(zip(self.times[-n:], self.values[-n:]))

    def integrate(self, t0: float, t1: float) -> float:
        """Exact integral of the step function over ``[t0, t1]``.

        The window is clamped to the retained history (values before the
        first retained sample are treated as 0.0, matching ``value_at``).
        """
        if t1 <= t0 or not self.times:
            return 0.0
        total = 0.0
        lo = t0
        start = max(0, bisect.bisect_right(self.times, t0) - 1)
        for i in range(start, len(self.times)):
            seg_start = max(lo, self.times[i])
            seg_end = t1 if i + 1 == len(self.times) else min(t1, self.times[i + 1])
            if seg_end > seg_start:
                total += self.values[i] * (seg_end - seg_start)
            if seg_end >= t1:
                break
        return total

    def mean_over(self, t0: float, t1: float) -> float:
        if t1 <= t0:
            return 0.0
        return self.integrate(t0, t1) / (t1 - t0)


@dataclass(frozen=True, slots=True)
class DemandSample:
    """One probe of the master's demand state."""

    time: float
    #: Task arrivals per second since the previous probe.
    arrival_rate_per_s: float
    #: Waiting + running tasks.
    backlog: int
    #: Footprint cores desired right now (waiting + executing tasks).
    demand_cores: float


SampleListener = Callable[[DemandSample], None]


class MasterDemandSampler:
    """Periodically probes a master into three :class:`DemandSeries`.

    Listeners registered with :meth:`on_sample` receive every
    :class:`DemandSample` — the hook the forecasting layer uses to feed
    its models without the sampler knowing about them.
    """

    def __init__(
        self,
        engine: Engine,
        master: Master,
        *,
        interval_s: float = 15.0,
        max_samples: int = 4096,
        start_after: float = 0.0,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.engine = engine
        self.master = master
        self.interval_s = interval_s
        self.arrival_rate = DemandSeries("arrival_rate_per_s", max_samples)
        self.backlog = DemandSeries("backlog", max_samples)
        self.demand_cores = DemandSeries("demand_cores", max_samples)
        self._listeners: List[SampleListener] = []
        self._last_submitted = master.tasks_submitted
        self._last_probe_t = engine.now
        self._loop = PeriodicTask(engine, interval_s, self.probe, start_after=start_after)

    def on_sample(self, fn: SampleListener) -> None:
        self._listeners.append(fn)

    def stop(self) -> None:
        self._loop.stop()

    def probe(self) -> None:
        """Take one sample now (also called by the periodic loop)."""
        now = self.engine.now
        submitted = self.master.tasks_submitted
        dt = now - self._last_probe_t
        rate = (submitted - self._last_submitted) / dt if dt > 0 else 0.0
        self._last_submitted = submitted
        self._last_probe_t = now
        stats = self.master.stats()
        demand = self.master.cores_waiting() + self.master.cores_in_use()
        self.arrival_rate.observe(now, rate)
        self.backlog.observe(now, float(stats.backlog))
        self.demand_cores.observe(now, demand)
        sample = DemandSample(now, rate, stats.backlog, demand)
        for fn in list(self._listeners):
            fn(sample)
