"""Demand forecasters with rolling error tracking.

Every model follows the same tiny contract (:class:`Forecaster`):
``observe(t, y)`` feeds one sample, ``predict(horizon_s)`` extrapolates
the series ``horizon_s`` seconds past the last observation. Predictions
are always finite and non-negative for non-negative input series — the
autoscaling layer turns them directly into worker counts.

Each call to ``observe`` first scores the model's *previous* one-step
forecast against the sample that just arrived (rolling MAE and sMAPE over
a bounded window), so the online selector can route to whichever model is
currently tracking the workload best. All models are deterministic pure
functions of their observation history.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, List, Optional, Protocol, Tuple, runtime_checkable

import numpy as np


@runtime_checkable
class Forecaster(Protocol):
    """The contract the selector and scalers program against."""

    name: str

    def observe(self, t: float, y: float) -> None: ...

    def predict(self, horizon_s: float) -> float: ...

    def rolling_mae(self) -> float: ...


class ForecastErrorTracker:
    """Rolling MAE / sMAPE over the last ``window`` scored forecasts."""

    __slots__ = ("window", "_abs_errors", "_smape_terms", "scored")

    def __init__(self, window: int = 32):
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._abs_errors: Deque[float] = deque(maxlen=window)
        self._smape_terms: Deque[float] = deque(maxlen=window)
        self.scored = 0

    def record(self, predicted: float, actual: float) -> None:
        err = abs(predicted - actual)
        self._abs_errors.append(err)
        denom = (abs(predicted) + abs(actual)) / 2.0
        self._smape_terms.append(err / denom if denom > 0 else 0.0)
        self.scored += 1

    @property
    def mae(self) -> float:
        """Mean absolute error; ``inf`` before any forecast was scored."""
        if not self._abs_errors:
            return math.inf
        return sum(self._abs_errors) / len(self._abs_errors)

    @property
    def smape(self) -> float:
        """Symmetric MAPE in [0, 2]; ``inf`` before any scored forecast."""
        if not self._smape_terms:
            return math.inf
        return sum(self._smape_terms) / len(self._smape_terms)


class ForecasterBase:
    """Shared observe/predict plumbing: validation, error scoring, clamping.

    Subclasses implement ``_update(t, y, dt)`` (state transition; ``dt``
    is the spacing to the previous sample, 0.0 for the first) and
    ``_forecast(horizon_s)`` (raw extrapolation; may be any float — the
    base clamps it to finite non-negative).
    """

    def __init__(self, name: str, *, error_window: int = 32):
        self.name = name
        self.errors = ForecastErrorTracker(error_window)
        self.observations = 0
        self._last_t: Optional[float] = None
        self._last_y = 0.0

    # ------------------------------------------------------------- protocol
    def observe(self, t: float, y: float) -> None:
        if not (math.isfinite(t) and math.isfinite(y)):
            raise ValueError(f"non-finite observation ({t!r}, {y!r})")
        if self._last_t is not None and t < self._last_t:
            raise ValueError(f"time {t} precedes last observation {self._last_t}")
        dt = 0.0 if self._last_t is None else t - self._last_t
        if self.observations > 0 and dt > 0:
            self.errors.record(self.predict(dt), y)
        self._update(t, y, dt)
        self._last_t = t
        self._last_y = y
        self.observations += 1

    def predict(self, horizon_s: float) -> float:
        if horizon_s < 0:
            raise ValueError("horizon_s must be non-negative")
        if self.observations == 0:
            return 0.0
        raw = self._forecast(horizon_s)
        if not math.isfinite(raw):
            raw = self._last_y
        return max(0.0, raw)

    def rolling_mae(self) -> float:
        return self.errors.mae

    def rolling_smape(self) -> float:
        return self.errors.smape

    # ------------------------------------------------------------ subclass
    def _update(self, t: float, y: float, dt: float) -> None:
        raise NotImplementedError

    def _forecast(self, horizon_s: float) -> float:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mae = self.errors.mae
        mae_s = f"{mae:.3f}" if math.isfinite(mae) else "inf"
        return f"<{type(self).__name__} {self.name!r} n={self.observations} mae={mae_s}>"


class NaiveForecaster(ForecasterBase):
    """Last value carried forward — the floor every other model must beat."""

    def __init__(self, name: str = "naive", *, error_window: int = 32):
        super().__init__(name, error_window=error_window)

    def _update(self, t: float, y: float, dt: float) -> None:
        pass  # _last_y is the whole state

    def _forecast(self, horizon_s: float) -> float:
        return self._last_y


class EwmaForecaster(ForecasterBase):
    """Exponentially weighted moving average (no trend): a low-pass level.

    Good when demand is noisy around a slowly moving mean; deliberately
    lags ramps, which is exactly when Holt or the AR model should win the
    selector instead.
    """

    def __init__(self, alpha: float = 0.3, name: str = "ewma", *, error_window: int = 32):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        super().__init__(name, error_window=error_window)
        self.alpha = alpha
        self.level = 0.0

    def _update(self, t: float, y: float, dt: float) -> None:
        if self.observations == 0:
            self.level = y
        else:
            self.level = self.alpha * y + (1.0 - self.alpha) * self.level

    def _forecast(self, horizon_s: float) -> float:
        return self.level


class HoltForecaster(ForecasterBase):
    """Holt double-exponential smoothing: level + per-second trend.

    The trend term is normalized by the sample spacing, so irregular
    probe cadences (HTA's cycle length changes as init-time estimates
    move) don't distort the slope.
    """

    def __init__(
        self,
        alpha: float = 0.5,
        beta: float = 0.3,
        name: str = "holt",
        *,
        error_window: int = 32,
    ):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if not 0.0 <= beta <= 1.0:
            raise ValueError("beta must be in [0, 1]")
        super().__init__(name, error_window=error_window)
        self.alpha = alpha
        self.beta = beta
        self.level = 0.0
        self.trend_per_s = 0.0

    def _update(self, t: float, y: float, dt: float) -> None:
        if self.observations == 0 or dt <= 0:
            self.level = y
            return
        prev_level = self.level
        self.level = self.alpha * y + (1.0 - self.alpha) * (prev_level + self.trend_per_s * dt)
        slope = (self.level - prev_level) / dt
        self.trend_per_s = self.beta * slope + (1.0 - self.beta) * self.trend_per_s

    def _forecast(self, horizon_s: float) -> float:
        return self.level + self.trend_per_s * horizon_s


class ArLeastSquaresForecaster(ForecasterBase):
    """Sliding-window autoregressive model, fit by least squares.

    Fits ``y_t = c + a_1 y_{t-1} + … + a_p y_{t-p}`` over the retained
    window and iterates the recurrence forward to the horizon. With an
    order spanning the demand period this is the only model here that can
    anticipate *periodic* load (recurring arrival bursts) instead of
    merely tracking its trailing edge.

    Iterated values are clamped to ``[0, guard × window-max]`` so an
    unstable fit cannot explode past the horizon; predictions degrade to
    last-value until ``order + 2`` samples exist.
    """

    def __init__(
        self,
        window: int = 64,
        order: int = 8,
        name: str = "ar-ls",
        *,
        guard_factor: float = 10.0,
        error_window: int = 32,
    ):
        if order <= 0:
            raise ValueError("order must be positive")
        if window < order + 2:
            raise ValueError("window must be at least order + 2")
        if guard_factor <= 0:
            raise ValueError("guard_factor must be positive")
        super().__init__(name, error_window=error_window)
        self.window = window
        self.order = order
        self.guard_factor = guard_factor
        self._history: Deque[Tuple[float, float]] = deque(maxlen=window)
        self._coeffs: Optional[np.ndarray] = None
        self._fit_at_count = -1

    def _update(self, t: float, y: float, dt: float) -> None:
        self._history.append((t, y))

    def _mean_step_s(self) -> float:
        times = [t for t, _ in self._history]
        if len(times) < 2:
            return 1.0
        span = times[-1] - times[0]
        return span / (len(times) - 1) if span > 0 else 1.0

    def _fit(self) -> Optional[np.ndarray]:
        """Refit lazily, at most once per new observation."""
        if self._fit_at_count == self.observations:
            return self._coeffs
        self._fit_at_count = self.observations
        values = [y for _, y in self._history]
        p = self.order
        if len(values) < p + 2:
            self._coeffs = None
            return None
        rows = len(values) - p
        design = np.empty((rows, p + 1))
        design[:, 0] = 1.0  # intercept
        targets = np.empty(rows)
        for i in range(rows):
            # Lags ordered most-recent-first: design[i, 1] is y_{t-1}.
            design[i, 1:] = values[i + p - 1 :: -1][:p]
            targets[i] = values[i + p]
        coeffs, *_ = np.linalg.lstsq(design, targets, rcond=None)
        self._coeffs = coeffs if np.all(np.isfinite(coeffs)) else None
        return self._coeffs

    def _forecast(self, horizon_s: float) -> float:
        coeffs = self._fit()
        if coeffs is None:
            return self._last_y
        values = [y for _, y in self._history]
        ceiling = max(values) * self.guard_factor if any(values) else 0.0
        step = self._mean_step_s()
        n_steps = max(1, math.ceil(horizon_s / step)) if horizon_s > 0 else 0
        recent: List[float] = values[-self.order :]
        pred = values[-1]
        for _ in range(n_steps):
            lags = recent[::-1]  # most recent first, matching the design
            pred = float(coeffs[0] + np.dot(coeffs[1:], lags))
            pred = min(max(pred, 0.0), ceiling)
            recent = recent[1:] + [pred]
        return pred


def default_forecasters(*, error_window: int = 32) -> List[ForecasterBase]:
    """The standard model pool the selector arbitrates between."""
    return [
        NaiveForecaster(error_window=error_window),
        EwmaForecaster(error_window=error_window),
        HoltForecaster(error_window=error_window),
        ArLeastSquaresForecaster(error_window=error_window),
    ]
