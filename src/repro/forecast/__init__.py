"""repro.forecast — predictive autoscaling: demand series, forecast
models with online selection, and the :class:`PredictiveScaler` policy.

The paper's HTA is purely reactive — it provisions for tasks already
submitted. This subsystem adds the predictive rung: sample demand from
the Work Queue master (:mod:`repro.forecast.series`), forecast it one
resource-initialization cycle ahead with a pool of models arbitrated by
rolling error (:mod:`repro.forecast.models`,
:mod:`repro.forecast.selector`), and pre-provision workers before the
demand lands (:mod:`repro.forecast.scaler`). The same forecast machinery
also feeds HTA's hybrid mode (``HtaConfig.forecast_arrivals``), which
injects predicted arrivals into Algorithm 1's forward simulation.
"""

from repro.forecast.models import (
    ArLeastSquaresForecaster,
    EwmaForecaster,
    ForecastErrorTracker,
    Forecaster,
    ForecasterBase,
    HoltForecaster,
    NaiveForecaster,
    default_forecasters,
)
from repro.forecast.scaler import PredictiveScaler, PredictiveScalerConfig
from repro.forecast.selector import OnlineModelSelector
from repro.forecast.series import DemandSample, DemandSeries, MasterDemandSampler

__all__ = [
    "ArLeastSquaresForecaster",
    "DemandSample",
    "DemandSeries",
    "EwmaForecaster",
    "ForecastErrorTracker",
    "Forecaster",
    "ForecasterBase",
    "HoltForecaster",
    "MasterDemandSampler",
    "NaiveForecaster",
    "OnlineModelSelector",
    "PredictiveScaler",
    "PredictiveScalerConfig",
    "default_forecasters",
]
