"""The fig-11 synthetic I/O-bound workload.

"We create a synthetic workload that contains 200 I/O intensive parallel
tasks. Each task of them runs dd commands to read/write data from the
disk device" — and, crucially, "the CPU load is rarely over 20 %", so an
HPA watching CPU never scales the cluster while the disk stays saturated.

We model each task as disk-busy wall time with a small ``cpu_fraction``:
a 1-core task at ``cpu_fraction=0.15`` makes a 4-core pod running three
of them report ~11 % CPU — under every HPA target the paper tests.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cluster.resources import ResourceVector
from repro.sim.rng import RngRegistry
from repro.wq.task import FileSpec, Task

#: One dd job: one core (mostly iowait), modest memory, heavy disk.
IO_FOOTPRINT = ResourceVector(cores=1, memory_mb=512, disk_mb=8000)

#: CPU busy fraction of an I/O-bound task ("rarely over 20%").
IO_CPU_FRACTION = 0.15


def iobound_parallel(
    n_tasks: int = 200,
    *,
    execute_s: float = 300.0,
    cpu_fraction: float = IO_CPU_FRACTION,
    declared: bool = False,
    category: str = "ddio",
    rng: Optional[RngRegistry] = None,
    runtime_cv: float = 0.0,
) -> List[Task]:
    """200 parallel ``dd`` tasks (fig 11's workload).

    Inputs/outputs are tiny (the tasks generate and discard data on local
    disk), so the master link is never the bottleneck — the experiment
    isolates pure autoscaling behaviour.
    """
    if n_tasks <= 0:
        raise ValueError("n_tasks must be positive")
    tasks: List[Task] = []
    for i in range(n_tasks):
        exec_time = execute_s
        if rng is not None and runtime_cv > 0:
            exec_time = rng.lognormal_around(f"io.exec.{category}", execute_s, runtime_cv)
        tasks.append(
            Task(
                category,
                execute_s=exec_time,
                footprint=IO_FOOTPRINT,
                declared=IO_FOOTPRINT if declared else None,
                cpu_fraction=cpu_fraction,
                inputs=(FileSpec(f"dd.spec.{i:04d}", 0.01),),
                outputs=(FileSpec(f"dd.log.{i:04d}", 0.01),),
                command=f"dd if=/dev/zero of=scratch.{i} bs=1M count=8000",
            )
        )
    return tasks
