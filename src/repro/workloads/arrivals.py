"""Workflow arrival streams: the long-running HTC facility.

The paper opens with facilities that "seek to complete as many jobs as
possible over a long period of time" — not one workflow, but a stream of
them. This module generates deterministic arrival schedules (Poisson or
fixed-interval) of workflow instances for the continuous-operation
experiments in :mod:`repro.experiments.continuous`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.makeflow.dag import WorkflowGraph
from repro.sim.rng import RngRegistry

WorkflowFactory = Callable[[int], WorkflowGraph]


@dataclass(frozen=True, slots=True)
class WorkflowArrival:
    """One workflow instance entering the facility at ``time_s``."""

    time_s: float
    graph: WorkflowGraph
    index: int

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError("arrival time must be non-negative")


def poisson_arrivals(
    factory: WorkflowFactory,
    *,
    rng: RngRegistry,
    rate_per_hour: float,
    horizon_s: float,
    stream: str = "arrivals",
) -> List[WorkflowArrival]:
    """Poisson arrivals at ``rate_per_hour`` over ``[0, horizon_s)``.

    ``factory(i)`` builds the i-th workflow instance (it must generate
    fresh Task objects each call — tasks are single-use).
    """
    if rate_per_hour <= 0:
        raise ValueError("rate_per_hour must be positive")
    if horizon_s <= 0:
        raise ValueError("horizon_s must be positive")
    mean_gap = 3600.0 / rate_per_hour
    arrivals: List[WorkflowArrival] = []
    t = 0.0
    i = 0
    gen = rng.stream(stream)
    while True:
        t += float(gen.exponential(mean_gap))
        if t >= horizon_s:
            break
        arrivals.append(WorkflowArrival(t, factory(i), i))
        i += 1
    return arrivals


def periodic_arrivals(
    factory: WorkflowFactory,
    *,
    interval_s: float,
    count: int,
    start_s: float = 0.0,
) -> List[WorkflowArrival]:
    """``count`` workflows at fixed ``interval_s`` spacing."""
    if interval_s <= 0:
        raise ValueError("interval_s must be positive")
    if count <= 0:
        raise ValueError("count must be positive")
    return [
        WorkflowArrival(start_s + i * interval_s, factory(i), i) for i in range(count)
    ]


def total_tasks(arrivals: Sequence[WorkflowArrival]) -> int:
    return sum(len(a.graph) for a in arrivals)
