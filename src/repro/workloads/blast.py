"""BLAST-like bioinformatics workloads.

The paper uses BLAST (Basic Local Alignment Search Tool) in three
configurations, all reproduced here:

* :func:`blast_parallel` — N parallel alignment jobs against a shared,
  cacheable reference database (fig 2: N=200; fig 4: N=100, "each job
  having a (cacheable) 1.4 GB shareable input and 600 KB output");
* :func:`blast_sizing_study` — the fig-4 variant with *unknown* resource
  declarations (drives the conservative one-task-per-worker behaviour);
* :func:`blast_multistage` — the fig-10 workflow: three stages with 200,
  34, and 164 tasks ("each stage involves three steps, i.e. splitting an
  input data, aligning subsequences, and reducing intermediate
  results"); stage boundaries are real file dependencies, so the middle
  stage creates the resource-demand dip an optimal autoscaler must track.

Task durations are calibrated so the simulated cluster shapes match the
paper's (see EXPERIMENTS.md for the paper-vs-measured numbers).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.cluster.resources import ResourceVector
from repro.makeflow.dag import WorkflowGraph
from repro.sim.rng import RngRegistry
from repro.wq.task import FileSpec, Task

#: The shared reference database: "a (cacheable) 1.4 GB shareable input".
BLAST_DB = FileSpec("blast-db.tar", 1400.0, cacheable=True)

#: Per-job query chunk (a slice of the dataset, not cacheable).
QUERY_CHUNK_MB = 7.0
#: "600 KB output" per alignment job.
OUTPUT_MB = 0.6

#: Footprint of one alignment job: one core plus the in-memory database.
ALIGN_FOOTPRINT = ResourceVector(cores=1, memory_mb=2500, disk_mb=2000)


def _jittered(rng: Optional[RngRegistry], stream: str, mean: float, cv: float) -> float:
    if rng is None or cv <= 0:
        return mean
    return rng.lognormal_around(stream, mean, cv)


def blast_parallel(
    n_tasks: int = 200,
    *,
    execute_s: float = 60.0,
    declared: bool = True,
    category: str = "align",
    rng: Optional[RngRegistry] = None,
    runtime_cv: float = 0.0,
) -> List[Task]:
    """The single-stage BLAST bag-of-tasks (fig 2 uses 200 jobs).

    With ``declared=True`` every job carries its resource requirement
    ("we assume that the resource requirements of individual jobs are
    known in advance", §III-B); otherwise requirements are unknown and
    the dispatch policy decides.
    """
    if n_tasks <= 0:
        raise ValueError("n_tasks must be positive")
    tasks = []
    for i in range(n_tasks):
        exec_time = _jittered(rng, f"blast.exec.{category}", execute_s, runtime_cv)
        tasks.append(
            Task(
                category,
                execute_s=exec_time,
                footprint=ALIGN_FOOTPRINT,
                declared=ALIGN_FOOTPRINT if declared else None,
                cpu_fraction=1.0,
                inputs=(BLAST_DB, FileSpec(f"query.{i:04d}", QUERY_CHUNK_MB)),
                outputs=(FileSpec(f"hits.{i:04d}", OUTPUT_MB),),
                command=f"blastall -i query.{i:04d} -d blast-db -o hits.{i:04d}",
            )
        )
    return tasks


def blast_sizing_study(
    n_tasks: int = 100,
    *,
    execute_s: float = 40.0,
    declared: bool = False,
) -> List[Task]:
    """The fig-4 workload: 100 parallel jobs, 1.4 GB cacheable input,
    600 KB outputs. ``declared`` switches between configuration (b)
    (unknown → one job per worker) and (c) (known requirements)."""
    return blast_parallel(
        n_tasks, execute_s=execute_s, declared=declared, category="align"
    )


def blast_multistage(
    stage_sizes: tuple[int, int, int] = (200, 34, 164),
    *,
    execute_s: float = 300.0,
    declared: bool = False,
    rng: Optional[RngRegistry] = None,
    runtime_cv: float = 0.0,
) -> WorkflowGraph:
    """The fig-10 three-stage workflow (defaults: 200 / 34 / 164 tasks).

    Structure (each stage's split/align/reduce collapsed into one task
    per unit of parallelism, which is what the scheduler sees):

    * stage 1 (``align1``): N1 alignment jobs against the shared DB;
    * stage 2 (``reduce``): N2 reduction jobs, each merging the hits of a
      contiguous slice of stage-1 jobs — the fan-in creates the paper's
      mid-workflow demand dip;
    * stage 3 (``align2``): N3 refinement alignments, each consuming one
      stage-2 summary (plus the shared DB), fanning back out.

    With ``declared=False`` (the default, matching the paper's monitored
    runs) resource requirements are discovered per category at runtime —
    the behaviour HTA's warm-up probing is designed around.
    """
    n1, n2, n3 = stage_sizes
    if min(stage_sizes) <= 0:
        raise ValueError("all stage sizes must be positive")
    decl = ALIGN_FOOTPRINT if declared else None
    tasks: List[Task] = []

    def exec_time(category: str) -> float:
        return _jittered(rng, f"blast.exec.{category}", execute_s, runtime_cv)

    stage1_outputs: List[FileSpec] = []
    for i in range(n1):
        out = FileSpec(f"s1.hits.{i:04d}", OUTPUT_MB)
        stage1_outputs.append(out)
        tasks.append(
            Task(
                "align1",
                execute_s=exec_time("align1"),
                footprint=ALIGN_FOOTPRINT,
                declared=decl,
                inputs=(BLAST_DB, FileSpec(f"s1.query.{i:04d}", QUERY_CHUNK_MB)),
                outputs=(out,),
                command=f"blastall -stage1 -i s1.query.{i:04d}",
            )
        )

    # Fan-in: each reduce job merges a contiguous slice of stage-1 hits.
    stage2_outputs: List[FileSpec] = []
    bounds = np.linspace(0, n1, n2 + 1).astype(int)
    for j in range(n2):
        inputs = tuple(stage1_outputs[bounds[j] : bounds[j + 1]])
        out = FileSpec(f"s2.summary.{j:04d}", OUTPUT_MB * 4)
        stage2_outputs.append(out)
        tasks.append(
            Task(
                "reduce",
                execute_s=exec_time("reduce"),
                footprint=ALIGN_FOOTPRINT,
                declared=decl,
                inputs=inputs,
                outputs=(out,),
                command=f"merge-hits -o s2.summary.{j:04d}",
            )
        )

    # Fan-out: stage-3 jobs re-align against summaries round-robin.
    for k in range(n3):
        summary = stage2_outputs[k % n2]
        tasks.append(
            Task(
                "align2",
                execute_s=exec_time("align2"),
                footprint=ALIGN_FOOTPRINT,
                declared=decl,
                inputs=(BLAST_DB, summary),
                outputs=(FileSpec(f"s3.hits.{k:04d}", OUTPUT_MB),),
                command=f"blastall -stage3 -i s2.summary.{k % n2:04d}",
            )
        )
    return WorkflowGraph(tasks)
