"""Parameterized synthetic workload generators.

Used by unit tests, property tests, ablation benchmarks, and the
examples: shapes that stress specific autoscaler behaviours without the
full BLAST calibration.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.cluster.resources import ResourceVector
from repro.makeflow.dag import WorkflowGraph
from repro.sim.rng import RngRegistry
from repro.wq.task import FileSpec, Task

_DEFAULT_FOOTPRINT = ResourceVector(cores=1, memory_mb=1024, disk_mb=1024)


def uniform_bag(
    n_tasks: int,
    *,
    execute_s: float = 60.0,
    footprint: ResourceVector = _DEFAULT_FOOTPRINT,
    declared: bool = True,
    cpu_fraction: float = 1.0,
    category: str = "bag",
    input_mb: float = 1.0,
    output_mb: float = 1.0,
    rng: Optional[RngRegistry] = None,
    runtime_cv: float = 0.0,
) -> List[Task]:
    """A bag of identical independent tasks — the simplest HTC shape."""
    if n_tasks <= 0:
        raise ValueError("n_tasks must be positive")
    tasks = []
    for i in range(n_tasks):
        exec_time = execute_s
        if rng is not None and runtime_cv > 0:
            exec_time = rng.lognormal_around(f"bag.exec.{category}", execute_s, runtime_cv)
        tasks.append(
            Task(
                category,
                execute_s=exec_time,
                footprint=footprint,
                declared=footprint if declared else None,
                cpu_fraction=cpu_fraction,
                inputs=(FileSpec(f"{category}.in.{i:05d}", input_mb),),
                outputs=(FileSpec(f"{category}.out.{i:05d}", output_mb),),
            )
        )
    return tasks


def multi_category_mix(
    spec: Sequence[Tuple[str, int, float, ResourceVector]],
    *,
    declared: bool = False,
    cpu_fraction: float = 1.0,
) -> List[Task]:
    """Independent tasks across several categories.

    ``spec`` is a sequence of ``(category, count, execute_s, footprint)``.
    With ``declared=False`` this exercises HTA's per-category probing —
    several categories must be learned concurrently.
    """
    tasks: List[Task] = []
    for category, count, execute_s, footprint in spec:
        for i in range(count):
            tasks.append(
                Task(
                    category,
                    execute_s=execute_s,
                    footprint=footprint,
                    declared=footprint if declared else None,
                    cpu_fraction=cpu_fraction,
                    inputs=(FileSpec(f"{category}.in.{i:05d}", 1.0),),
                    outputs=(FileSpec(f"{category}.out.{i:05d}", 1.0),),
                )
            )
    return tasks


def staged_pipeline(
    stage_sizes: Sequence[int],
    *,
    execute_s: float = 60.0,
    footprint: ResourceVector = _DEFAULT_FOOTPRINT,
    declared: bool = True,
    barrier: bool = False,
) -> WorkflowGraph:
    """A linear multi-stage workflow with wide→narrow→wide demand swings.

    Without ``barrier`` (the default), stage ``k`` task ``i`` consumes
    the output of stage ``k-1`` task ``i % size(k-1)`` — stages overlap
    as soon as individual predecessors finish (a pipelined workflow).
    With ``barrier=True`` every stage-``k`` task consumes *all* outputs
    of stage ``k-1`` — a hard synchronization point per stage, the shape
    that punishes slow-reacting autoscalers hardest.
    """
    if not stage_sizes or min(stage_sizes) <= 0:
        raise ValueError("stage_sizes must be non-empty and positive")
    tasks: List[Task] = []
    prev_outputs: List[FileSpec] = []
    for stage, size in enumerate(stage_sizes):
        outputs: List[FileSpec] = []
        for i in range(size):
            out = FileSpec(f"s{stage}.out.{i:05d}", 1.0)
            outputs.append(out)
            if not prev_outputs:
                inputs: Tuple[FileSpec, ...] = (FileSpec(f"s0.in.{i:05d}", 1.0),)
            elif barrier:
                inputs = tuple(prev_outputs)
            else:
                inputs = (prev_outputs[i % len(prev_outputs)],)
            tasks.append(
                Task(
                    f"stage{stage}",
                    execute_s=execute_s,
                    footprint=footprint,
                    declared=footprint if declared else None,
                    inputs=inputs,
                    outputs=(out,),
                )
            )
        prev_outputs = outputs
    return WorkflowGraph(tasks)


def fan_in_out(
    width: int,
    *,
    execute_s: float = 30.0,
    footprint: ResourceVector = _DEFAULT_FOOTPRINT,
    declared: bool = True,
) -> WorkflowGraph:
    """``width`` mappers → 1 reducer → ``width`` finalizers.

    The single mid-workflow reducer forces demand to collapse to one
    task and re-expand — the hardest shape for a reactive autoscaler.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    decl = footprint if declared else None
    tasks: List[Task] = []
    mapper_outs = []
    for i in range(width):
        out = FileSpec(f"map.out.{i:05d}", 1.0)
        mapper_outs.append(out)
        tasks.append(
            Task(
                "map",
                execute_s=execute_s,
                footprint=footprint,
                declared=decl,
                inputs=(FileSpec(f"map.in.{i:05d}", 1.0),),
                outputs=(out,),
            )
        )
    reduced = FileSpec("reduce.out", 1.0)
    tasks.append(
        Task(
            "reduce",
            execute_s=execute_s,
            footprint=footprint,
            declared=decl,
            inputs=tuple(mapper_outs),
            outputs=(reduced,),
        )
    )
    for i in range(width):
        tasks.append(
            Task(
                "finalize",
                execute_s=execute_s,
                footprint=footprint,
                declared=decl,
                inputs=(reduced,),
                outputs=(FileSpec(f"final.out.{i:05d}", 1.0),),
            )
        )
    return WorkflowGraph(tasks)
