"""Workload generators for the paper's evaluation.

* :mod:`~repro.workloads.blast` — BLAST-like bioinformatics workloads:
  the single-stage 200-job run (fig 2), the 100-job sizing study
  (fig 4), and the three-stage 200/34/164 workflow (fig 10);
* :mod:`~repro.workloads.iobound` — the synthetic ``dd``-style I/O-bound
  workload of fig 11 (disk-busy, CPU-quiet);
* :mod:`~repro.workloads.synthetic` — parameterized generators (uniform
  bags, multi-category mixes, bursty arrival patterns) used by tests,
  ablations, and examples.

All generators are deterministic given their arguments (any jitter comes
from an explicitly passed RNG registry), so figures regenerate
bit-identically.
"""

from repro.workloads.blast import (
    BLAST_DB,
    blast_parallel,
    blast_multistage,
    blast_sizing_study,
)
from repro.workloads.iobound import iobound_parallel
from repro.workloads.synthetic import (
    uniform_bag,
    multi_category_mix,
    staged_pipeline,
    fan_in_out,
)

__all__ = [
    "BLAST_DB",
    "blast_parallel",
    "blast_multistage",
    "blast_sizing_study",
    "iobound_parallel",
    "uniform_bag",
    "multi_category_mix",
    "staged_pipeline",
    "fan_in_out",
]
