"""Base Kubernetes-style API objects.

Every object stored in the API server derives from :class:`KubeObject`:
it has an :class:`ObjectMeta` (name, uid, labels, creation time) and a
``kind``. The paper uses three object kinds beyond Pod and Node —
StatefulSet (wrapping the Work Queue master for sticky identity +
persistent volume), and Services (master access from inside/outside the
cluster) — which we model structurally so HTA's deployment and clean-up
stages manipulate the same objects the real middleware would.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

_uid_counter = itertools.count(1)


def _next_uid(kind: str) -> str:
    return f"{kind.lower()}-{next(_uid_counter):06d}"


class ObjectMeta:
    """Name, uid, labels and creation timestamp of an API object."""

    __slots__ = ("name", "uid", "labels", "creation_time", "resource_version")

    def __init__(
        self,
        name: str,
        kind: str,
        labels: Optional[Dict[str, str]] = None,
        creation_time: float = 0.0,
    ) -> None:
        self.name = name
        self.uid = _next_uid(kind)
        self.labels: Dict[str, str] = dict(labels or {})
        self.creation_time = creation_time
        #: Monotone per-kind write counter stamped by the API server on
        #: every create/modify; informers compare it against the store's
        #: head to detect missed watch events (client-go semantics).
        self.resource_version = 0

    def matches(self, selector: Dict[str, str]) -> bool:
        """True iff every key/value in ``selector`` is present in labels."""
        return all(self.labels.get(k) == v for k, v in selector.items())

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ObjectMeta {self.name!r} uid={self.uid}>"


class KubeObject:
    """Base class for objects stored in the API server."""

    # The whole hierarchy is slotted: pods and nodes exist in the tens of
    # thousands in the large benchmark configurations.
    __slots__ = ("meta",)

    kind: str = "Object"

    def __init__(
        self,
        name: str,
        labels: Optional[Dict[str, str]] = None,
        creation_time: float = 0.0,
    ) -> None:
        self.meta = ObjectMeta(name, self.kind, labels, creation_time)

    @property
    def name(self) -> str:
        return self.meta.name

    @property
    def uid(self) -> str:
        return self.meta.uid

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{self.kind} {self.name!r}>"


class Service(KubeObject):
    """A stable network endpoint selecting pods by label.

    ``cluster_ip`` services expose the master to worker pods inside the
    cluster; ``load_balancer`` services expose it to Makeflow/HTA running
    outside (the paper's "dedicated services ... from outside and inside
    of the cluster").
    """

    __slots__ = ("selector", "service_type", "port")

    kind = "Service"

    def __init__(
        self,
        name: str,
        selector: Dict[str, str],
        *,
        service_type: str = "ClusterIP",
        port: int = 9123,
        labels: Optional[Dict[str, str]] = None,
        creation_time: float = 0.0,
    ) -> None:
        super().__init__(name, labels, creation_time)
        if service_type not in ("ClusterIP", "LoadBalancer", "NodePort"):
            raise ValueError(f"unknown service type {service_type!r}")
        self.selector = dict(selector)
        self.service_type = service_type
        self.port = port


class StatefulSet(KubeObject):
    """A set of pods with sticky identity and stable storage.

    The paper encapsulates the Work Queue master in a single-replica
    StatefulSet with a persistent volume so a restarted master keeps its
    identity and intermediate data. We track the template reference and
    replica count; the actual pod lifecycle is driven by the controller in
    :mod:`repro.cluster.cluster`.
    """

    __slots__ = ("replicas", "selector", "volume_gb", "template", "ready_replicas")

    kind = "StatefulSet"

    def __init__(
        self,
        name: str,
        *,
        replicas: int = 1,
        selector: Optional[Dict[str, str]] = None,
        volume_gb: float = 100.0,
        template: Optional[object] = None,  # PodSpec; untyped to avoid a cycle
        labels: Optional[Dict[str, str]] = None,
        creation_time: float = 0.0,
    ) -> None:
        super().__init__(name, labels, creation_time)
        if replicas < 0:
            raise ValueError("replicas must be non-negative")
        self.replicas = replicas
        self.selector = dict(selector or {})
        self.volume_gb = volume_gb
        self.template = template
        self.ready_replicas = 0
