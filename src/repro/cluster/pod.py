"""Pods: the primary deployment unit, with the fig-9 lifecycle.

The paper's HTA measures resource-initialization time by watching each
worker-pod's lifecycle through the informer cache:

1. **No Available Node** — the pod is ``Pending`` with a
   ``FailedScheduling`` / *Insufficient Resource* event while the cloud
   controller reserves a machine;
2. **No Container Image** — scheduled, ``Pending`` with a *Pulling Image*
   event while the kubelet pulls;
3. **Worker-Pod Running** — container started;
4. **Worker-Pod Stopped** — HTA drained the worker, the worker process
   exited, and the pod turned ``Succeeded``.

We keep a timestamped event log on each pod so the init-time tracker in
:mod:`repro.hta.inittime` can replay exactly this state machine.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.cluster.images import ContainerImage
from repro.cluster.objects import KubeObject
from repro.cluster.resources import ResourceVector

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.node import Node


class PodPhase(enum.Enum):
    """Kubernetes pod phases (we do not model Unknown)."""

    PENDING = "Pending"
    RUNNING = "Running"
    SUCCEEDED = "Succeeded"
    FAILED = "Failed"

    @property
    def terminal(self) -> bool:
        return self in (PodPhase.SUCCEEDED, PodPhase.FAILED)


# Event reasons surfaced to informers; names follow kubectl output.
REASON_FAILED_SCHEDULING = "FailedScheduling"
REASON_SCHEDULED = "Scheduled"
REASON_PULLING = "Pulling"
REASON_PULLED = "Pulled"
REASON_STARTED = "Started"
REASON_COMPLETED = "Completed"
REASON_KILLED = "Killing"


@dataclass(frozen=True, slots=True)
class PodEvent:
    """A timestamped lifecycle event, as the informer would observe it."""

    time: float
    reason: str
    message: str = ""


@dataclass(frozen=True, slots=True)
class PodSpec:
    """What a pod asks for: an image and a resource request.

    ``request`` follows Kubernetes semantics: the scheduler reserves this
    much on a node; the container may then subdivide it among tasks (Work
    Queue workers do exactly that).
    """

    image: ContainerImage
    request: ResourceVector
    labels: Dict[str, str] = field(default_factory=dict)
    #: Kubernetes nodeSelector: the scheduler only considers nodes whose
    #: labels include every listed pair (how spot-targeted worker pods
    #: are steered onto the preemptible pool, and on-demand pods off it).
    node_selector: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.request.is_nonnegative():
            raise ValueError(f"pod request must be non-negative, got {self.request}")


class Pod(KubeObject):
    """A pod object with phase, node binding, and event log.

    ``cpu_usage_fn`` is attached by the container's workload (the Work
    Queue worker) and polled by the metrics server; it returns the current
    CPU usage in cores. ``on_stop`` is invoked when the pod is deleted
    while running, letting the container react (a deleted worker-pod kills
    its worker and the tasks on it — the behaviour the paper avoids by
    draining through Work Queue instead).
    """

    __slots__ = (
        "spec", "phase", "node", "events", "scheduled_time", "started_time",
        "finished_time", "deletion_requested", "cpu_usage_fn", "on_stop",
    )

    kind = "Pod"

    def __init__(self, name: str, spec: PodSpec, creation_time: float = 0.0) -> None:
        super().__init__(name, dict(spec.labels), creation_time)
        self.spec = spec
        self.phase = PodPhase.PENDING
        self.node: Optional["Node"] = None
        self.events: List[PodEvent] = []
        self.scheduled_time: Optional[float] = None
        self.started_time: Optional[float] = None
        self.finished_time: Optional[float] = None
        self.deletion_requested = False
        self.cpu_usage_fn: Optional[Callable[[], float]] = None
        self.on_stop: Optional[Callable[["Pod"], None]] = None

    # -------------------------------------------------------------- events
    def add_event(self, time: float, reason: str, message: str = "") -> PodEvent:
        ev = PodEvent(time, reason, message)
        self.events.append(ev)
        return ev

    def last_event(self, reason: str) -> Optional[PodEvent]:
        for ev in reversed(self.events):
            if ev.reason == reason:
                return ev
        return None

    def had_event(self, reason: str) -> bool:
        return any(ev.reason == reason for ev in self.events)

    # ------------------------------------------------------------- phases
    def mark_scheduled(self, time: float, node: "Node") -> None:
        if self.phase is not PodPhase.PENDING:
            raise RuntimeError(f"pod {self.name}: cannot schedule in phase {self.phase}")
        self.node = node
        self.scheduled_time = time
        self.add_event(time, REASON_SCHEDULED, f"assigned to {node.name}")

    def mark_running(self, time: float) -> None:
        if self.phase is not PodPhase.PENDING or self.node is None:
            raise RuntimeError(f"pod {self.name}: cannot start in phase {self.phase}")
        self.phase = PodPhase.RUNNING
        self.started_time = time
        self.add_event(time, REASON_STARTED, "container started")

    def mark_finished(self, time: float, succeeded: bool = True) -> None:
        if self.phase.terminal:
            return
        self.phase = PodPhase.SUCCEEDED if succeeded else PodPhase.FAILED
        if self.node is not None:
            # Terminal pods drop out of the node's requested() fold.
            self.node.invalidate_requested()
        self.finished_time = time
        self.add_event(time, REASON_COMPLETED if succeeded else REASON_KILLED)

    # ------------------------------------------------------------- derived
    @property
    def ready(self) -> bool:
        return self.phase is PodPhase.RUNNING

    def current_cpu_usage(self) -> float:
        """Instantaneous CPU usage in cores (0 when no workload attached)."""
        if self.phase is not PodPhase.RUNNING or self.cpu_usage_fn is None:
            return 0.0
        return self.cpu_usage_fn()

    def initialization_interval(self) -> Optional[float]:
        """Creation-to-ready duration, or None if never started.

        HTA uses this (for pods that experienced *No Available Node*) as
        the latest resource-initialization time.
        """
        if self.started_time is None:
            return None
        return self.started_time - self.meta.creation_time

    def experienced_cold_start(self) -> bool:
        """True iff this pod went through the full fig-9 path: waited for a
        node (FailedScheduling) and for an image pull before starting."""
        return (
            self.had_event(REASON_FAILED_SCHEDULING)
            and self.had_event(REASON_PULLING)
            and self.started_time is not None
        )

    def __repr__(self) -> str:  # pragma: no cover
        where = self.node.name if self.node else "unbound"
        return f"<Pod {self.name!r} {self.phase.value} on {where}>"
