"""Per-node kubelet: image pulls, container start/stop, node image cache.

The kubelet watches for pods scheduled onto its node. If the image is not
in the node-local cache it emits the fig-9 ``Pulling`` event and pulls for
``registry.pull_duration(image)`` seconds (the "No Container Image"
state); then the container starts and the pod turns ``Running``.
Stopping a container (the workload exited, or a drain completed) turns
the pod ``Succeeded``.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.cluster.api import KubeApiServer, WatchEvent, WatchEventType
from repro.cluster.images import ImageRegistry
from repro.cluster.node import Node
from repro.cluster.pod import Pod, PodPhase, REASON_PULLED, REASON_PULLING
from repro.sim.engine import Engine, ScheduledEvent
from repro.telemetry.events import NULL_TRACER, Tracer


class Kubelet:
    """The agent for a single node."""

    #: Seconds between image ready and container process start (runtime
    #: setup: container create, volume mounts, CNI). Small and constant.
    CONTAINER_START_LATENCY = 1.0

    def __init__(
        self,
        engine: Engine,
        api: KubeApiServer,
        node: Node,
        registry: ImageRegistry,
        *,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.engine = engine
        self.api = api
        self.node = node
        self.registry = registry
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._admitted: Set[str] = set()
        self._pending_starts: Dict[str, ScheduledEvent] = {}
        # Node-scoped watch: this kubelet only ever reacts to pods bound
        # to its node, so the API server skips the per-kubelet fan-out.
        api.watch_pods_on_node(node, self._on_pod_event, replay_existing=True)

    # --------------------------------------------------------------- events
    def _on_pod_event(self, event: WatchEvent) -> None:
        pod = event.obj
        if not isinstance(pod, Pod):
            return
        if event.type is WatchEventType.DELETED:
            handle = self._pending_starts.pop(pod.name, None)
            if handle is not None:
                handle.cancel()
            self._admitted.discard(pod.name)
            return
        if pod.node is not self.node or pod.name in self._admitted:
            return
        if pod.phase is PodPhase.PENDING:
            self._admitted.add(pod.name)
            self._admit(pod)

    # ---------------------------------------------------------------- admit
    def _admit(self, pod: Pod) -> None:
        image = pod.spec.image
        if image.name in self.node.cached_images:
            self._schedule_start(pod, self.CONTAINER_START_LATENCY)
            return
        pod.add_event(self.engine.now, REASON_PULLING, f"pulling image {image.name}")
        self.api.mark_modified(pod)
        duration = self.registry.pull_duration(image)
        if self.tracer.enabled:
            self.tracer.emit(
                "cluster", "kubelet.pulling",
                pod=pod.name, node=self.node.name,
                image=image.name, duration_s=duration,
            )
        self._pending_starts[pod.name] = self.engine.call_in(
            duration, self._image_pulled, pod
        )

    def _image_pulled(self, pod: Pod) -> None:
        self._pending_starts.pop(pod.name, None)
        if pod.phase.terminal or pod.deletion_requested:
            return
        self.node.cached_images.add(pod.spec.image.name)
        pod.add_event(self.engine.now, REASON_PULLED, f"pulled {pod.spec.image.name}")
        self.api.mark_modified(pod)
        self._schedule_start(pod, self.CONTAINER_START_LATENCY)

    def _schedule_start(self, pod: Pod, delay: float) -> None:
        self._pending_starts[pod.name] = self.engine.call_in(delay, self._start, pod)

    def _start(self, pod: Pod) -> None:
        self._pending_starts.pop(pod.name, None)
        if pod.phase.terminal or pod.deletion_requested:
            return
        pod.mark_running(self.engine.now)
        if self.tracer.enabled:
            self.tracer.emit(
                "cluster", "kubelet.running", pod=pod.name, node=self.node.name
            )
        self.api.mark_modified(pod)

    # ----------------------------------------------------------------- stop
    def stop_container(self, pod: Pod, succeeded: bool = True) -> None:
        """Terminate the pod's container; the pod turns Succeeded/Failed.

        Called by the workload runtime when the worker process exits (e.g.
        after HTA drains it). The terminal pod stays bound until the API
        delete removes it, matching Kubernetes' completed-pod semantics.
        """
        if pod.node is not self.node:
            raise RuntimeError(f"pod {pod.name} is not on node {self.node.name}")
        if pod.phase.terminal:
            return
        pod.mark_finished(self.engine.now, succeeded=succeeded)
        if self.tracer.enabled:
            self.tracer.emit(
                "cluster", "kubelet.stopped",
                pod=pod.name, node=self.node.name, succeeded=succeeded,
            )
        self.api.mark_modified(pod)


class KubeletManager:
    """Creates a :class:`Kubelet` for every node that joins the cluster."""

    def __init__(
        self,
        engine: Engine,
        api: KubeApiServer,
        registry: ImageRegistry,
        *,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.engine = engine
        self.api = api
        self.registry = registry
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.kubelets: Dict[str, Kubelet] = {}
        api.watch("Node", self._on_node_event, replay_existing=True)

    def _on_node_event(self, event: WatchEvent) -> None:
        node = event.obj
        if not isinstance(node, Node):
            return
        if event.type is WatchEventType.DELETED:
            self.kubelets.pop(node.name, None)
        elif node.name not in self.kubelets:
            self.kubelets[node.name] = Kubelet(
                self.engine, self.api, node, self.registry, tracer=self.tracer
            )

    def for_node(self, node: Node) -> Optional[Kubelet]:
        return self.kubelets.get(node.name)

    def for_pod(self, pod: Pod) -> Optional[Kubelet]:
        return self.kubelets.get(pod.node.name) if pod.node is not None else None
