"""A client-go-style shared informer: local cache + event handlers.

HTA's *Informer Cache* component "receives a notice when registered
objects are created, updated, or deleted" and uses it to track worker-pod
lifecycles. This class is the same abstraction: it subscribes to the API
server watch for one kind, maintains a read-only local cache, and fans
events out to registered add/update/delete handlers.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.cluster.api import KubeApiServer, WatchEvent, WatchEventType
from repro.cluster.objects import KubeObject

AddHandler = Callable[[KubeObject], None]
UpdateHandler = Callable[[KubeObject], None]
DeleteHandler = Callable[[KubeObject], None]


class Informer:
    """Watches one kind; caches objects; dispatches to handlers.

    Handlers registered after events have flowed still see a consistent
    picture via :meth:`items` (the cache), like a real informer's lister.
    """

    def __init__(self, api: KubeApiServer, kind: str) -> None:
        self.api = api
        self.kind = kind
        self.cache: Dict[str, KubeObject] = {}
        self._on_add: List[AddHandler] = []
        self._on_update: List[UpdateHandler] = []
        self._on_delete: List[DeleteHandler] = []
        self.events_seen = 0
        api.watch(kind, self._handle, replay_existing=True)

    # ------------------------------------------------------------ handlers
    def on_add(self, fn: AddHandler) -> None:
        self._on_add.append(fn)

    def on_update(self, fn: UpdateHandler) -> None:
        self._on_update.append(fn)

    def on_delete(self, fn: DeleteHandler) -> None:
        self._on_delete.append(fn)

    # --------------------------------------------------------------- cache
    def items(self) -> List[KubeObject]:
        return sorted(self.cache.values(), key=lambda o: (o.meta.creation_time, o.name))

    def get(self, name: str) -> Optional[KubeObject]:
        return self.cache.get(name)

    def __len__(self) -> int:
        return len(self.cache)

    # ------------------------------------------------------------ internal
    def _handle(self, event: WatchEvent) -> None:
        self.events_seen += 1
        obj = event.obj
        if event.type is WatchEventType.ADDED:
            self.cache[obj.name] = obj
            for fn in list(self._on_add):
                fn(obj)
        elif event.type is WatchEventType.MODIFIED:
            self.cache[obj.name] = obj
            for fn in list(self._on_update):
                fn(obj)
        elif event.type is WatchEventType.DELETED:
            self.cache.pop(obj.name, None)
            for fn in list(self._on_delete):
                fn(obj)
