"""A client-go-style shared informer: local cache + event handlers.

HTA's *Informer Cache* component "receives a notice when registered
objects are created, updated, or deleted" and uses it to track worker-pod
lifecycles. This class is the same abstraction: it subscribes to the API
server watch for one kind, maintains a read-only local cache, and fans
events out to registered add/update/delete handlers.

Like client-go, the informer survives broken watch streams. Every store
write advances a per-kind resourceVersion even when its notification is
lost (API outage, silent stream drop), so :meth:`Informer.staleness` —
the gap between the store's head version and the last version this cache
saw — measures exactly how far behind the cache is. A periodic (or
manual) :meth:`Informer.resync` relists the store, reconciles the cache
against it, and synthesizes the missed add/update/delete events for the
handlers, then fast-forwards the cache to the store's head. Consumers
must therefore tolerate at-least-once delivery (ours do: they key off
object identity and resourceVersions, not event counts).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.cluster.api import KubeApiServer, WatchEvent, WatchEventType
from repro.cluster.objects import KubeObject
from repro.sim.engine import PeriodicTask
from repro.telemetry.events import NULL_TRACER, Tracer

AddHandler = Callable[[KubeObject], None]
UpdateHandler = Callable[[KubeObject], None]
DeleteHandler = Callable[[KubeObject], None]


class Informer:
    """Watches one kind; caches objects; dispatches to handlers.

    Handlers registered after events have flowed still see a consistent
    picture via :meth:`items` (the cache), like a real informer's lister.

    ``resync_period_s`` arms a periodic relist-and-resync. It defaults
    off because a perpetual timer keeps the event queue non-empty, which
    breaks drivers that run the engine until it drains; fault-injecting
    runners opt in. Call :meth:`close` to unsubscribe (and stop the
    timer) when the informer's owner shuts down — experiments share one
    API server, and leaked handlers would see the next run's events.
    """

    def __init__(
        self,
        api: KubeApiServer,
        kind: str,
        *,
        resync_period_s: Optional[float] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.api = api
        self.kind = kind
        self.tracer = tracer if tracer is not None else api.tracer
        self.cache: Dict[str, KubeObject] = {}
        self._on_add: List[AddHandler] = []
        self._on_update: List[UpdateHandler] = []
        self._on_delete: List[DeleteHandler] = []
        self.events_seen = 0
        #: Events fabricated by resyncs to stand in for dropped ones.
        self.events_synthesized = 0
        self.resyncs = 0
        self.closed = False
        #: Head resourceVersion of the kind as of the last event or
        #: resync — "where our watch stream is". Starts at the store's
        #: current head: the initial replay_existing listing is a
        #: list-at-that-version.
        self.last_version = api.kind_version(kind)
        #: Last resourceVersion observed per object (detects missed
        #: MODIFIEDs during resync).
        self._seen_versions: Dict[str, int] = {}
        #: True once a delivered event's version skipped past
        #: ``last_version + 1`` — i.e. some notification between was lost
        #: even though a later one arrived. While False and
        #: ``last_version`` equals the store head, the cache provably saw
        #: every write, so :meth:`resync` can skip the O(store) relist.
        self._gap_seen = False
        self._resync_loop: Optional[PeriodicTask] = None
        api.watch(kind, self._handle, replay_existing=True)
        if resync_period_s is not None:
            self._resync_loop = PeriodicTask(api.engine, resync_period_s, self.resync)

    # ------------------------------------------------------------ handlers
    def on_add(self, fn: AddHandler) -> None:
        self._on_add.append(fn)

    def on_update(self, fn: UpdateHandler) -> None:
        self._on_update.append(fn)

    def on_delete(self, fn: DeleteHandler) -> None:
        self._on_delete.append(fn)

    # --------------------------------------------------------------- cache
    def items(self) -> List[KubeObject]:
        return sorted(self.cache.values(), key=lambda o: (o.meta.creation_time, o.name))

    def get(self, name: str) -> Optional[KubeObject]:
        return self.cache.get(name)

    def __len__(self) -> int:
        return len(self.cache)

    # ----------------------------------------------------------- freshness
    def staleness(self) -> int:
        """Store writes this cache has not seen (0 = fully caught up).

        Transiently nonzero in healthy operation too — notifications are
        asynchronous — so consumers should compare against a bound, not
        against zero.
        """
        return max(0, self.api.kind_version(self.kind) - self.last_version)

    def resync(self) -> int:
        """Relist the store and reconcile the cache against it,
        synthesizing the add/update/delete events that were missed.
        Returns the number of synthesized events. No-op while the API
        server is unavailable (a relist would fail too)."""
        if self.closed or not self.api.available:
            return 0
        target = self.api.kind_version(self.kind)
        if target == self.last_version and not self._gap_seen:
            # Every write up to the head was delivered in order: the
            # cache cannot differ from the store, so reconciling would
            # synthesize nothing. Keep the counters/trace identical to a
            # full pass that found nothing.
            self.resyncs += 1
            if self.tracer.enabled:
                self.tracer.emit(
                    "cluster", "informer.resync",
                    kind=self.kind, synthesized=0,
                )
            return 0
        store = {o.name: o for o in self.api.list(self.kind)}
        now = self.api.engine.now
        synthesized = 0
        for name, obj in store.items():
            if name not in self.cache:
                synthesized += 1
                self._apply(
                    WatchEvent(
                        WatchEventType.ADDED, obj, now,
                        version=obj.meta.resource_version,
                    )
                )
            elif obj.meta.resource_version > self._seen_versions.get(name, 0):
                synthesized += 1
                self._apply(
                    WatchEvent(
                        WatchEventType.MODIFIED, obj, now,
                        version=obj.meta.resource_version,
                    )
                )
        for name in [n for n in self.cache if n not in store]:
            synthesized += 1
            self._apply(
                WatchEvent(WatchEventType.DELETED, self.cache[name], now, version=target)
            )
        self.last_version = max(self.last_version, target)
        # Reconciled against the store head: any previously-detected gap
        # is healed (the _apply calls above may have re-tripped the flag
        # with their jumping versions — that jump is the resync itself).
        self._gap_seen = False
        self.resyncs += 1
        self.events_synthesized += synthesized
        if self.tracer.enabled:
            self.tracer.emit(
                "cluster", "informer.resync",
                kind=self.kind, synthesized=synthesized,
            )
        return synthesized

    def close(self) -> None:
        """Unsubscribe from the API server and stop the resync timer.
        Idempotent; a closed informer ignores late in-flight events."""
        if self.closed:
            return
        self.closed = True
        self.api.unwatch(self.kind, self._handle)
        if self._resync_loop is not None:
            self._resync_loop.stop()
            self._resync_loop = None

    def __enter__(self) -> "Informer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------ internal
    def _handle(self, event: WatchEvent) -> None:
        if self.closed:
            return
        self.events_seen += 1
        self._apply(event)

    def _apply(self, event: WatchEvent) -> None:
        obj = event.obj
        version = event.version or obj.meta.resource_version
        if version > self.last_version + 1:
            # A notification between last_version and this one was lost
            # (store writes bump the version by exactly one).
            self._gap_seen = True
        self.last_version = max(self.last_version, version)
        if event.type is WatchEventType.ADDED:
            self.cache[obj.name] = obj
            self._seen_versions[obj.name] = max(
                self._seen_versions.get(obj.name, 0), version
            )
            for fn in list(self._on_add):
                fn(obj)
        elif event.type is WatchEventType.MODIFIED:
            self.cache[obj.name] = obj
            self._seen_versions[obj.name] = max(
                self._seen_versions.get(obj.name, 0), version
            )
            for fn in list(self._on_update):
                fn(obj)
        elif event.type is WatchEventType.DELETED:
            self.cache.pop(obj.name, None)
            self._seen_versions.pop(obj.name, None)
            for fn in list(self._on_delete):
                fn(obj)
