"""Container images and the (private) registry nodes pull from.

The paper sets up a private registry on Google Cloud "to avoid network
speed variations between a public Docker registry and the daemons"; we
model a registry with a stable per-node pull bandwidth plus a small
per-pull fixed overhead (manifest resolution, layer unpack), with optional
jitter from a named RNG stream. Pull time is part of the fig-6 resource-
initialization latency breakdown ("machine reservation and container
pulling time").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.rng import RngRegistry


@dataclass(frozen=True, slots=True)
class ContainerImage:
    """An image identified by name with a compressed transfer size."""

    name: str
    size_mb: float = 500.0

    def __post_init__(self) -> None:
        if self.size_mb < 0:
            raise ValueError(f"image {self.name!r}: negative size {self.size_mb}")


class ImageRegistry:
    """Computes pull durations for (image, node) pairs.

    ``pull_bandwidth_mbps`` is per-node (a private regional registry is not
    the bottleneck when a handful of nodes pull concurrently, which matches
    the paper's stable fig-6 latencies). ``jitter_cv`` adds lognormal noise
    with the given coefficient of variation; 0 disables it.
    """

    def __init__(
        self,
        rng: RngRegistry,
        *,
        pull_bandwidth_mbps: float = 100.0,
        fixed_overhead_s: float = 2.0,
        jitter_cv: float = 0.02,
    ) -> None:
        if pull_bandwidth_mbps <= 0:
            raise ValueError("pull_bandwidth_mbps must be positive")
        if fixed_overhead_s < 0:
            raise ValueError("fixed_overhead_s must be non-negative")
        self.rng = rng
        self.pull_bandwidth_mbps = pull_bandwidth_mbps
        self.fixed_overhead_s = fixed_overhead_s
        self.jitter_cv = jitter_cv
        self.pulls_started = 0
        #: Runtime multiplier on pull durations (≥ 1 models a degraded or
        #: throttled registry); fault injection raises it for bounded
        #: stall windows and restores it to 1.0 afterwards.
        self.stall_factor = 1.0

    def pull_duration(self, image: ContainerImage) -> float:
        """Seconds to pull ``image`` onto a node that doesn't cache it."""
        self.pulls_started += 1
        base = self.fixed_overhead_s + image.size_mb / self.pull_bandwidth_mbps
        duration = self.rng.lognormal_around("registry.pull", base, self.jitter_cv)
        return duration * self.stall_factor

    def mean_pull_duration(self, image: ContainerImage) -> float:
        """Expected pull time without jitter (used by calibration tests)."""
        return self.fixed_overhead_s + image.size_mb / self.pull_bandwidth_mbps
