"""Cloud controller manager / cluster autoscaler.

The paper relies on GKE's node autoscaling: "changing the number of
worker-pods could result in pending pods with no available node or idle
nodes that are underutilized, and the cloud controller manager will
add/remove nodes accordingly". This loop:

* **scale-up** — each scan, first-fit-decreasing packs the resource
  requests of unschedulable pending pods into hypothetical new nodes and
  reserves that many machines (minus reservations already in flight).
  Reservation latency is drawn per machine from a normal distribution
  calibrated to the fig-6 measurement (GKE: mean 157.4 s total including
  image pull; see :class:`CloudControllerConfig`);
* **scale-down** — a node continuously idle for ``idle_timeout`` seconds
  is cordoned and removed, never below ``min_nodes`` (the paper keeps 3
  nodes so the cluster survives master upgrades).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.api import KubeApiServer
from repro.cluster.node import MachineType, N1_STANDARD_4, Node
from repro.cluster.pod import Pod
from repro.cluster.resources import ResourceVector
from repro.sim.engine import Engine, PeriodicTask
from repro.sim.rng import RngRegistry
from repro.telemetry.events import NULL_TRACER, Tracer


@dataclass(frozen=True, slots=True)
class CloudControllerConfig:
    """Tunables for the node autoscaler.

    ``reservation_mean_s``/``reservation_std_s`` model VM reservation +
    boot + kubelet registration. The *total* pod-observed initialization
    latency additionally includes the image pull; with the default
    registry (500 MB image @ 100 MB/s + 2 s overhead ≈ 7 s) and the 1 s
    container start, reservation ≈ 149 s reproduces fig 6's 157.4 s mean.
    """

    machine_type: MachineType = N1_STANDARD_4
    min_nodes: int = 3
    max_nodes: int = 20
    scan_period_s: float = 10.0
    reservation_mean_s: float = 149.0
    reservation_std_s: float = 4.0
    idle_timeout_s: float = 600.0
    # Floor for the reservation draw; clouds never deliver instantly.
    reservation_floor_s: float = 30.0
    # Cap on machine reservations in flight at once. Cloud managers
    # "process reservation requests in batches" (§IV-B); a finite cap
    # serializes provisioning into batches the way the paper's fig-2 GKE
    # traces show. None = unlimited (provision everything immediately).
    max_concurrent_reservations: int | None = None
    # Probability a reserved machine fails to boot (the VM never joins
    # the cluster; the reservation is simply lost). ChaosInjector can
    # also raise/lower this at runtime for bounded fault windows.
    boot_failure_prob: float = 0.0

    def __post_init__(self) -> None:
        if self.min_nodes < 0 or self.max_nodes < self.min_nodes:
            raise ValueError(
                f"invalid node bounds min={self.min_nodes} max={self.max_nodes}"
            )
        if self.scan_period_s <= 0:
            raise ValueError("scan_period_s must be positive")
        if not 0.0 <= self.boot_failure_prob <= 1.0:
            raise ValueError(
                f"boot_failure_prob must be in [0,1], got {self.boot_failure_prob}"
            )


class CloudController:
    """Provision/reclaim nodes in response to cluster state."""

    def __init__(
        self,
        engine: Engine,
        api: KubeApiServer,
        rng: RngRegistry,
        config: CloudControllerConfig = CloudControllerConfig(),
        *,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.engine = engine
        self.api = api
        self.rng = rng
        self.config = config
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._node_seq = 0
        self._inflight = 0  # reservations not yet registered as nodes
        self._idle_since: Dict[str, float] = {}
        self.nodes_provisioned = 0
        self.nodes_removed = 0
        #: Mutable copy of the configured rate so fault injection can
        #: open/close bounded boot-failure windows mid-run.
        self.boot_failure_prob = config.boot_failure_prob
        self.boot_failures = 0
        self._loop = PeriodicTask(engine, config.scan_period_s, self.sync, start_after=0.0)
        # Bootstrap the minimum node pool instantly: the paper's clusters
        # start with their base nodes already running.
        for _ in range(config.min_nodes):
            self._register_node()

    def stop(self) -> None:
        self._loop.stop()

    # ----------------------------------------------------------- accounting
    def node_count(self) -> int:
        return len([n for n in self.api.nodes() if not n.deleted])

    def target_count(self) -> int:
        """Current nodes plus reservations in flight."""
        return self.node_count() + self._inflight

    # ----------------------------------------------------------------- sync
    def sync(self) -> None:
        self._heal_min_pool()
        self._scale_up()
        self._scale_down()

    def _heal_min_pool(self) -> None:
        """Replace crashed nodes so the pool never sits below min_nodes
        (a managed node pool repairs itself the same way)."""
        deficit = self.config.min_nodes - self.target_count()
        for _ in range(max(0, deficit)):
            self._reserve_node()

    # ------------------------------------------------------------- scale-up
    def _scale_up(self) -> None:
        pending = [
            p
            for p in self.api.pending_pods()
            if p.had_event("FailedScheduling") and not p.deletion_requested
        ]
        if not pending:
            return
        needed = self._nodes_needed(pending)
        needed -= self._inflight
        headroom = self.config.max_nodes - self.target_count()
        to_add = max(0, min(needed, headroom))
        if self.config.max_concurrent_reservations is not None:
            batch_room = self.config.max_concurrent_reservations - self._inflight
            to_add = max(0, min(to_add, batch_room))
        for _ in range(to_add):
            self._reserve_node()

    def _nodes_needed(self, pending: List[Pod]) -> int:
        """First-fit-decreasing estimate of new nodes for pending pods.

        Pending pods are first packed into the *existing* ready nodes'
        free capacity — the scheduler simply may not have bound them yet
        — and only the overflow counts toward new machines (the upstream
        cluster autoscaler runs the same simulated-scheduling check).
        """
        alloc = self.config.machine_type.allocatable
        requests = sorted(
            (p.spec.request for p in pending),
            key=lambda r: r.cores,
            reverse=True,
        )
        existing_free: List[ResourceVector] = [
            n.free() for n in self.api.ready_nodes() if not n.unschedulable
        ]
        bins: List[ResourceVector] = []
        unpackable = 0
        for req in requests:
            if not req.fits_in(alloc):
                unpackable += 1  # can never fit; don't provision for it
                continue
            placed = False
            for i, free in enumerate(existing_free):
                if req.fits_in(free):
                    existing_free[i] = (free - req).clamp_floor(0.0)
                    placed = True
                    break
            if placed:
                continue
            for i, used in enumerate(bins):
                if req.fits_in(alloc - used):
                    bins[i] = used + req
                    break
            else:
                bins.append(req)
        return len(bins)

    def _reserve_node(self) -> None:
        self._inflight += 1
        latency = self.rng.normal(
            "cloud.reserve",
            self.config.reservation_mean_s,
            self.config.reservation_std_s,
            floor=self.config.reservation_floor_s,
        )
        if self.tracer.enabled:
            self.tracer.emit(
                "cluster", "node.reserve",
                latency_s=latency, inflight=self._inflight,
            )
        self.engine.call_in(latency, self._reservation_complete)

    def _reservation_complete(self) -> None:
        self._inflight -= 1
        if self.boot_failure_prob > 0 and (
            self.rng.uniform("cloud.boot_failure", 0.0, 1.0)
            < self.boot_failure_prob
        ):
            # The VM never boots / fails kubelet registration; the next
            # sync notices the still-pending pods and reserves again.
            self.boot_failures += 1
            self.tracer.emit("cluster", "node.boot_failure", "fault")
            return
        if self.node_count() >= self.config.max_nodes:
            return  # raced with another provisioning source; drop the VM
        self._register_node()

    def _register_node(self) -> Node:
        self._node_seq += 1
        node = Node(
            f"node-{self._node_seq:03d}",
            self.config.machine_type,
            creation_time=self.engine.now,
        )
        node.ready = True
        node.ready_time = self.engine.now
        self.api.create(node)
        self.nodes_provisioned += 1
        if self.tracer.enabled:
            self.tracer.emit(
                "cluster", "node.ready",
                node=node.name, total=self.nodes_provisioned,
            )
        return node

    # ----------------------------------------------------------- scale-down
    def _scale_down(self) -> None:
        # Never reclaim capacity while unschedulable pods wait: removing a
        # node the scheduler is about to use would thrash (the upstream
        # cluster autoscaler applies the same guard).
        if any(
            p.had_event("FailedScheduling") and not p.deletion_requested
            for p in self.api.pending_pods()
        ):
            self._idle_since.clear()
            return
        nodes = [n for n in self.api.nodes() if not n.deleted]
        now = self.engine.now
        removable: List[Node] = []
        for node in nodes:
            if node.is_idle():
                since = self._idle_since.setdefault(node.name, now)
                if now - since >= self.config.idle_timeout_s:
                    removable.append(node)
            else:
                self._idle_since.pop(node.name, None)
        # Remove newest-first, never dropping below the minimum pool.
        removable.sort(key=lambda n: n.meta.creation_time, reverse=True)
        for node in removable:
            if self.node_count() <= self.config.min_nodes:
                break
            self._remove_node(node)

    def _remove_node(self, node: Node) -> None:
        if node.active_pods():
            return  # became busy between the scan and now
        node.unschedulable = True
        node.deleted = True
        self._idle_since.pop(node.name, None)
        self.api.try_delete("Node", node.name)
        self.nodes_removed += 1
        if self.tracer.enabled:
            self.tracer.emit("cluster", "node.removed", node=node.name)
